"""Nova filter-scheduler simulation.

Reproduces the architecture of OpenStack Nova's default FilterScheduler:
a chain of boolean *filters* narrows the host list, then *weighers* rank
the survivors and the best-weighted host wins. Each server-create request
is handled in isolation -- exactly the per-VM scheduling the paper argues
is suboptimal for complex application topologies.

The scheduler operates on the same :class:`~repro.datacenter.state
.DataCenterState` as Ostro, so OpenStack-style and Ostro placements are
directly comparable, and Ostro's decisions can be *executed* through Nova
via the ``force_host`` scheduler hint (Fig. 1's deployment path).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, List, Optional, Sequence

from repro import obs
from repro.datacenter.state import DataCenterState
from repro.errors import SchedulerError
from repro.openstack.api import Server, ServerRequest

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import at runtime
    from repro.faults.injector import FaultInjector


def _count_api_call(method: str, **fields) -> None:
    rec = obs.get_recorder()
    if rec.enabled:
        rec.inc("ostro_api_calls_total", service="nova", method=method)
        rec.event("api_call", service="nova", method=method, **fields)


class HostFilter(ABC):
    """A boolean host filter in the FilterScheduler chain."""

    @abstractmethod
    def passes(
        self, state: DataCenterState, host: int, request: ServerRequest
    ) -> bool:
        """True if the host remains a candidate for this request."""


class CoreFilter(HostFilter):
    """Rejects hosts without enough free vCPUs.

    Args:
        allocation_ratio: CPU overcommit factor (Nova's
            ``cpu_allocation_ratio``; 1.0 = no overcommit, matching how
            the paper accounts capacity).
    """

    def __init__(self, allocation_ratio: float = 1.0):
        self.allocation_ratio = allocation_ratio

    def passes(self, state, host, request):
        total = state.cloud.hosts[host].cpu_cores
        used = total - state.free_cpu[host]
        return used + request.vcpus <= total * self.allocation_ratio + 1e-9


class RamFilter(HostFilter):
    """Rejects hosts without enough free memory."""

    def __init__(self, allocation_ratio: float = 1.0):
        self.allocation_ratio = allocation_ratio

    def passes(self, state, host, request):
        total = state.cloud.hosts[host].mem_gb
        used = total - state.free_mem[host]
        return used + request.ram_gb <= total * self.allocation_ratio + 1e-9


class ForceHostFilter(HostFilter):
    """Honors the ``force_host`` scheduler hint (Ostro's execution path)."""

    def passes(self, state, host, request):
        forced = request.scheduler_hints.get("force_host")
        if forced is None:
            return True
        return state.cloud.hosts[host].name == forced


class DifferentHostFilter(HostFilter):
    """Nova's anti-affinity hint: ``different_host`` names hosts to avoid.

    This is the per-request shadow of Ostro's diversity zones -- and a
    demonstration of why zones beat hints: the hint only works when the
    caller already knows where the other VMs landed.
    """

    def passes(self, state, host, request):
        avoid = request.scheduler_hints.get("different_host")
        if not avoid:
            return True
        if isinstance(avoid, str):
            avoid = [avoid]
        return state.cloud.hosts[host].name not in avoid


class SameHostFilter(HostFilter):
    """Nova's affinity hint: ``same_host`` names acceptable hosts."""

    def passes(self, state, host, request):
        wanted = request.scheduler_hints.get("same_host")
        if not wanted:
            return True
        if isinstance(wanted, str):
            wanted = [wanted]
        return state.cloud.hosts[host].name in wanted


class HostWeigher(ABC):
    """Scores surviving hosts; higher total weight wins."""

    #: relative multiplier applied to this weigher's normalized score
    multiplier: float = 1.0

    @abstractmethod
    def weigh(
        self, state: DataCenterState, host: int, request: ServerRequest
    ) -> float:
        """Raw (unnormalized) score of one host."""


class RamWeigher(HostWeigher):
    """Nova's default spreading weigher: prefer the most free memory."""

    def weigh(self, state, host, request):
        return state.free_mem[host]


class CoreWeigher(HostWeigher):
    """Prefer the most free vCPUs."""

    def weigh(self, state, host, request):
        return state.free_cpu[host]


class NovaScheduler:
    """One-VM-at-a-time filter scheduler.

    Args:
        state: the live availability state to schedule against (shared
            with Ostro when the two run side by side).
        filters: filter chain; defaults to force-host + core + RAM.
        weighers: weigher list; defaults to Nova's RAM-spreading default.
        injector: optional fault injector; when set, every API call first
            passes through its ``before_api_call`` gate (which may raise
            an injected :class:`~repro.errors.FaultError`).
    """

    def __init__(
        self,
        state: DataCenterState,
        filters: Optional[Sequence[HostFilter]] = None,
        weighers: Optional[Sequence[HostWeigher]] = None,
        injector: Optional["FaultInjector"] = None,
    ):
        self.state = state
        self.injector = injector
        self.filters: List[HostFilter] = list(
            filters
            if filters is not None
            else (
                ForceHostFilter(),
                DifferentHostFilter(),
                SameHostFilter(),
                CoreFilter(),
                RamFilter(),
            )
        )
        self.weighers: List[HostWeigher] = list(
            weighers if weighers is not None else (RamWeigher(),)
        )

    def select_host(self, request: ServerRequest) -> int:
        """Pick the best host index for a request without reserving it."""
        candidates = [
            host
            for host in range(self.state.cloud.num_hosts)
            if all(f.passes(self.state, host, request) for f in self.filters)
        ]
        if not candidates:
            raise SchedulerError(
                f"Nova: no valid host found for server {request.name!r}"
            )
        if not self.weighers:
            return candidates[0]
        best_host = None
        best_weight = None
        for host in candidates:
            weight = sum(
                w.multiplier * w.weigh(self.state, host, request)
                for w in self.weighers
            )
            if best_weight is None or weight > best_weight:
                best_weight = weight
                best_host = host
        return best_host  # type: ignore[return-value]

    def create_server(self, request: ServerRequest) -> Server:
        """Schedule and reserve one server; returns the placement record."""
        _count_api_call("create_server", name=request.name)
        if self.injector is not None:
            self.injector.before_api_call("nova", "create_server")
        host = self.select_host(request)
        self.state.place_vm(host, request.vcpus, request.ram_gb)
        return Server(name=request.name, host=self.state.cloud.hosts[host].name)

    def delete_server(self, server: Server, request: ServerRequest) -> None:
        """Release a previously created server's reservation."""
        _count_api_call("delete_server", name=request.name)
        if self.injector is not None:
            self.injector.before_api_call("nova", "delete_server")
        host = self.state.cloud.host_by_name(server.host).index
        self.state.unplace_vm(host, request.vcpus, request.ram_gb)
