"""Cinder volume-scheduler simulation.

Mirrors Cinder's default behavior: a capacity filter drops disks that
cannot hold the volume, then a capacity weigher prefers the disk with the
most free space. Each volume request is handled in isolation. The
``force_disk`` scheduler hint pins a volume to a specific disk, which is
how Ostro's holistic decision is executed through Cinder (Fig. 1).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro import obs
from repro.datacenter.state import DataCenterState
from repro.errors import SchedulerError
from repro.openstack.api import VolumeRecord, VolumeRequest

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import at runtime
    from repro.faults.injector import FaultInjector


def _count_api_call(method: str, **fields) -> None:
    rec = obs.get_recorder()
    if rec.enabled:
        rec.inc("ostro_api_calls_total", service="cinder", method=method)
        rec.event("api_call", service="cinder", method=method, **fields)


class CinderScheduler:
    """One-volume-at-a-time capacity scheduler.

    Args:
        state: the live availability state (shared with Nova/Ostro).
        injector: optional fault injector gating every API call (see
            :class:`~repro.openstack.nova.NovaScheduler`).
    """

    def __init__(
        self,
        state: DataCenterState,
        injector: Optional["FaultInjector"] = None,
    ):
        self.state = state
        self.injector = injector

    def select_disk(self, request: VolumeRequest) -> int:
        """Pick the best disk index for a request without reserving it."""
        forced: Optional[str] = request.scheduler_hints.get("force_disk")
        cloud = self.state.cloud
        candidates = []
        for disk_index in range(len(cloud.disks)):
            if forced is not None and cloud.disks[disk_index].name != forced:
                continue
            if self.state.volume_fits(disk_index, request.size_gb):
                candidates.append(disk_index)
        if not candidates:
            raise SchedulerError(
                f"Cinder: no valid disk found for volume {request.name!r}"
            )
        # capacity weigher: most free space first, index as tie-break
        return max(
            candidates, key=lambda d: (self.state.free_disk[d], -d)
        )

    def create_volume(self, request: VolumeRequest) -> VolumeRecord:
        """Schedule and reserve one volume; returns the placement record."""
        _count_api_call("create_volume", name=request.name)
        if self.injector is not None:
            self.injector.before_api_call("cinder", "create_volume")
        disk_index = self.select_disk(request)
        self.state.place_volume(disk_index, request.size_gb)
        disk = self.state.cloud.disks[disk_index]
        return VolumeRecord(
            name=request.name, disk=disk.name, host=disk.host.name
        )

    def delete_volume(
        self, record: VolumeRecord, request: VolumeRequest
    ) -> None:
        """Release a previously created volume's reservation."""
        _count_api_call("delete_volume", name=request.name)
        if self.injector is not None:
            self.injector.before_api_call("cinder", "delete_volume")
        disk_index = self.state.cloud.disk_by_name(record.disk).index
        self.state.unplace_volume(disk_index, request.size_gb)
