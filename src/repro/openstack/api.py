"""Request/response records for the OpenStack surrogate.

Mirrors the slices of the Nova/Cinder APIs the reproduction needs: flavors,
server-create and volume-create requests (with ``scheduler_hints``), and
the resulting resource records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import SchedulerError


@dataclass(frozen=True)
class Flavor:
    """A Nova flavor: a named VM size.

    Attributes:
        name: flavor name (e.g. "m1.small").
        vcpus: vCPU count.
        ram_gb: memory in GB.
    """

    name: str
    vcpus: float
    ram_gb: float


#: The classic OpenStack flavor ladder (RAM expressed in GB).
FLAVORS: Dict[str, Flavor] = {
    flavor.name: flavor
    for flavor in (
        Flavor("m1.tiny", 1, 0.5),
        Flavor("m1.small", 1, 2),
        Flavor("m1.medium", 2, 4),
        Flavor("m1.large", 4, 8),
        Flavor("m1.xlarge", 8, 16),
        # Fig. 5's vocabulary as convenience flavors:
        Flavor("qfs.small", 2, 2),
        Flavor("qfs.large", 4, 8),
    )
}


def flavor_by_name(name: str) -> Flavor:
    """Look up a flavor, raising SchedulerError for unknown names."""
    try:
        return FLAVORS[name]
    except KeyError:
        raise SchedulerError(f"unknown flavor: {name!r}") from None


@dataclass
class ServerRequest:
    """A Nova server-create request.

    Attributes:
        name: server name.
        vcpus: vCPU requirement (use :func:`from_flavor` for named sizes).
        ram_gb: memory requirement in GB.
        scheduler_hints: optional hints; ``force_host`` pins the placement
            to a named host (how Ostro's decision is executed).
    """

    name: str
    vcpus: float
    ram_gb: float
    scheduler_hints: Dict[str, str] = field(default_factory=dict)

    @staticmethod
    def from_flavor(
        name: str,
        flavor: str,
        scheduler_hints: Optional[Dict[str, str]] = None,
    ) -> "ServerRequest":
        """Build a request from a flavor name."""
        resolved = flavor_by_name(flavor)
        return ServerRequest(
            name=name,
            vcpus=resolved.vcpus,
            ram_gb=resolved.ram_gb,
            scheduler_hints=dict(scheduler_hints or {}),
        )


@dataclass
class VolumeRequest:
    """A Cinder volume-create request.

    Attributes:
        name: volume name.
        size_gb: requested size in GB.
        scheduler_hints: optional hints; ``force_disk`` pins the placement
            to a named disk.
    """

    name: str
    size_gb: float
    scheduler_hints: Dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class Server:
    """A scheduled server: name plus the chosen host."""

    name: str
    host: str


@dataclass(frozen=True)
class VolumeRecord:
    """A scheduled volume: name plus the chosen disk and its host."""

    name: str
    disk: str
    host: str
