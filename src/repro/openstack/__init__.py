"""OpenStack surrogate: Nova and Cinder scheduler simulations.

The paper contrasts Ostro's holistic placement with OpenStack's default
behavior, where Nova (compute) and Cinder (block storage) schedule every
VM and volume *independently*. This subpackage provides API-faithful
simulations of both services:

* :mod:`repro.openstack.api` -- request/response records and flavors;
* :mod:`repro.openstack.nova` -- a filter scheduler (filters + weighers)
  placing one VM at a time;
* :mod:`repro.openstack.cinder` -- a capacity-weighted volume scheduler.

Both schedulers honor ``scheduler_hints`` (``force_host`` / ``force_disk``),
which is how Ostro's decisions flow through the stack (Fig. 1): the Heat
engine calls Nova/Cinder with the hosts Ostro chose.
"""

from repro.openstack.api import (
    FLAVORS,
    Flavor,
    ServerRequest,
    VolumeRequest,
)
from repro.openstack.cinder import CinderScheduler
from repro.openstack.nova import (
    CoreFilter,
    NovaScheduler,
    RamFilter,
    RamWeigher,
)

__all__ = [
    "CinderScheduler",
    "CoreFilter",
    "FLAVORS",
    "Flavor",
    "NovaScheduler",
    "RamFilter",
    "RamWeigher",
    "ServerRequest",
    "VolumeRequest",
]
