"""Miniature Heat engine: deploy an annotated template via Nova/Cinder.

The engine walks the (Ostro-annotated) template and issues one
server-create or volume-create call per resource, exactly as OpenStack
Heat orchestrates a stack. Because every resource carries a
``force_host``/``force_disk`` hint, the Nova and Cinder surrogates land
each piece where Ostro decided -- completing the Fig. 1 pipeline:
template -> wrapper -> Ostro -> annotated template -> Heat engine ->
Nova/Cinder.

Deployment is transactional: if any resource cannot be scheduled, the
already-created resources of the stack are deleted again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from repro.datacenter.state import DataCenterState
from repro.errors import SchedulerError
from repro.heat.template import (
    SERVER_TYPE,
    VOLUME_TYPE,
    parse_template,
)
from repro.openstack.api import Server, ServerRequest, VolumeRecord, VolumeRequest
from repro.openstack.cinder import CinderScheduler
from repro.openstack.nova import NovaScheduler
from repro.openstack.api import flavor_by_name


@dataclass
class Stack:
    """A deployed stack: resource name -> placement record.

    Attributes:
        name: stack name.
        servers: server records by resource name.
        volumes: volume records by resource name.
        template: the (annotated) template the stack was created from,
            kept for update rollback and deletion.
    """

    name: str
    servers: Dict[str, Server] = field(default_factory=dict)
    volumes: Dict[str, VolumeRecord] = field(default_factory=dict)
    template: Dict[str, Any] = field(default_factory=dict)
    _requests: List[Tuple[str, Any, Any]] = field(default_factory=list)

    def host_of(self, resource: str) -> str:
        """Host name a resource landed on."""
        if resource in self.servers:
            return self.servers[resource].host
        return self.volumes[resource].host


class HeatEngine:
    """Deploys annotated templates onto a shared availability state.

    Args:
        state: the live state Nova and Cinder schedule against. When
            deploying a stack whose placement Ostro already committed,
            pass a *fresh clone* dedicated to deployment -- otherwise the
            resources would be double-counted.
    """

    def __init__(self, state: DataCenterState):
        self.state = state
        self.nova = NovaScheduler(state)
        self.cinder = CinderScheduler(state)
        self.stacks: Dict[str, Stack] = {}

    def deploy(self, template, stack_name: str = "stack") -> Stack:
        """Create every resource of the template; transactional."""
        parsed = parse_template(template)
        resources = parsed.get("resources", {})
        if stack_name in self.stacks:
            raise SchedulerError(
                f"stack {stack_name!r} already exists; delete or update it"
            )
        stack = Stack(name=stack_name)
        created: List[Tuple[str, Any, Any]] = []
        try:
            for res_name, resource in resources.items():
                res_type = resource.get("type")
                properties = resource.get("properties", {})
                hints = dict(properties.get("scheduler_hints", {}))
                if res_type == SERVER_TYPE:
                    request = self._server_request(res_name, properties, hints)
                    record = self.nova.create_server(request)
                    stack.servers[res_name] = record
                    created.append(("server", record, request))
                elif res_type == VOLUME_TYPE:
                    request = VolumeRequest(
                        name=res_name,
                        size_gb=float(properties["size"]),
                        scheduler_hints=hints,
                    )
                    record = self.cinder.create_volume(request)
                    stack.volumes[res_name] = record
                    created.append(("volume", record, request))
        except SchedulerError:
            for kind, record, request in reversed(created):
                if kind == "server":
                    self.nova.delete_server(record, request)
                else:
                    self.cinder.delete_volume(record, request)
            raise
        stack.template = parsed
        stack._requests = created
        self.stacks[stack_name] = stack
        return stack

    def delete_stack(self, stack_name: str) -> None:
        """Release every resource of a deployed stack."""
        stack = self.stacks.pop(stack_name, None)
        if stack is None:
            raise SchedulerError(f"unknown stack: {stack_name!r}")
        for kind, record, request in reversed(stack._requests):
            if kind == "server":
                self.nova.delete_server(record, request)
            else:
                self.cinder.delete_volume(record, request)

    def update_stack(self, template, stack_name: str) -> Stack:
        """Replace a deployed stack with a new template, transactionally.

        The old resources are released first (so the new deployment can
        reuse their capacity); if the new template fails to deploy, the
        old one is re-deployed -- its hints still name hosts that just
        freed up, so the rollback always fits.
        """
        old = self.stacks.get(stack_name)
        if old is None:
            raise SchedulerError(f"unknown stack: {stack_name!r}")
        self.delete_stack(stack_name)
        try:
            return self.deploy(template, stack_name)
        except SchedulerError:
            self.deploy(old.template, stack_name)
            raise

    @staticmethod
    def _server_request(
        res_name: str, properties: Dict[str, Any], hints: Dict[str, str]
    ) -> ServerRequest:
        if "flavor" in properties:
            flavor = flavor_by_name(properties["flavor"])
            vcpus, ram_gb = flavor.vcpus, flavor.ram_gb
        else:
            vcpus = float(properties["vcpus"])
            ram_gb = float(properties["ram_gb"])
        return ServerRequest(
            name=res_name,
            vcpus=vcpus,
            ram_gb=ram_gb,
            scheduler_hints=hints,
        )
