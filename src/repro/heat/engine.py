"""Miniature Heat engine: deploy an annotated template via Nova/Cinder.

The engine walks the (Ostro-annotated) template and issues one
server-create or volume-create call per resource, exactly as OpenStack
Heat orchestrates a stack. Because every resource carries a
``force_host``/``force_disk`` hint, the Nova and Cinder surrogates land
each piece where Ostro decided -- completing the Fig. 1 pipeline:
template -> wrapper -> Ostro -> annotated template -> Heat engine ->
Nova/Cinder.

Deployment follows a reserve->commit protocol: the engine snapshots the
availability state before touching it, applies every resource, and
registers the stack only when all of them succeeded. *Any* library error
mid-stack -- a scheduling failure, an injected API fault, an exhausted
retry budget -- restores the snapshot bit-exactly, so a failed deploy can
never leak capacity. Optional fault injection and retry/backoff hooks
(see :mod:`repro.faults`) cover every Nova/Cinder call the engine makes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro import obs
from repro.datacenter.state import DataCenterState
from repro.errors import ReproError, SchedulerError, TemplateError
from repro.heat.template import (
    SERVER_TYPE,
    VOLUME_TYPE,
    parse_template,
)
from repro.openstack.api import Server, ServerRequest, VolumeRecord, VolumeRequest
from repro.openstack.cinder import CinderScheduler
from repro.openstack.nova import NovaScheduler
from repro.openstack.api import flavor_by_name

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import at runtime
    from repro.faults.injector import FaultInjector
    from repro.faults.retry import RetryPolicy


@dataclass
class Stack:
    """A deployed stack: resource name -> placement record.

    Attributes:
        name: stack name.
        servers: server records by resource name.
        volumes: volume records by resource name.
        template: the (annotated) template the stack was created from,
            kept for update rollback and deletion.
    """

    name: str
    servers: Dict[str, Server] = field(default_factory=dict)
    volumes: Dict[str, VolumeRecord] = field(default_factory=dict)
    template: Dict[str, Any] = field(default_factory=dict)
    _requests: List[Tuple[str, Any, Any]] = field(default_factory=list)

    def host_of(self, resource: str) -> str:
        """Host name a resource landed on."""
        if resource in self.servers:
            return self.servers[resource].host
        return self.volumes[resource].host


class HeatEngine:
    """Deploys annotated templates onto a shared availability state.

    Args:
        state: the live state Nova and Cinder schedule against. When
            deploying a stack whose placement Ostro already committed,
            pass a *fresh clone* dedicated to deployment -- otherwise the
            resources would be double-counted.
        injector: optional fault injector, forwarded to the Nova and
            Cinder surrogates so their API calls can fail by plan.
        retry: optional retry policy; when set, every Nova/Cinder call
            the engine makes is wrapped in
            :func:`~repro.faults.retry.retry_call`.
    """

    def __init__(
        self,
        state: DataCenterState,
        injector: Optional["FaultInjector"] = None,
        retry: Optional["RetryPolicy"] = None,
    ):
        self.state = state
        self.injector = injector
        self.retry = retry
        self.nova = NovaScheduler(state, injector=injector)
        self.cinder = CinderScheduler(state, injector=injector)
        self.stacks: Dict[str, Stack] = {}

    def _call(
        self, service: str, method: str, fn: Callable[[], Any]
    ) -> Any:
        """Issue one surrogate API call, retried under the policy if set."""
        if self.retry is None:
            return fn()
        from repro.faults.retry import retry_call

        return retry_call(self.retry, fn, service=service, method=method)

    def _rolled_back(self, stack_name: str, exc: ReproError) -> None:
        rec = obs.get_recorder()
        if rec.enabled:
            rec.inc("ostro_rollbacks_total")
            rec.event("rollback", app=stack_name, reason=str(exc))

    def deploy(self, template, stack_name: str = "stack") -> Stack:
        """Create every resource of the template; transactional.

        Reserve->commit: the availability state is snapshotted first and
        the stack is registered only after every resource succeeded. Any
        :class:`~repro.errors.ReproError` mid-stack -- scheduling
        failure, injected fault, exhausted retries -- restores the
        snapshot bit-exactly before re-raising.
        """
        parsed = parse_template(template)
        resources = parsed.get("resources", {})
        if stack_name in self.stacks:
            raise SchedulerError(
                f"stack {stack_name!r} already exists; delete or update it"
            )
        stack = Stack(name=stack_name)
        created: List[Tuple[str, Any, Any]] = []
        baseline = self.state.snapshot()
        try:
            for res_name, resource in resources.items():
                res_type = resource.get("type")
                properties = resource.get("properties", {})
                hints = dict(properties.get("scheduler_hints", {}))
                if res_type == SERVER_TYPE:
                    request = self._server_request(res_name, properties, hints)
                    record = self._call(
                        "nova",
                        "create_server",
                        lambda r=request: self.nova.create_server(r),
                    )
                    stack.servers[res_name] = record
                    created.append(("server", record, request))
                elif res_type == VOLUME_TYPE:
                    request = VolumeRequest(
                        name=res_name,
                        size_gb=float(properties["size"]),
                        scheduler_hints=hints,
                    )
                    record = self._call(
                        "cinder",
                        "create_volume",
                        lambda r=request: self.cinder.create_volume(r),
                    )
                    stack.volumes[res_name] = record
                    created.append(("volume", record, request))
        except ReproError as exc:
            self.state.restore(baseline)
            self._rolled_back(stack_name, exc)
            raise
        except BaseException:
            # Unexpected errors (malformed template properties, injected
            # non-library faults) must not leak reserved capacity either.
            self.state.restore(baseline)
            raise
        stack.template = parsed
        stack._requests = created
        self.stacks[stack_name] = stack
        return stack

    def delete_stack(self, stack_name: str) -> None:
        """Release every resource of a deployed stack; transactional.

        If a delete call fails mid-stack (e.g. under fault injection),
        the pre-deletion state is restored and the stack stays
        registered, so a failed deletion never half-releases capacity.

        Raises:
            TemplateError: when no stack of that name is deployed.
        """
        stack = self.stacks.pop(stack_name, None)
        if stack is None:
            raise TemplateError(f"unknown stack: {stack_name!r}")
        baseline = self.state.snapshot()
        try:
            for kind, record, request in reversed(stack._requests):
                if kind == "server":
                    self._call(
                        "nova",
                        "delete_server",
                        lambda s=record, r=request: self.nova.delete_server(
                            s, r
                        ),
                    )
                else:
                    self._call(
                        "cinder",
                        "delete_volume",
                        lambda v=record, r=request: self.cinder.delete_volume(
                            v, r
                        ),
                    )
        except ReproError as exc:
            self.state.restore(baseline)
            self.stacks[stack_name] = stack
            self._rolled_back(stack_name, exc)
            raise
        except BaseException:
            self.state.restore(baseline)
            self.stacks[stack_name] = stack
            raise

    def update_stack(self, template, stack_name: str) -> Stack:
        """Replace a deployed stack with a new template, transactionally.

        The old resources are released first (so the new deployment can
        reuse their capacity). If anything fails -- the deletion, the new
        deployment, an injected fault -- the pre-update state snapshot is
        restored and the old stack record re-registered, with no API
        calls on the rollback path (pure state restoration cannot itself
        fail under injection).

        Raises:
            TemplateError: when no stack of that name is deployed.
        """
        old = self.stacks.get(stack_name)
        if old is None:
            raise TemplateError(f"unknown stack: {stack_name!r}")
        baseline = self.state.snapshot()
        try:
            self.delete_stack(stack_name)
            return self.deploy(template, stack_name)
        except ReproError as exc:
            self.state.restore(baseline)
            self.stacks[stack_name] = old
            self._rolled_back(stack_name, exc)
            raise
        except BaseException:
            self.state.restore(baseline)
            self.stacks[stack_name] = old
            raise

    @staticmethod
    def _server_request(
        res_name: str, properties: Dict[str, Any], hints: Dict[str, str]
    ) -> ServerRequest:
        if "flavor" in properties:
            flavor = flavor_by_name(properties["flavor"])
            vcpus, ram_gb = flavor.vcpus, flavor.ram_gb
        else:
            vcpus = float(properties["vcpus"])
            ram_gb = float(properties["ram_gb"])
        return ServerRequest(
            name=res_name,
            vcpus=vcpus,
            ram_gb=ram_gb,
            scheduler_hints=hints,
        )
