"""Heat integration: the QoS-enhanced template pipeline of Fig. 1.

* :mod:`repro.heat.template` -- parse and serialize QoS-enhanced Heat
  templates (standard ``OS::Nova::Server`` / ``OS::Cinder::Volume``
  resources extended with ``ATT::QoS::Pipe`` bandwidth pipes and
  ``ATT::QoS::DiversityZone`` anti-affinity groups).
* :mod:`repro.heat.wrapper` -- the Heat wrapper that hands the template's
  application topology to Ostro and annotates every resource with the
  placement decision (``scheduler_hints``).
* :mod:`repro.heat.engine` -- a miniature Heat engine that deploys an
  annotated template by calling the Nova/Cinder surrogates with the
  forced hosts/disks.
"""

from repro.heat.engine import HeatEngine, Stack
from repro.heat.template import (
    parse_template,
    template_from_topology,
    topology_from_template,
)
from repro.heat.wrapper import OstroHeatWrapper

__all__ = [
    "HeatEngine",
    "OstroHeatWrapper",
    "Stack",
    "parse_template",
    "template_from_topology",
    "topology_from_template",
]
