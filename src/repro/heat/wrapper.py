"""The Heat wrapper for Ostro (Fig. 1).

The wrapper is the integration point the paper adds in front of the Heat
service: it takes a QoS-enhanced Heat template, extracts the application
topology, asks Ostro for a holistic placement, and returns the
QoS-annotated template (with per-resource ``scheduler_hints``) plus the
placement result. The annotated template can then be deployed by the
:class:`~repro.heat.engine.HeatEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict

from repro import obs
from repro.core.base import PlacementResult
from repro.core.scheduler import Ostro
from repro.heat.template import annotate_template, topology_from_template


def _count_api_call(method: str, **fields) -> None:
    rec = obs.get_recorder()
    if rec.enabled:
        rec.inc("ostro_api_calls_total", service="heat", method=method)
        rec.event("api_call", service="heat", method=method, **fields)


@dataclass
class WrapperResponse:
    """Outcome of one wrapper invocation.

    Attributes:
        annotated_template: deep-copied template with ``scheduler_hints``.
        result: Ostro's placement result for the stack.
        stack_name: name of the stack/application.
    """

    annotated_template: Dict[str, Any]
    result: PlacementResult
    stack_name: str


class OstroHeatWrapper:
    """Template-in, annotated-template-out facade over an Ostro instance.

    Args:
        ostro: the scheduler owning the live data-center state.
    """

    def __init__(self, ostro: Ostro):
        self.ostro = ostro

    def handle(
        self,
        template,
        stack_name: str = "stack",
        algorithm: str = "dba*",
        commit: bool = True,
        **options,
    ) -> WrapperResponse:
        """Optimize a template's placement and annotate it.

        Args:
            template: QoS-enhanced Heat template (dict / JSON / path).
            stack_name: name of the stack (must be unique when committed).
            algorithm: Ostro algorithm name.
            commit: reserve the placement in the live state.
            **options: forwarded to the algorithm (e.g. ``deadline_s``).
        """
        _count_api_call("handle", stack=stack_name, algorithm=algorithm)
        topology = topology_from_template(template, name=stack_name)
        result = self.ostro.place(
            topology, algorithm=algorithm, commit=commit, **options
        )
        annotated = annotate_template(
            template, result.placement, self.ostro.cloud
        )
        return WrapperResponse(
            annotated_template=annotated,
            result=result,
            stack_name=stack_name,
        )

    def update(
        self,
        template,
        stack_name: str,
        algorithm: str = "dba*",
        **options,
    ) -> WrapperResponse:
        """Stack-update: incremental re-placement of a committed stack.

        Parses the updated template and routes it through Ostro's online
        adaptation (Section IV-E): unchanged resources stay pinned to
        their hosts, added/changed ones are placed into the gaps, and the
        returned template is annotated with the complete new decision.
        """
        _count_api_call("update", stack=stack_name, algorithm=algorithm)
        topology = topology_from_template(template, name=stack_name)
        update = self.ostro.update(
            topology, algorithm=algorithm, **options
        )
        annotated = annotate_template(
            template, update.result.placement, self.ostro.cloud
        )
        return WrapperResponse(
            annotated_template=annotated,
            result=update.result,
            stack_name=stack_name,
        )

    def delete(self, stack_name: str) -> None:
        """Stack-delete: release every reservation of a committed stack."""
        _count_api_call("delete", stack=stack_name)
        self.ostro.remove(stack_name)
