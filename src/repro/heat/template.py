"""QoS-enhanced Heat templates (Section II, Fig. 1).

The paper describes application topologies with "a Heat template extended
with diversity zones and a network pipe concept". This module implements
that format over plain dicts (JSON-compatible -- Heat's native YAML maps
1:1 onto it):

.. code-block:: python

    {
        "heat_template_version": "2013-05-23",
        "description": "...",
        "resources": {
            "web": {"type": "OS::Nova::Server",
                    "properties": {"flavor": "m1.small"}},
            "db": {"type": "OS::Nova::Server",
                   "properties": {"vcpus": 4, "ram_gb": 8}},
            "data": {"type": "OS::Cinder::Volume",
                     "properties": {"size": 100}},
            "web-db": {"type": "ATT::QoS::Pipe",
                       "properties": {"ends": ["web", "db"],
                                      "bandwidth_mbps": 100}},
            "db-ha": {"type": "ATT::QoS::DiversityZone",
                      "properties": {"level": "rack",
                                     "members": ["db", "data"]}},
        },
    }

Servers take either a ``flavor`` name (resolved against the Nova flavor
registry) or explicit ``vcpus`` / ``ram_gb``. The parser produces an
:class:`~repro.core.topology.ApplicationTopology`;
:func:`annotate_template` (used by the wrapper) adds per-resource
``scheduler_hints`` carrying Ostro's decision.
"""

from __future__ import annotations

import copy
import json
from typing import Any, Dict, Optional

from repro.core.placement import Placement
from repro.core.topology import ApplicationTopology
from repro.datacenter.model import Cloud, Level
from repro.errors import TemplateError
from repro.openstack.api import flavor_by_name

SERVER_TYPE = "OS::Nova::Server"
VOLUME_TYPE = "OS::Cinder::Volume"
PIPE_TYPE = "ATT::QoS::Pipe"
ZONE_TYPE = "ATT::QoS::DiversityZone"

_KNOWN_TYPES = {SERVER_TYPE, VOLUME_TYPE, PIPE_TYPE, ZONE_TYPE}


def parse_template(source) -> Dict[str, Any]:
    """Accept a template as a dict, JSON string, or file path."""
    if isinstance(source, dict):
        return source
    if isinstance(source, str):
        text = source
        if not source.lstrip().startswith("{"):
            with open(source, "r", encoding="utf-8") as handle:
                text = handle.read()
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            raise TemplateError(f"template is not valid JSON: {exc}") from exc
    raise TemplateError(
        f"unsupported template source type: {type(source).__name__}"
    )


def _properties(name: str, resource: Dict[str, Any]) -> Dict[str, Any]:
    properties = resource.get("properties")
    if not isinstance(properties, dict):
        raise TemplateError(f"resource {name!r} has no properties mapping")
    return properties


def topology_from_template(
    source, name: str = "stack"
) -> ApplicationTopology:
    """Parse a QoS-enhanced Heat template into an application topology.

    Args:
        source: template dict, JSON string, or file path.
        name: name for the resulting topology (the stack name).

    Raises:
        TemplateError: on unknown resource types, missing properties, or
            references to undefined resources.
    """
    template = parse_template(source)
    resources = template.get("resources")
    if not isinstance(resources, dict) or not resources:
        raise TemplateError("template has no resources")

    topology = ApplicationTopology(name)
    pipes = []
    zones = []
    for res_name, resource in resources.items():
        res_type = resource.get("type")
        if res_type not in _KNOWN_TYPES:
            raise TemplateError(
                f"resource {res_name!r} has unsupported type {res_type!r}"
            )
        properties = _properties(res_name, resource)
        if res_type == SERVER_TYPE:
            if "flavor" in properties:
                flavor = flavor_by_name(properties["flavor"])
                vcpus, ram_gb = flavor.vcpus, flavor.ram_gb
            else:
                try:
                    vcpus = float(properties["vcpus"])
                    ram_gb = float(properties["ram_gb"])
                except KeyError as exc:
                    raise TemplateError(
                        f"server {res_name!r} needs a flavor or "
                        "vcpus/ram_gb"
                    ) from exc
            topology.add_vm(
                res_name,
                vcpus,
                ram_gb,
                cpu_policy=str(properties.get("cpu_policy", "guaranteed")),
            )
        elif res_type == VOLUME_TYPE:
            try:
                size = float(properties["size"])
            except KeyError as exc:
                raise TemplateError(
                    f"volume {res_name!r} needs a size"
                ) from exc
            topology.add_volume(res_name, size)
        elif res_type == PIPE_TYPE:
            pipes.append((res_name, properties))
        else:
            zones.append((res_name, properties))

    for res_name, properties in pipes:
        ends = properties.get("ends")
        if not isinstance(ends, (list, tuple)) or len(ends) != 2:
            raise TemplateError(
                f"pipe {res_name!r} needs exactly two ends"
            )
        try:
            bw = float(properties["bandwidth_mbps"])
        except KeyError as exc:
            raise TemplateError(
                f"pipe {res_name!r} needs bandwidth_mbps"
            ) from exc
        max_hops = properties.get("max_hops")
        topology.connect(
            ends[0],
            ends[1],
            bw,
            max_hops=None if max_hops is None else int(max_hops),
        )

    for res_name, properties in zones:
        members = properties.get("members")
        if not isinstance(members, (list, tuple)):
            raise TemplateError(
                f"diversity zone {res_name!r} needs a members list"
            )
        level = Level.parse(str(properties.get("level", "host")))
        topology.add_zone(res_name, level, members)

    topology.validate()
    return topology


def annotate_template(
    source,
    placement: Placement,
    cloud: Cloud,
) -> Dict[str, Any]:
    """Return a deep copy of the template with Ostro's decision embedded.

    Every server resource gains ``scheduler_hints: {"force_host": ...}``
    and every volume resource ``scheduler_hints: {"force_disk": ...,
    "force_host": ...}``, which the Heat engine forwards to Nova/Cinder.
    """
    template = copy.deepcopy(parse_template(source))
    resources = template.get("resources", {})
    for res_name, resource in resources.items():
        res_type = resource.get("type")
        if res_type not in (SERVER_TYPE, VOLUME_TYPE):
            continue
        assignment = placement.assignments.get(res_name)
        if assignment is None:
            raise TemplateError(
                f"placement does not cover resource {res_name!r}"
            )
        hints = resource.setdefault("properties", {}).setdefault(
            "scheduler_hints", {}
        )
        hints["force_host"] = cloud.hosts[assignment.host].name
        if res_type == VOLUME_TYPE:
            hints["force_disk"] = cloud.disks[assignment.disk].name
    return template


def template_from_topology(
    topology: ApplicationTopology,
    description: Optional[str] = None,
) -> Dict[str, Any]:
    """Serialize a topology back into a QoS-enhanced Heat template.

    Inverse of :func:`topology_from_template` (up to flavor names: sizes
    are always emitted explicitly).
    """
    resources: Dict[str, Any] = {}
    for name, node in topology.nodes.items():
        if node.is_vm:
            properties = {"vcpus": node.vcpus, "ram_gb": node.mem_gb}
            if node.cpu_policy != "guaranteed":
                properties["cpu_policy"] = node.cpu_policy
            resources[name] = {
                "type": SERVER_TYPE,
                "properties": properties,
            }
        else:
            resources[name] = {
                "type": VOLUME_TYPE,
                "properties": {"size": node.size_gb},
            }
    for i, link in enumerate(topology.links):
        properties = {
            "ends": [link.a, link.b],
            "bandwidth_mbps": link.bw_mbps,
        }
        if link.max_hops is not None:
            properties["max_hops"] = link.max_hops
        resources[f"pipe-{i + 1}"] = {
            "type": PIPE_TYPE,
            "properties": properties,
        }
    for zone in topology.zones:
        resources[zone.name] = {
            "type": ZONE_TYPE,
            "properties": {
                "level": zone.level.name.lower(),
                "members": sorted(zone.members),
            },
        }
    template = {
        "heat_template_version": "2013-05-23",
        "resources": resources,
    }
    if description:
        template["description"] = description
    return template
