"""Diversity zones (anti-affinity groups) for application topologies.

A diversity zone ``dz`` names a set of topology nodes that must be placed
pairwise apart at a given physical level: different hosts, racks, pods, or
data centers (Section II-B2). A node may belong to several zones. For
volumes, host-level diversity means the backing disks must live on
different hosts; two volumes on distinct disks of the *same* host do not
satisfy host diversity (matching the paper's "12 disk volumes on 12
separate disks" via a dedicated DISK pseudo-level handled in constraints).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Iterable

from repro.datacenter.model import Level

#: Re-exported so topology authors can write ``DiversityLevel.RACK``.
DiversityLevel = Level


@dataclass(frozen=True)
class DiversityZone:
    """A named anti-affinity group over topology nodes.

    Attributes:
        name: unique zone name within the topology.
        level: the separation level every member pair must satisfy.
        members: names of the member nodes (VMs and/or volumes).
    """

    name: str
    level: Level
    members: FrozenSet[str] = field(default_factory=frozenset)

    @staticmethod
    def of(name: str, level: Level, members: Iterable[str]) -> "DiversityZone":
        """Convenience constructor accepting any iterable of member names."""
        return DiversityZone(name=name, level=level, members=frozenset(members))

    def __contains__(self, node_name: str) -> bool:
        return node_name in self.members
