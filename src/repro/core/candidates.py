"""Candidate-host generation (``GetCandidates`` of Algorithm 1).

For a node, the candidate set is every (host, disk) target that satisfies
all constraints of :mod:`repro.core.constraints`. Because scoring a
candidate is expensive (it runs the lower-bound estimator), this module
also implements **exact equivalence-class deduplication**: two feasible
hosts are interchangeable for the search when they have

* identical free resources (CPU, memory, and for volumes the free space of
  the chosen disk),
* the same activity status (active vs idle -- this decides whether picking
  them changes ``u_c``),
* identical free bandwidth along their uplink chains, and
* identical separation distances to every host used by the partial
  placement.

Those four facts determine both the candidate's score and the state that
results from choosing it, up to a relabeling of physically symmetric hosts,
so keeping only the lowest-indexed representative of each class is lossless.
The paper's implementation instead evaluated all hosts in parallel
(Section III-A2); dedup achieves the same effect on one core and can be
disabled (``dedup=False``) for ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.core import constraints, kernel
from repro.core.kernel import quantize
from repro.core.placement import PartialPlacement


@dataclass(frozen=True)
class CandidateTarget:
    """One feasible placement target for a node.

    Attributes:
        host: global host index.
        disk: global disk index for volumes, None for VMs.
        multiplicity: number of interchangeable hosts this target
            represents (1 when dedup is off).
    """

    host: int
    disk: Optional[int] = None
    multiplicity: int = 1


def _distance_signatures(
    partial: PartialPlacement,
) -> Callable[[int], Tuple[int, ...]]:
    """Factory for per-host distance signatures to all placed hosts.

    Pulls one cached distance row per distinct placed host from the shared
    :class:`~repro.datacenter.network.PathResolver`, so the per-candidate
    signature is plain list indexing instead of a pairwise distance call
    per placed host.
    """
    resolver = partial.resolver
    rows = [
        resolver.distance_row(p) for p in sorted(partial.placed_hosts())
    ]

    def signature(host: int) -> Tuple[int, ...]:
        return tuple(row[host] for row in rows)

    return signature


def candidate_targets(
    partial: PartialPlacement,
    node_name: str,
    dedup: bool = True,
    limit: Optional[int] = None,
) -> List[CandidateTarget]:
    """Feasible targets for a node, optionally deduplicated.

    Args:
        partial: the placement under construction.
        node_name: the node to place next.
        dedup: collapse interchangeable hosts to one representative each.
        limit: optional hard cap on the number of returned targets
            (targets keep cloud index order). Without dedup the scan stops
            as soon as ``limit`` targets are found. With dedup the scan
            must still visit every host -- later hosts can fold into an
            already kept class -- but once ``limit`` classes exist no new
            representative is added, so the result equals truncating the
            unlimited result to its first ``limit`` entries *with* the
            full-scan multiplicities.

    Returns:
        Feasible :class:`CandidateTarget` records in ascending host order.
        Empty when the node cannot be placed anywhere right now.

    Dispatches to the vectorized kernel when it is active (see
    :mod:`repro.core.kernel`); results are bit-identical either way, and
    the ``crosscheck`` kernel verifies that on every call.
    """
    if kernel.numpy_active():
        results = kernel.candidate_targets_numpy(
            partial, node_name, dedup=dedup, limit=limit
        )
        if kernel.crosscheck_active():
            reference = _candidate_targets_python(
                partial, node_name, dedup=dedup, limit=limit
            )
            if results != reference:
                raise kernel.KernelMismatch(
                    f"candidate set mismatch for node {node_name!r}: "
                    f"numpy {results!r} != python {reference!r}"
                )
        return results
    return _candidate_targets_python(
        partial, node_name, dedup=dedup, limit=limit
    )


def _candidate_targets_python(
    partial: PartialPlacement,
    node_name: str,
    dedup: bool = True,
    limit: Optional[int] = None,
) -> List[CandidateTarget]:
    """Pure-Python reference scan (see :func:`candidate_targets`)."""
    node = partial.topology.node(node_name)
    state = partial.state
    cloud = state.cloud
    free_bw = state.free_bw
    # Distances to the *distinct* hosts of the partial placement fully
    # determine the candidate's relation to every placed node.
    distance_signature = _distance_signatures(partial)
    # Host-independent constraint setup, hoisted out of the host loop.
    ctx = constraints.NodeConstraintContext(partial, node_name)
    uplink_chain = cloud.uplink_chain
    results: List[CandidateTarget] = []
    seen: dict = {}

    if node.is_vm:
        reserved = state.reserved_vcpus(node)
        for host in range(cloud.num_hosts):
            if not state.vm_fits(host, reserved, node.mem_gb):
                continue
            if not ctx.diversity_ok(host):
                continue
            if not ctx.latency_ok(host):
                continue
            if not ctx.bandwidth_ok(host):
                continue
            if dedup:
                sig = (
                    quantize(state.free_cpu[host]),
                    quantize(state.free_mem[host]),
                    state.host_is_active(host),
                    tuple(
                        quantize(free_bw[link])
                        for link in uplink_chain(host)
                    ),
                    distance_signature(host),
                )
                existing = seen.get(sig)
                if existing is not None:
                    results[existing] = CandidateTarget(
                        host=results[existing].host,
                        disk=None,
                        multiplicity=results[existing].multiplicity + 1,
                    )
                    continue
                if limit is not None and len(results) >= limit:
                    continue  # keep scanning only to fold multiplicities
                seen[sig] = len(results)
            results.append(CandidateTarget(host=host))
            if limit is not None and not dedup and len(results) >= limit:
                break
    else:
        for disk_index, disk in enumerate(cloud.disks):
            if not state.volume_fits(disk_index, node.size_gb):
                continue
            host = disk.host.index
            if not ctx.diversity_ok(host):
                continue
            if not ctx.latency_ok(host):
                continue
            if not ctx.bandwidth_ok(host):
                continue
            if dedup:
                sig = (
                    quantize(state.free_disk[disk_index]),
                    state.host_is_active(host),
                    tuple(
                        quantize(free_bw[link])
                        for link in uplink_chain(host)
                    ),
                    distance_signature(host),
                )
                existing = seen.get(sig)
                if existing is not None:
                    results[existing] = CandidateTarget(
                        host=results[existing].host,
                        disk=results[existing].disk,
                        multiplicity=results[existing].multiplicity + 1,
                    )
                    continue
                if limit is not None and len(results) >= limit:
                    continue
                seen[sig] = len(results)
            results.append(CandidateTarget(host=host, disk=disk_index))
            if limit is not None and not dedup and len(results) >= limit:
                break

    return results
