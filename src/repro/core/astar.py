"""Bounded A* search over placements (Algorithm 2, ``BA*``).

Each search path is a partial placement; its priority is the admissible
evaluation ``u = objective(accumulated usage + lower-bound estimate of the
rest)``. The search is bounded above by complete placements produced by EG:
once at the start, and again -- continuing greedily *from the current
partial path* -- every time the frontier's best evaluation rises, which
tightens the bound as the search advances (Section III-B2). Paths whose
evaluation meets or exceeds the current upper bound are pruned; when the
frontier's best entry does so, the incumbent EG placement is optimal within
the heuristic's guarantees and is returned.

Duplicate partial placements are dropped via a closed set keyed on a
*canonical* form of the assignment set: nodes that are provably
interchangeable (same requirements, same diversity zones, same neighbor
structure) are collapsed to their equivalence class, eliminating the
permutation blow-up the paper addresses in Section III-B3.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections import Counter
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro import obs
from repro.core import kernel
from repro.core.base import PlacementAlgorithm, PlacementResult, SearchStats
from repro.core.candidates import candidate_targets
from repro.core.constraints import topology_obviously_infeasible
from repro.core.greedy import (
    GreedyConfig,
    _immediate_cost,
    apply_pinned,
    run_greedy_from,
    sort_nodes_by_relative_weight,
)
from repro.core.heuristic import LowerBoundEstimator
from repro.core.objective import Objective
from repro.core.placement import PartialPlacement
from repro.core.topology import ApplicationTopology
from repro.datacenter.model import Cloud
from repro.datacenter.network import PathResolver
from repro.datacenter.state import DataCenterState
from repro.errors import PlacementError

#: slack for float comparisons between path evaluations and bounds
_BOUND_EPS = 1e-9


def node_equivalence_classes(topology: ApplicationTopology) -> Dict[str, int]:
    """Group interchangeable nodes (Section III-B3).

    Two nodes are interchangeable when they have identical requirements,
    belong to exactly the same diversity zones, and have identical neighbor
    structure once each other is factored out. Swapping the placements of
    two interchangeable nodes yields an equivalent solution, so the A*
    closed set can collapse them.

    Returns:
        node name -> equivalence class id.
    """
    names = list(topology.nodes)
    reqs = {n: topology.requirement_vector(n) for n in names}
    zones = {
        n: frozenset(z.name for z in topology.zones_of(n)) for n in names
    }
    nbrs: Dict[str, FrozenSet[Tuple[str, float]]] = {
        n: frozenset(topology.neighbors(n)) for n in names
    }

    def interchangeable(a: str, b: str) -> bool:
        if reqs[a] != reqs[b] or zones[a] != zones[b]:
            return False
        bw_ab = {bw for other, bw in nbrs[a] if other == b}
        bw_ba = {bw for other, bw in nbrs[b] if other == a}
        if bw_ab != bw_ba:
            return False
        rest_a = {(o, bw) for o, bw in nbrs[a] if o != b}
        rest_b = {(o, bw) for o, bw in nbrs[b] if o != a}
        return rest_a == rest_b

    # The naive construction checks every node against every earlier node
    # (quadratic in |V| with a set comparison per pair). Grouping by full
    # signature makes it near-linear without changing a single class id:
    #
    # * Non-adjacent interchangeable pairs have *identical* signatures
    #   (requirements, zones, full neighbor set) -- and identical neighbor
    #   sets imply non-adjacency, since ``b in nbrs[a] == nbrs[b]`` would
    #   require the self-loop ``b in nbrs[b]``. So a hash bucket finds
    #   exactly these matches.
    # * Adjacent interchangeable pairs (e.g. two ends of a symmetric edge)
    #   differ in their signatures only by each other, so they are found by
    #   checking ``name`` against its own already-classified neighbors --
    #   O(degree) pairwise checks instead of O(|V|).
    #
    # Joining the *earliest-classified* match (bucket head vs. best
    # neighbor) reproduces the sequential first-match semantics of the
    # naive loop exactly.
    class_of: Dict[str, int] = {}
    order_index: Dict[str, int] = {}
    buckets: Dict[tuple, List[str]] = {}
    next_class = 0
    for position, name in enumerate(names):
        signature = (reqs[name], zones[name], nbrs[name])
        bucket = buckets.setdefault(signature, [])
        best: Optional[str] = None
        if bucket:
            best = bucket[0]
        for other, _bw in nbrs[name]:
            if other not in class_of:
                continue
            if best is not None and order_index[other] > order_index[best]:
                continue
            if interchangeable(name, other):
                best = other
        if best is not None:
            class_of[name] = class_of[best]
        else:
            class_of[name] = next_class
            next_class += 1
        order_index[name] = position
        bucket.append(name)
    return class_of


@dataclass
class _SearchLimits:
    """Safety rails for the exponential search."""

    max_expansions: Optional[int] = None


class BAStar(PlacementAlgorithm):
    """Bounded A* placement (Algorithm 2 of the paper).

    Args:
        greedy_config: configuration shared with the EG bound runs and the
            candidate generation (dedup, estimator truncation).
        symmetry_reduction: collapse interchangeable nodes in the closed
            set (Section III-B3). Exact; disable only for ablation.
        max_expansions: optional hard cap on expanded paths; when hit the
            best complete placement found so far is returned.
        scratch_scoring: score candidates by assign/estimate/undo on the
            popped path itself, cloning only candidates that survive the
            bound check and are actually pushed (the dominant case prunes
            or deduplicates most candidates, so this removes most state
            copies from the hot loop). Relies on
            :meth:`~repro.core.placement.PartialPlacement.unassign` being
            bit-exact for the last-assigned node; placements are identical
            to the clone-per-candidate path (``False``, kept for ablation
            and the equivalence regression test).
    """

    name = "ba*"

    def __init__(
        self,
        greedy_config: Optional[GreedyConfig] = None,
        symmetry_reduction: bool = True,
        max_expansions: Optional[int] = None,
        scratch_scoring: bool = True,
    ) -> None:
        self.greedy_config = greedy_config or GreedyConfig()
        self.symmetry_reduction = symmetry_reduction
        self.scratch_scoring = scratch_scoring
        self.limits = _SearchLimits(max_expansions=max_expansions)
        # duration of the most recent EG bound re-run, fed to the
        # deadline guard (_allow_bound_rerun)
        self._last_eg_duration = 0.0

    # ------------------------------------------------------------------
    # hooks specialized by DBA*
    # ------------------------------------------------------------------

    #: Which estimator orders (and prunes) the open queue. BA* uses the
    #: relaxed admissible variant, so its bound-based termination is sound.
    #: DBA* overrides this to the informative (paper-literal) estimate,
    #: which biases the queue toward paths with good greedy completions --
    #: the productive, depth-leaning behavior Fig. 6 relies on -- at the
    #: price of quasi-admissibility (hence it never *terminates* on the
    #: bound, it only discards; see ``terminate_on_bound``).
    ordering: str = "admissible"

    #: Whether a popped evaluation >= upper bound ends the whole search
    #: (valid only under an admissible ordering estimator).
    terminate_on_bound: bool = True

    #: When to re-run EG from a popped partial path to tighten the upper
    #: bound (Algorithm 2 lines 15-18). "on-advance" is the paper's rule
    #: (whenever the popped evaluation exceeds the running maximum) --
    #: each trigger greedily completes a different search prefix, which is
    #: what lets the deadline-bounded search keep improving with a larger
    #: budget. "per-depth" additionally caps triggers to one per depth
    #: level, bounding the EG overhead by |V| runs; BA* uses it because
    #: its admissible frontier raises the running maximum on nearly every
    #: pop (the paper amortized this by running EG in parallel).
    eg_rerun_policy: str = "per-depth"

    #: In "on-advance" mode, additionally re-run EG every this many pops,
    #: so the bound keeps tightening from diverse prefixes even when the
    #: frontier's depth stalls. None disables the periodic trigger.
    eg_rerun_every_pops: Optional[int] = None

    def _before_search(self, order: Sequence[str]) -> None:
        """Called once before the main loop (DBA* resets its clock here)."""

    def _should_prune_pop(self, depth: int, total: int) -> bool:
        """Probabilistic pop pruning hook; BA* never prunes pops."""
        return False

    def _out_of_time(self) -> bool:
        """Deadline hook; BA* has no deadline."""
        return False

    def _allow_bound_rerun(self, last_duration_s: float) -> bool:
        """Whether an EG bound re-run may start now (DBA* refuses one that
        would overshoot its deadline)."""
        return True

    def _after_expansion(self, open_depths: Counter, branching: float) -> None:
        """Bookkeeping hook for DBA*'s pruning-rate controller."""

    # ------------------------------------------------------------------

    def _run(
        self,
        topology: ApplicationTopology,
        cloud: Cloud,
        state: DataCenterState,
        objective: Objective,
        pinned: Dict[str, Tuple[int, Optional[int]]],
    ) -> PlacementResult:
        resolver = PathResolver.for_cloud(cloud)
        root = PartialPlacement(topology, state, resolver)
        stats = SearchStats()
        reason = topology_obviously_infeasible(topology, root)
        if reason is not None:
            raise PlacementError(reason)
        apply_pinned(root, pinned)
        # Two estimator flavors (see EstimatorConfig.optimistic_colocation):
        # the literal paper estimate drives the EG bound runs, while the
        # relaxed admissible variant orders and bounds the A* search so it
        # can explore below -- and improve on -- EG's placement.
        bound_estimator = LowerBoundEstimator(
            cloud, self.greedy_config.estimator, resolver=resolver
        )
        if self.ordering == "admissible":
            estimator = LowerBoundEstimator(
                cloud,
                self.greedy_config.estimator.admissible(),
                resolver=resolver,
            )
        else:
            estimator = bound_estimator
        order = [
            n for n in sort_nodes_by_relative_weight(topology) if n not in pinned
        ]
        total = len(order)
        class_of = (
            node_equivalence_classes(topology)
            if self.symmetry_reduction
            else {name: i for i, name in enumerate(order)}
        )

        def canonical_key(partial: PartialPlacement) -> FrozenSet:
            counted = Counter(
                (class_of[a.node], a.host, a.disk)
                for a in partial.assignments.values()
            )
            return frozenset(counted.items())

        rec = obs.get_recorder()
        # Initial upper bound from a full EG run (Algorithm 2 line 3).
        best_partial, u_upper = self._eg_bound(
            root, order, objective, bound_estimator, stats
        )
        if rec.enabled and best_partial is not None:
            rec.event("bound_updated", bound=u_upper, source="eg_initial")

        counter = itertools.count()
        est_bw, est_c = estimator.estimate(root, order)
        u0 = objective.score(root.ubw + est_bw, root.uc + est_c)
        open_queue: List[Tuple[float, int, int, PartialPlacement]] = [
            (u0, next(counter), 0, root)
        ]
        open_depths: Counter = Counter({0: 1})
        closed: set = set()
        u_max = float("-inf")
        eg_rerun_depth = -1
        pops = 0
        self._before_search(order)

        while open_queue:
            if self._out_of_time():
                stats.deadline_hit = True
                break
            u_p, _, depth, partial_p = heapq.heappop(open_queue)
            open_depths[depth] -= 1
            if u_p >= u_upper - _BOUND_EPS:
                if self.terminate_on_bound:
                    break  # frontier cannot beat the incumbent (line 6)
                if depth > 0:
                    continue  # stale per the (quasi-admissible) estimate
                # the root always expands: its estimate proves nothing
            if depth == total:
                # Complete placement better than the incumbent (line 7).
                if u_p < u_upper:
                    best_partial, u_upper = partial_p, u_p
                    if rec.enabled:
                        rec.event(
                            "bound_updated", bound=u_upper,
                            source="complete_path",
                        )
                if self.terminate_on_bound:
                    break
                continue  # deadline mode: keep improving until time is up
            if self._should_prune_pop(depth, total):
                stats.paths_pruned += 1
                if rec.enabled:
                    rec.inc("ostro_paths_pruned_total", reason="probabilistic")
                    rec.event(
                        "path_pruned",
                        depth=depth,
                        reason="probabilistic",
                        evaluation=u_p,
                    )
                continue
            # "Search advanced" triggers for the EG bound re-run
            # (Algorithm 2 lines 15-18): the frontier's best evaluation
            # rose, or (deadline mode) the search reached a new depth or
            # the periodic trigger fired.
            pops += 1
            periodic = (
                self.eg_rerun_every_pops is not None
                and pops % self.eg_rerun_every_pops == 0
            )
            advanced = (
                u_p > u_max
                or periodic
                or (
                    self.eg_rerun_policy == "on-advance"
                    and depth > eg_rerun_depth
                )
            )
            rerun_ok = (
                self.eg_rerun_policy == "on-advance" or depth > eg_rerun_depth
            ) and self._allow_bound_rerun(self._last_eg_duration)
            if advanced and rerun_ok:
                u_max = max(u_max, u_p)
                eg_rerun_depth = max(eg_rerun_depth, depth)
                rerun_started = time.perf_counter()
                candidate = self._eg_continue(
                    partial_p, order[depth:], objective, bound_estimator, stats
                )
                self._last_eg_duration = (
                    time.perf_counter() - rerun_started
                )
                if rec.enabled:
                    rec.observe(
                        "ostro_eg_bound_seconds", self._last_eg_duration
                    )
                if candidate is not None and candidate[1] < u_upper:
                    best_partial, u_upper = candidate
                    if rec.enabled:
                        rec.event(
                            "bound_updated", bound=u_upper, source="eg_rerun"
                        )

            node_name = order[depth]
            targets = candidate_targets(
                partial_p, node_name, dedup=self.greedy_config.dedup
            )
            cap = self.greedy_config.max_full_candidates
            use_numpy = kernel.numpy_active()
            if cap is not None and len(targets) > cap:
                # Preselect by the cheap immediate-cost proxy, as EG does:
                # estimating hundreds of symmetric children would starve
                # the search of depth.
                if use_numpy:
                    costs = kernel.immediate_costs(
                        partial_p, objective, node_name, targets
                    )
                    if kernel.crosscheck_active():
                        kernel.verify_immediate_costs(
                            partial_p, objective, node_name, targets, costs
                        )
                    # stable, like sorted() with a key: ties keep order
                    index = sorted(
                        range(len(targets)), key=costs.__getitem__
                    )
                    targets = [targets[i] for i in index][:cap]
                else:
                    targets = sorted(
                        targets,
                        key=lambda t: _immediate_cost(
                            partial_p, objective, node_name, t
                        ),
                    )[:cap]
            branched = 0
            rest = order[depth + 1 :]
            if use_numpy:
                # Closed-set dedup first, against canonical keys built
                # without mutating the path: the surviving targets are
                # then estimated in one array batch and replayed with the
                # exact per-candidate stats/event/prune/push sequence of
                # the scalar loop below.
                node_class = class_of[node_name]
                base_counted = Counter(
                    (class_of[a.node], a.host, a.disk)
                    for a in partial_p.assignments.values()
                )
                survivors = []
                for target in targets:
                    counted = base_counted.copy()
                    counted[(node_class, target.host, target.disk)] += 1
                    key = frozenset(counted.items())
                    if key in closed:
                        continue
                    closed.add(key)
                    survivors.append(target)
                batch_started = time.perf_counter()
                batch = kernel.batch_score(
                    partial_p, node_name, survivors, rest, objective,
                    estimator,
                )
                batch_dt = time.perf_counter() - batch_started
                if kernel.crosscheck_active():
                    kernel.verify_batch(
                        partial_p, node_name, survivors, rest, objective,
                        estimator, batch,
                    )
                per_cand_dt = (
                    batch_dt / len(survivors) if survivors else 0.0
                )
                for target, (u_q, child_est_bw, child_est_c) in zip(
                    survivors, batch
                ):
                    if rec.enabled:
                        rec.inc("ostro_estimates_total")
                        rec.inc("ostro_candidates_scored_total")
                        rec.observe("ostro_estimate_seconds", per_cand_dt)
                        rec.event(
                            "estimate_computed",
                            node=node_name,
                            host=target.host,
                            remaining=len(rest),
                            est_bw_mbps=child_est_bw,
                            est_hosts=child_est_c,
                            seconds=per_cand_dt,
                        )
                    stats.candidates_scored += 1
                    if u_q >= u_upper - _BOUND_EPS:
                        stats.paths_pruned += 1
                        if rec.enabled:
                            rec.inc(
                                "ostro_paths_pruned_total", reason="bound"
                            )
                            rec.event(
                                "path_pruned",
                                depth=depth + 1,
                                reason="bound",
                                evaluation=u_q,
                                bound=u_upper,
                            )
                        continue
                    # clone-then-assign == assign-then-clone, bit-exactly
                    child = partial_p.clone()
                    child.assign(node_name, target.host, target.disk)
                    heapq.heappush(
                        open_queue, (u_q, next(counter), depth + 1, child)
                    )
                    open_depths[depth + 1] += 1
                    branched += 1
                targets = []
            for target in targets:
                # Scratch scoring: apply the candidate to the popped path
                # itself, score it, and undo -- cloning the state only for
                # candidates that actually enter the open queue. The undo
                # is bit-exact (see PartialPlacement.unassign), so the
                # scored values match the clone-per-candidate path.
                if self.scratch_scoring:
                    scored = partial_p
                    scored.assign(node_name, target.host, target.disk)
                else:
                    scored = partial_p.clone()
                    scored.assign(node_name, target.host, target.disk)
                key = canonical_key(scored)
                if key in closed:
                    if self.scratch_scoring:
                        scored.unassign(node_name)
                    continue
                closed.add(key)
                if rec.enabled:
                    est_started = time.perf_counter()
                    child_est_bw, child_est_c = estimator.estimate(
                        scored, rest
                    )
                    est_dt = time.perf_counter() - est_started
                    rec.inc("ostro_estimates_total")
                    rec.inc("ostro_candidates_scored_total")
                    rec.observe("ostro_estimate_seconds", est_dt)
                    rec.event(
                        "estimate_computed",
                        node=node_name,
                        host=target.host,
                        remaining=len(rest),
                        est_bw_mbps=child_est_bw,
                        est_hosts=child_est_c,
                        seconds=est_dt,
                    )
                else:
                    child_est_bw, child_est_c = estimator.estimate(
                        scored, rest
                    )
                u_q = objective.score(
                    scored.ubw + child_est_bw, scored.uc + child_est_c
                )
                stats.candidates_scored += 1
                if u_q >= u_upper - _BOUND_EPS:
                    stats.paths_pruned += 1
                    if rec.enabled:
                        rec.inc("ostro_paths_pruned_total", reason="bound")
                        rec.event(
                            "path_pruned",
                            depth=depth + 1,
                            reason="bound",
                            evaluation=u_q,
                            bound=u_upper,
                        )
                    if self.scratch_scoring:
                        scored.unassign(node_name)
                    continue
                if self.scratch_scoring:
                    child = scored.clone()
                    scored.unassign(node_name)
                else:
                    child = scored
                heapq.heappush(
                    open_queue, (u_q, next(counter), depth + 1, child)
                )
                open_depths[depth + 1] += 1
                branched += 1
            stats.paths_expanded += 1
            if rec.enabled:
                rec.inc("ostro_nodes_expanded_total")
                rec.set_gauge("ostro_open_list_size", len(open_queue))
                rec.event(
                    "path_expanded",
                    depth=depth,
                    evaluation=u_p,
                    open_size=len(open_queue),
                )
            self._after_expansion(open_depths, float(max(branched, 1)))
            if (
                self.limits.max_expansions is not None
                and stats.paths_expanded >= self.limits.max_expansions
            ):
                break

        if best_partial is None:
            raise PlacementError(
                f"no feasible placement found for {topology.name!r}"
            )
        return PlacementResult(
            placement=best_partial.freeze(),
            objective_value=u_upper,
            stats=stats,
        )

    # ------------------------------------------------------------------

    def _eg_bound(
        self,
        root: PartialPlacement,
        order: Sequence[str],
        objective: Objective,
        estimator: LowerBoundEstimator,
        stats: SearchStats,
    ) -> Tuple[Optional[PartialPlacement], float]:
        """Full EG run for the initial upper bound."""
        candidate = self._eg_continue(root, order, objective, estimator, stats)
        if candidate is None:
            return None, float("inf")
        return candidate

    def _eg_continue(
        self,
        partial: PartialPlacement,
        remaining: Sequence[str],
        objective: Objective,
        estimator: LowerBoundEstimator,
        stats: SearchStats,
    ) -> Optional[Tuple[PartialPlacement, float]]:
        """Finish a partial placement greedily; None when EG gets stuck.

        A failed run is retried once with the remaining nodes in
        bandwidth-descending order (the restart strategy of
        :func:`repro.core.greedy.greedy_with_restarts`).
        """
        topology = partial.topology
        orders = [list(remaining)]
        bw_order = sorted(
            remaining,
            key=lambda n: (-topology.bandwidth_of(n), n),
        )
        if bw_order != orders[0]:
            orders.append(bw_order)
        rec = obs.get_recorder()
        for order in orders:
            # Count each greedy run actually executed -- a stuck first
            # order triggers a bandwidth-ordered retry, and runtime
            # accounting (Fig. 9) must reflect both.
            stats.eg_bound_runs += 1
            if rec.enabled:
                rec.inc("ostro_eg_bound_runs_total")
            clone = partial.clone()
            try:
                run_greedy_from(
                    clone,
                    order,
                    objective,
                    estimator,
                    self.greedy_config,
                    stats,
                )
            except PlacementError:
                continue
            return clone, objective.score(clone.ubw, clone.uc)
        return None
