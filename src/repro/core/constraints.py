"""Feasibility checks for placing one node (Section II-B2).

Three constraint families gate every candidate host:

* **capacity** -- vCPU/memory for VMs, disk space for volumes;
* **diversity** -- for every diversity zone the node belongs to, the
  candidate host must be separated from every already placed member at the
  zone's level;
* **bandwidth** -- every link on the path to every already placed neighbor
  must have enough free capacity, *cumulatively* across neighbors (two
  flows leaving the same NIC share that NIC's headroom).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.placement import PartialPlacement
from repro.core.topology import ApplicationTopology
from repro.datacenter.resources import EPSILON


def capacity_ok(
    partial: PartialPlacement,
    node_name: str,
    host: int,
    disk: Optional[int] = None,
) -> bool:
    """True if the node's CPU/memory (VM) or disk space (volume) fits."""
    node = partial.topology.node(node_name)
    if node.is_vm:
        return partial.state.vm_fits(
            host, partial.state.reserved_vcpus(node), node.mem_gb
        )
    if disk is None:
        return False
    return partial.state.volume_fits(disk, node.size_gb)


def diversity_ok(
    partial: PartialPlacement,
    node_name: str,
    host: int,
) -> bool:
    """True if all diversity zones of the node tolerate this host.

    Checks the candidate against every *already placed* member of every
    zone containing the node: the pair must be separated at the zone's
    level (different hosts / racks / pods / data centers).
    """
    cloud = partial.state.cloud
    for zone in partial.topology.zones_of(node_name):
        for member in zone.members:
            if member == node_name:
                continue
            assigned = partial.assignments.get(member)
            if assigned is None:
                continue
            if not cloud.separated_at(host, assigned.host, zone.level):
                return False
    return True


def bandwidth_demand(
    partial: PartialPlacement,
    node_name: str,
    host: int,
) -> Dict[int, float]:
    """Per-link bandwidth the node would reserve if placed on ``host``.

    Aggregates flows to every already placed neighbor, summing demand on
    shared links so the subsequent feasibility check is cumulative.
    """
    demand: Dict[int, float] = {}
    for neighbor, bw_mbps in partial.topology.neighbors(node_name):
        if bw_mbps <= 0:
            continue
        assigned = partial.assignments.get(neighbor)
        if assigned is None:
            continue
        for link in partial.resolver.path(host, assigned.host):
            demand[link] = demand.get(link, 0.0) + bw_mbps
    return demand


def bandwidth_ok(
    partial: PartialPlacement,
    node_name: str,
    host: int,
) -> bool:
    """True if all paths to placed neighbors have enough free bandwidth."""
    demand = bandwidth_demand(partial, node_name, host)
    free = partial.state.free_bw
    return all(needed <= free[link] + EPSILON for link, needed in demand.items())


def latency_ok(
    partial: PartialPlacement,
    node_name: str,
    host: int,
) -> bool:
    """True if every latency-bounded pipe to a placed neighbor holds.

    A pipe's ``max_hops`` caps the number of network links between its
    endpoints' hosts (the Section-VI latency requirement, with hop count
    as the fabric's latency proxy).
    """
    topology = partial.topology
    for neighbor, _ in topology.neighbors(node_name):
        assigned = partial.assignments.get(neighbor)
        if assigned is None:
            continue
        link = topology.link_between(node_name, neighbor)
        if link is None or link.max_hops is None:
            continue
        if len(partial.resolver.path(host, assigned.host)) > link.max_hops:
            return False
    return True


class NodeConstraintContext:
    """Host-independent constraint setup for one (partial, node) pair.

    Candidate generation checks the same node against hundreds of hosts;
    everything that does not depend on the candidate host -- which
    neighbors are placed and where, which zone members are placed, which
    pipes carry latency bounds -- is identical across those checks. This
    context hoists that setup out of the per-host loop; ``diversity_ok`` /
    ``latency_ok`` / ``bandwidth_ok`` then reduce to short loops over
    precollected (placed host, parameter) pairs, each exactly equivalent
    to its module-level namesake.
    """

    def __init__(self, partial: PartialPlacement, node_name: str) -> None:
        self.partial = partial
        topology = partial.topology
        assignments = partial.assignments
        #: (placed neighbor host, flow Mbps) for every positive-bandwidth
        #: link to an already placed neighbor
        self.flows: List[Tuple[int, float]] = []
        #: (placed neighbor host, max hops) for every latency-bounded pipe
        self.hop_limits: List[Tuple[int, int]] = []
        for neighbor, bw_mbps in topology.neighbors(node_name):
            assigned = assignments.get(neighbor)
            if assigned is None:
                continue
            if bw_mbps > 0:
                self.flows.append((assigned.host, bw_mbps))
            link = topology.link_between(node_name, neighbor)
            if link is not None and link.max_hops is not None:
                self.hop_limits.append((assigned.host, link.max_hops))
        #: (placed zone-member host, separation level) pairs
        self.separations: List[Tuple[int, object]] = []
        for zone in topology.zones_of(node_name):
            for member in zone.members:
                if member == node_name:
                    continue
                assigned = assignments.get(member)
                if assigned is not None:
                    self.separations.append((assigned.host, zone.level))

    def diversity_ok(self, host: int) -> bool:
        """Equivalent of :func:`diversity_ok` for this node."""
        if not self.separations:
            return True
        separated_at = self.partial.state.cloud.separated_at
        return all(
            separated_at(host, member_host, level)
            for member_host, level in self.separations
        )

    def latency_ok(self, host: int) -> bool:
        """Equivalent of :func:`latency_ok` for this node."""
        if not self.hop_limits:
            return True
        hop_count = self.partial.resolver.hop_count
        return all(
            hop_count(host, neighbor_host) <= max_hops
            for neighbor_host, max_hops in self.hop_limits
        )

    def bandwidth_ok(self, host: int) -> bool:
        """Equivalent of :func:`bandwidth_ok` for this node."""
        if not self.flows:
            return True
        path = self.partial.resolver.path
        demand: Dict[int, float] = {}
        for neighbor_host, bw_mbps in self.flows:
            for link in path(host, neighbor_host):
                demand[link] = demand.get(link, 0.0) + bw_mbps
        free = self.partial.state.free_bw
        return all(
            needed <= free[link] + EPSILON for link, needed in demand.items()
        )


def feasible(
    partial: PartialPlacement,
    node_name: str,
    host: int,
    disk: Optional[int] = None,
) -> bool:
    """All constraint families at once (capacity first: cheapest)."""
    return (
        capacity_ok(partial, node_name, host, disk)
        and diversity_ok(partial, node_name, host)
        and latency_ok(partial, node_name, host)
        and bandwidth_ok(partial, node_name, host)
    )


def topology_obviously_infeasible(
    topology: ApplicationTopology,
    partial: PartialPlacement,
) -> Optional[str]:
    """Cheap necessary-condition screen run before any search.

    Returns a human-readable reason when some node can never be placed on
    *any* host of an empty version of this cloud (VM larger than the
    biggest host, volume larger than the biggest disk, diversity zone wider
    than the number of separable units), or None when no obvious blocker
    exists. This keeps search algorithms from burning their budget on
    impossible inputs.
    """
    cloud = partial.state.cloud
    max_cpu = max(h.cpu_cores for h in cloud.hosts)
    max_mem = max(h.mem_gb for h in cloud.hosts)
    max_disk = max((d.capacity_gb for d in cloud.disks), default=0.0)
    for name, node in topology.nodes.items():
        if node.is_vm:
            if node.vcpus > max_cpu or node.mem_gb > max_mem:
                return (
                    f"VM {name!r} ({node.vcpus} vCPU / {node.mem_gb} GB) "
                    "exceeds the largest host in the cloud"
                )
        elif node.size_gb > max_disk:
            return (
                f"volume {name!r} ({node.size_gb} GB) exceeds the largest "
                "disk in the cloud"
            )
    unit_counts = {
        0: len(cloud.hosts),
        1: len(cloud.racks),
        2: len(cloud.pods) if cloud.pods else len(cloud.racks),
        3: len(cloud.datacenters),
    }
    for zone in topology.zones:
        separable = unit_counts[int(zone.level)]
        if len(zone.members) > separable:
            return (
                f"diversity zone {zone.name!r} needs {len(zone.members)} "
                f"{zone.level.name.lower()}-separated nodes but the cloud "
                f"only has {separable}"
            )
    return None
