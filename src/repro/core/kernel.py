"""Vectorized scoring kernel (NumPy) behind a runtime switch.

The search algorithms spend almost all of their time in three loops:

* candidate generation -- feasibility-screening every host for one node
  (:func:`repro.core.candidates.candidate_targets`);
* the immediate-cost proxy used to preselect candidates;
* candidate *scoring* -- for each candidate of one node, assigning it,
  running the :class:`~repro.core.heuristic.LowerBoundEstimator` over the
  remaining nodes, and undoing the assignment.

This module re-expresses all three as array kernels: per-cloud static
matrices (:class:`CloudArrays`), a version-gated mirror of the mutable
availability state (:class:`StateView`), and a batch scorer that
evaluates a node's whole candidate set in one shot -- the estimator runs
once over ``(candidates x targets)`` matrices instead of once per
candidate, and the per-candidate ``assign``/``unassign`` pair is replaced
by simulating the assignment's exact state effects inside the batch.

Bit-exactness contract
----------------------

The NumPy kernel is not "approximately the same": every floating-point
operation runs on the same values in the same order as the pure-Python
reference, so scores, estimates, candidate sets -- and therefore
placements and whole search trajectories -- are **bit-identical**
between ``kernel="python"`` and ``kernel="numpy"``. The key
correspondences:

* target iteration order is canonicalized to sorted placed-host order on
  both sides (``LowerBoundEstimator.estimate`` builds its ledger over
  ``sorted(partial.placed_hosts())``), so "first feasible" /
  "first max" tie-breaks agree;
* ``np.add.at`` and sequential per-flow vector adds replicate the
  reference's dict-accumulation order exactly (``np.sum`` would not: it
  reduces pairwise);
* NIC exclusion sums, whose float grouping differs per candidate, stay
  in ordered scalar Python;
* argmax over ``where(feasible & linked, linked, -inf)`` reproduces the
  reference's strict-``>`` first-tie scan.

``kernel="crosscheck"`` runs both implementations and raises
:class:`KernelMismatch` on the first divergence; CI and the hypothesis
property tests exercise it on every scenario family.

The active kernel is selected with :func:`set_kernel` /
:func:`use_kernel` or the ``REPRO_KERNEL`` environment variable
(``python`` | ``numpy`` | ``crosscheck``). The default is ``numpy``
when NumPy is importable, else ``python``; NumPy is optional and
everything degrades gracefully without it.
"""

from __future__ import annotations

import math
import os
from contextlib import contextmanager
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)
from weakref import WeakKeyDictionary

from repro.datacenter.model import Cloud
from repro.datacenter.resources import EPSILON
from repro.datacenter.state import DataCenterState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.candidates import CandidateTarget
    from repro.core.heuristic import LowerBoundEstimator
    from repro.core.objective import Objective
    from repro.core.placement import PartialPlacement
    from repro.core.topology import ApplicationTopology

try:  # NumPy is optional: the python kernel needs nothing beyond stdlib
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]
    HAVE_NUMPY = False


class KernelMismatch(AssertionError):
    """The numpy kernel and the python reference disagreed bit-for-bit."""


_VALID_KERNELS = ("python", "numpy", "crosscheck")


def _default_kernel() -> str:
    env = os.environ.get("REPRO_KERNEL", "").strip().lower()
    if env in _VALID_KERNELS:
        return env
    return "numpy" if HAVE_NUMPY else "python"


_kernel: str = _default_kernel()


def get_kernel() -> str:
    """Name of the active scoring kernel."""
    return _kernel


def set_kernel(name: str) -> None:
    """Select the scoring kernel ("python" | "numpy" | "crosscheck")."""
    if name not in _VALID_KERNELS:
        raise ValueError(
            f"unknown kernel {name!r}; expected one of {_VALID_KERNELS}"
        )
    if name != "python" and not HAVE_NUMPY:
        raise ValueError(
            f"kernel {name!r} requires numpy, which is not available"
        )
    global _kernel
    _kernel = name


@contextmanager
def use_kernel(name: str) -> Iterator[None]:
    """Temporarily select a scoring kernel (restores the previous one)."""
    previous = _kernel
    set_kernel(name)
    try:
        yield
    finally:
        set_kernel(previous)


def numpy_active() -> bool:
    """True when candidate generation / scoring should use the array path."""
    return HAVE_NUMPY and _kernel in ("numpy", "crosscheck")


def crosscheck_active() -> bool:
    """True when every numpy result must be verified against python."""
    return HAVE_NUMPY and _kernel == "crosscheck"


# ----------------------------------------------------------------------
# shared quantizer
# ----------------------------------------------------------------------


def quantize(value: float) -> int:
    """Quantize a free-resource float to an integer dedup key (1e-6 grid).

    Both kernels key candidate equivalence classes on
    ``floor(value * 1e6 + 0.5)``: an integer, so the python tuple keys
    and the numpy signature matrix (:func:`_quantize_array`) agree
    exactly -- ``round(x, 6)`` has no such array twin, because its float
    result re-rounds differently once vectorized.
    """
    return math.floor(value * 1e6 + 0.5)


#: padding value for signature columns that do not exist for a host
#: (shorter uplink chains); far outside any quantized resource value.
_SIG_PAD = -(2**50)


# ----------------------------------------------------------------------
# per-cloud static arrays
# ----------------------------------------------------------------------


class CloudArrays:
    """Immutable arrays describing one cloud's structure.

    Cached per :class:`~repro.datacenter.model.Cloud` (weakly). Provides
    the vectorized twins of ``distance`` / ``separated_at`` /
    ``hop_count`` / ``uplink_chain``:

    * ``unit_ids(level)`` -- per-host unit id at a separation level; two
      hosts are separated at ``level`` iff their ids differ.
    * ``steps_at_dist[h, d]`` -- one-sided link count for host ``h`` to
      reach a switch whose scope covers separation distance ``d``, so
      ``hop_count(a, b) == steps_at_dist[a, d] + steps_at_dist[b, d]``
      with ``d = distance(a, b)``.
    """

    _CACHE: "WeakKeyDictionary[Cloud, CloudArrays]" = WeakKeyDictionary()

    @classmethod
    def for_cloud(cls, cloud: Cloud) -> "CloudArrays":
        arrays = cls._CACHE.get(cloud)
        if arrays is None:
            arrays = cls(cloud)
            cls._CACHE[cloud] = arrays
        return arrays

    def __init__(self, cloud: Cloud) -> None:
        self.cloud = cloud
        num_hosts = len(cloud.hosts)
        ancestors = cloud._ancestors
        rack_id = np.array([a[0] for a in ancestors], dtype=np.int64)
        # implicit-pod keys are tuples; map them to dense ints (equal
        # tuples <=> equal ints, which is all separated_at needs)
        pod_key_ids: Dict[Any, int] = {}
        pod_id = np.empty(num_hosts, dtype=np.int64)
        for h, (_rack, pod_key, _dc) in enumerate(ancestors):
            pod_id[h] = pod_key_ids.setdefault(pod_key, len(pod_key_ids))
        dc_id = np.array([a[2] for a in ancestors], dtype=np.int64)
        #: per-level unit ids: HOST, RACK, POD, DATACENTER
        self.unit_id_arrays = (
            np.arange(num_hosts, dtype=np.int64),
            rack_id,
            pod_id,
            dc_id,
        )
        chains = cloud._chains
        max_chain = max(len(c) for c in chains)
        self.chain_len = np.array([len(c) for c in chains], dtype=np.int64)
        self.chain_matrix = np.full((num_hosts, max_chain), -1, dtype=np.int64)
        for h, chain in enumerate(chains):
            for k, (link, _switch) in enumerate(chain):
                self.chain_matrix[h, k] = link
        # steps_at_dist[h, 0] = 0; unrealizable distances keep the 0
        # sentinel -- they never occur between two real hosts of one cloud.
        self.steps_at_dist = np.zeros((num_hosts, 5), dtype=np.int64)
        for h, chain in enumerate(chains):
            for dist in range(1, 5):
                steps = Cloud._steps_for_distance(chain, dist)
                if steps is not None:
                    self.steps_at_dist[h, dist] = steps
        self.host_link = np.array(
            [h.link_index for h in cloud.hosts], dtype=np.int64
        )
        self.disk_host = np.array(
            [d.host.index for d in cloud.disks], dtype=np.int64
        )
        self._distance_rows: Dict[int, Any] = {}
        self._hops_rows: Dict[int, Any] = {}
        self._steps_self_rows: Dict[int, Any] = {}
        self._steps_other_rows: Dict[int, Any] = {}
        self._distance_matrix: Any = None

    @property
    def distance_matrix(self) -> Any:
        """Full (H, H) separation-distance matrix (built lazily)."""
        if self._distance_matrix is None:
            host_id, rack_id, pod_id, dc_id = self.unit_id_arrays
            matrix = np.where(
                dc_id[:, None] != dc_id[None, :],
                4,
                np.where(
                    pod_id[:, None] != pod_id[None, :],
                    3,
                    np.where(
                        rack_id[:, None] != rack_id[None, :],
                        2,
                        np.where(host_id[:, None] != host_id[None, :], 1, 0),
                    ),
                ),
            ).astype(np.int64)
            matrix.setflags(write=False)
            self._distance_matrix = matrix
        return self._distance_matrix

    def unit_ids(self, level: int) -> Any:
        """Per-host unit ids at separation level 0..3."""
        return self.unit_id_arrays[level]

    def distance_row(self, host: int) -> Any:
        """``distance(h, host)`` for every host ``h`` (int64 array)."""
        row = self._distance_rows.get(host)
        if row is None:
            _, rack_id, pod_id, dc_id = self.unit_id_arrays
            row = np.where(
                dc_id != dc_id[host],
                4,
                np.where(
                    pod_id != pod_id[host],
                    3,
                    np.where(rack_id != rack_id[host], 2, 1),
                ),
            ).astype(np.int64)
            row[host] = 0
            row.setflags(write=False)
            self._distance_rows[host] = row
        return row

    def steps_self(self, host: int) -> Any:
        """``steps_at_dist[h, distance(h, host)]`` for every host ``h``.

        The variable-side half of the hop count to a fixed peer ``host``.
        """
        row = self._steps_self_rows.get(host)
        if row is None:
            dist = self.distance_row(host)
            row = self.steps_at_dist[np.arange(len(dist)), dist]
            row.setflags(write=False)
            self._steps_self_rows[host] = row
        return row

    def steps_other(self, host: int) -> Any:
        """``steps_at_dist[host, distance(h, host)]`` for every host ``h``.

        The fixed peer's half of the hop count.
        """
        row = self._steps_other_rows.get(host)
        if row is None:
            dist = self.distance_row(host)
            row = self.steps_at_dist[host][dist]
            row.setflags(write=False)
            self._steps_other_rows[host] = row
        return row

    def hops_row(self, host: int) -> Any:
        """``hop_count(h, host)`` for every host ``h`` (int64 array)."""
        row = self._hops_rows.get(host)
        if row is None:
            row = self.steps_self(host) + self.steps_other(host)
            row.setflags(write=False)
            self._hops_rows[host] = row
        return row

    def pair_hops(self, hosts_a: Any, hosts_b: Any) -> Any:
        """Element-wise ``hop_count(a, b)`` over two host-index arrays."""
        _, rack_id, pod_id, dc_id = self.unit_id_arrays
        dist = np.where(
            dc_id[hosts_a] != dc_id[hosts_b],
            4,
            np.where(
                pod_id[hosts_a] != pod_id[hosts_b],
                3,
                np.where(
                    rack_id[hosts_a] != rack_id[hosts_b],
                    2,
                    np.where(hosts_a != hosts_b, 1, 0),
                ),
            ),
        )
        return (
            self.steps_at_dist[hosts_a, dist]
            + self.steps_at_dist[hosts_b, dist]
        )


# ----------------------------------------------------------------------
# per-state mirror
# ----------------------------------------------------------------------


class StateView:
    """NumPy mirror of one :class:`DataCenterState`'s free-resource lists.

    Refreshed lazily: the state's ``version`` counter (bumped by every
    mutator, including fault injection and the bit-exact undo path) gates
    re-copying, so bursts of candidate generations against an unchanged
    state reuse the same arrays.
    """

    _CACHE: "WeakKeyDictionary[DataCenterState, StateView]" = (
        WeakKeyDictionary()
    )

    @classmethod
    def for_state(cls, state: DataCenterState) -> "StateView":
        view = cls._CACHE.get(state)
        if view is None:
            view = cls(state)
            cls._CACHE[state] = view
        view.refresh()
        return view

    def __init__(self, state: DataCenterState) -> None:
        self.state = state
        self.version = -1
        self.cpu_free: Any = None
        self.mem_free: Any = None
        self.disk_free: Any = None
        self.bw_free: Any = None
        self.active: Any = None

    def refresh(self) -> None:
        state = self.state
        if self.version == state.version and self.cpu_free is not None:
            return
        self.cpu_free = np.array(state.free_cpu, dtype=np.float64)
        self.mem_free = np.array(state.free_mem, dtype=np.float64)
        self.disk_free = np.array(state.free_disk, dtype=np.float64)
        self.bw_free = np.array(state.free_bw, dtype=np.float64)
        self.active = np.array(state.host_units, dtype=np.int64) > 0
        self.version = state.version


# ----------------------------------------------------------------------
# candidate generation
# ----------------------------------------------------------------------


def _quantize_array(values: Any) -> Any:
    """Array twin of :func:`quantize` (exact: quantized magnitudes < 2^53)."""
    return np.floor(values * 1e6 + 0.5).astype(np.int64)


_HASH_WEIGHTS: Dict[int, Any] = {}


def _hash_weights(ncols: int) -> Any:
    """Per-column odd multipliers for wrapping-int64 row hashes.

    Powers of an odd constant (Fibonacci hashing multiplier), computed
    with wrapping array arithmetic; cached per signature width.
    """
    weights = _HASH_WEIGHTS.get(ncols)
    if weights is None:
        weights = np.full(ncols, np.int64(-0x61C8864680B583EB))
        weights[0] = 1
        np.multiply.accumulate(weights, out=weights)
        _HASH_WEIGHTS[ncols] = weights
    return weights


def _bandwidth_feasible(
    arrays: CloudArrays,
    view: StateView,
    flows: Sequence[Tuple[int, float]],
) -> Any:
    """Vectorized cumulative-bandwidth feasibility over all hosts.

    Reproduces ``NodeConstraintContext.bandwidth_ok`` for every candidate
    host at once. The per-link demand a candidate host ``h`` induces
    splits into candidate-side chain links (``h``'s first ``steps``
    uplinks) and neighbor-side chain links; the two sides never share a
    link (both prefixes stop below the pair's meeting switch), so they
    can be checked independently. Each side accumulates flow bandwidths
    in flow order, adding 0.0 where the reference's demand dict never
    touches a link -- which is IEEE-exact.
    """
    num_hosts = len(arrays.chain_len)
    max_chain = arrays.chain_matrix.shape[1]
    cand_demand = np.zeros((max_chain, num_hosts))
    #: neighbor-side link index -> per-candidate-host demand
    nbr_demand: Dict[int, Any] = {}
    for nbr_host, bw in flows:
        steps_cand = arrays.steps_self(nbr_host)
        for k in range(max_chain):
            cand_demand[k] += np.where(steps_cand > k, bw, 0.0)
        steps_nbr = arrays.steps_other(nbr_host)
        for m in range(int(arrays.chain_len[nbr_host])):
            link = int(arrays.chain_matrix[nbr_host, m])
            acc = nbr_demand.get(link)
            if acc is None:
                acc = nbr_demand[link] = np.zeros(num_hosts)
            acc += np.where(steps_nbr > m, bw, 0.0)
    ok = np.ones(num_hosts, dtype=bool)
    for k in range(max_chain):
        links = arrays.chain_matrix[:, k]
        free_k = np.where(
            links >= 0, view.bw_free[np.maximum(links, 0)], np.inf
        )
        ok &= cand_demand[k] <= free_k + EPSILON
    for link, demand in nbr_demand.items():
        ok &= demand <= view.bw_free[link] + EPSILON
    return ok


def candidate_targets_numpy(
    partial: "PartialPlacement",
    node_name: str,
    dedup: bool = True,
    limit: Optional[int] = None,
) -> List["CandidateTarget"]:
    """Array twin of :func:`repro.core.candidates.candidate_targets`.

    Feasibility is one boolean mask over all hosts (or disks); dedup is
    an ``np.unique`` over an integer signature matrix, with first-seen
    class order and full-scan multiplicities reproducing the reference
    scan exactly, including its ``limit`` semantics.
    """
    from repro.core import constraints
    from repro.core.candidates import CandidateTarget

    node = partial.topology.node(node_name)
    state = partial.state
    cloud = state.cloud
    arrays = CloudArrays.for_cloud(cloud)
    view = StateView.for_state(state)
    ctx = constraints.NodeConstraintContext(partial, node_name)
    num_hosts = cloud.num_hosts

    if node.is_vm:
        reserved = state.reserved_vcpus(node)
        mask = (reserved <= view.cpu_free + EPSILON) & (
            node.mem_gb <= view.mem_free + EPSILON
        )
    else:
        mask = np.ones(num_hosts, dtype=bool)
    for member_host, level in ctx.separations:
        ids = arrays.unit_ids(int(level))
        mask = mask & (ids != ids[member_host])
    for nbr_host, max_hops in ctx.hop_limits:
        mask = mask & (arrays.hops_row(nbr_host) <= max_hops)
    if ctx.flows:
        mask = mask & _bandwidth_feasible(arrays, view, ctx.flows)

    disks: Optional[Any] = None
    if node.is_vm:
        hosts = np.nonzero(mask)[0]
    else:
        disk_ok = (node.size_gb <= view.disk_free + EPSILON) & mask[
            arrays.disk_host
        ]
        disks = np.nonzero(disk_ok)[0]
        hosts = arrays.disk_host[disks]

    count = len(hosts)
    if count == 0:
        return []

    if not dedup:
        if limit is not None:
            hosts = hosts[:limit]
            if disks is not None:
                disks = disks[:limit]
        if disks is None:
            return [CandidateTarget(host=int(h)) for h in hosts]
        return [
            CandidateTarget(host=int(h), disk=int(d))
            for h, d in zip(hosts, disks)
        ]

    placed_hosts = sorted(partial.placed_hosts())
    max_chain = arrays.chain_matrix.shape[1]
    base = 2 if node.is_vm else 1
    ncols = base + 1 + max_chain + len(placed_hosts)
    signature = np.empty((count, ncols), dtype=np.int64)
    if node.is_vm:
        signature[:, 0] = _quantize_array(view.cpu_free[hosts])
        signature[:, 1] = _quantize_array(view.mem_free[hosts])
    else:
        assert disks is not None
        signature[:, 0] = _quantize_array(view.disk_free[disks])
    signature[:, base] = view.active[hosts]
    chain = arrays.chain_matrix[hosts]
    signature[:, base + 1 : base + 1 + max_chain] = np.where(
        chain >= 0,
        _quantize_array(view.bw_free[np.maximum(chain, 0)]),
        _SIG_PAD,
    )
    if placed_hosts:
        placed_arr = np.asarray(placed_hosts, dtype=np.int64)
        signature[:, base + 1 + max_chain :] = arrays.distance_matrix[
            np.ix_(hosts, placed_arr)
        ]
    # Row-equality classes via a wrapping-int64 row hash: ~16x cheaper
    # than np.unique(axis=0)'s lexicographic row sort. The grouping is
    # verified exactly (every row must equal its class representative);
    # on the astronomically unlikely hash collision, fall back to the
    # exact row-sorting path.
    keys = signature @ _hash_weights(ncols)
    _, inverse, counts = np.unique(
        keys, return_inverse=True, return_counts=True
    )
    first = np.full(len(counts), count, dtype=np.int64)
    np.minimum.at(first, inverse, np.arange(count, dtype=np.int64))
    if not (signature == signature[first[inverse]]).all():
        _, inverse, counts = np.unique(
            signature, axis=0, return_inverse=True, return_counts=True
        )
        inverse = inverse.reshape(-1)
        first = np.full(len(counts), count, dtype=np.int64)
        np.minimum.at(first, inverse, np.arange(count, dtype=np.int64))
    class_order = np.argsort(first, kind="stable")
    if limit is not None:
        class_order = class_order[:limit]
    first_l = first.tolist()
    counts_l = counts.tolist()
    hosts_l = hosts.tolist()
    if disks is None:
        return [
            CandidateTarget(
                host=hosts_l[first_l[ci]], multiplicity=counts_l[ci]
            )
            for ci in class_order.tolist()
        ]
    disks_l = disks.tolist()
    return [
        CandidateTarget(
            host=hosts_l[first_l[ci]],
            disk=disks_l[first_l[ci]],
            multiplicity=counts_l[ci],
        )
        for ci in class_order.tolist()
    ]


# ----------------------------------------------------------------------
# immediate-cost proxy
# ----------------------------------------------------------------------


def _score_array(objective: "Objective", ubw: Any, uc: Any) -> Any:
    """Vectorized twin of ``Objective.score`` (elementwise IEEE-identical:
    the same divisions, multiplications, and one addition in the same
    order, on float64)."""
    bw_term = ubw / objective.ubw_hat if objective.ubw_hat > 0 else 0.0
    c_term = uc / objective.uc_hat if objective.uc_hat > 0 else 0.0
    return objective.theta_bw * bw_term + objective.theta_c * c_term


def immediate_costs(
    partial: "PartialPlacement",
    objective: "Objective",
    node_name: str,
    targets: Sequence["CandidateTarget"],
) -> List[float]:
    """Batch twin of the greedy immediate-cost candidate preselector."""
    state = partial.state
    arrays = CloudArrays.for_cloud(state.cloud)
    view = StateView.for_state(state)
    hosts = np.array([t.host for t in targets], dtype=np.int64)
    delta_bw = np.zeros(len(targets))
    for neighbor, bw in partial.topology.neighbors(node_name):
        assigned = partial.assignments.get(neighbor)
        if assigned is not None and bw > 0:
            delta_bw = delta_bw + bw * arrays.hops_row(assigned.host)[hosts]
    activation = (~view.active[hosts]).astype(np.int64)
    scores = _score_array(
        objective, partial.ubw + delta_bw, partial.uc + activation
    )
    return scores.tolist()


# ----------------------------------------------------------------------
# batch candidate scoring
# ----------------------------------------------------------------------


def batch_score(
    partial: "PartialPlacement",
    node_name: str,
    targets: Sequence["CandidateTarget"],
    rest: Sequence[str],
    objective: "Objective",
    estimator: "LowerBoundEstimator",
) -> List[Tuple[float, float, int]]:
    """Score every candidate target of one node in a single array batch.

    Bit-identical to the reference sequence per target::

        partial.assign(node_name, t.host, t.disk)
        est_bw, est_c = estimator.estimate(partial, rest)
        score = objective.score(partial.ubw + est_bw, partial.uc + est_c)
        partial.unassign(node_name)

    but without mutating ``partial``: the assignment's accounting
    (accumulated ``u_bw``, host activation, post-reserve capacities and
    NIC bandwidths) is simulated exactly, and the estimator's greedy
    approximate placement runs over ``(candidate x target)`` matrices.

    ``rest`` must equal the remaining-node list the reference loop would
    pass (for greedy: unplaced nodes excluding ``node_name``, in node
    order; for A*: ``order[depth + 1:]``).

    Returns ``[(score, est_bw, est_c), ...]`` aligned with ``targets``.
    """
    num_cand = len(targets)
    if num_cand == 0:
        return []
    topology = partial.topology
    state = partial.state
    arrays = CloudArrays.for_cloud(state.cloud)
    view = StateView.for_state(state)
    cand_host_arr = np.array([t.host for t in targets], dtype=np.int64)

    # --- simulate the assignment's accounting -------------------------
    flows: List[Tuple[int, float]] = []
    for neighbor, bw in topology.neighbors(node_name):
        assigned = partial.assignments.get(neighbor)
        if assigned is not None and bw > 0:
            flows.append((assigned.host, bw))
    added_ubw = np.zeros(num_cand)
    for nbr_host, bw in flows:
        added_ubw = added_ubw + bw * arrays.hops_row(nbr_host)[cand_host_arr]
    ubw_after = partial.ubw + added_ubw
    uc_after = partial.uc + (~view.active[cand_host_arr]).astype(np.int64)

    if not rest:
        scores = _score_array(objective, ubw_after + 0.0, uc_after + 0)
        return [(s, 0.0, 0) for s in scores.tolist()]

    est_bw = _EstimateBatch(
        partial, node_name, targets, cand_host_arr, flows, rest, estimator
    ).run()
    scores = _score_array(
        objective, ubw_after + np.array(est_bw), uc_after + 0
    )
    return [
        (s, e, 0) for s, e in zip(scores.tolist(), est_bw)
    ]


class _TopologyPlan:
    """Static per-topology lookups shared by every estimator batch.

    Re-resolving node objects, adjacency lists, diversity zones, and
    per-link forced distances on every locate dominates the Python-side
    cost of a batch; all of it is invariant until the topology mutates,
    which :attr:`ApplicationTopology.cache_version` tracks.
    """

    __slots__ = ("version", "node_info", "links")

    def __init__(self, topology: "ApplicationTopology") -> None:
        self.version = topology.cache_version
        #: name -> (node, is_vm, adjacency list, zones tuple)
        self.node_info: Dict[str, Tuple[Any, bool, Any, Any]] = {}
        for name, node in topology.nodes.items():
            self.node_info[name] = (
                node,
                node.is_vm,
                topology.neighbors(name),
                tuple(topology.zones_of(name)),
            )
        #: positive-bandwidth links as (a, b, bw, forced distance)
        self.links: List[Tuple[str, str, float, int]] = [
            (
                link.a,
                link.b,
                link.bw_mbps,
                _forced_distance(topology, link.a, link.b),
            )
            for link in topology.links
            if link.bw_mbps > 0
        ]


_PLANS: "WeakKeyDictionary[Any, _TopologyPlan]" = WeakKeyDictionary()


def _plan_for(topology: "ApplicationTopology") -> _TopologyPlan:
    plan = _PLANS.get(topology)
    if plan is None or plan.version != topology.cache_version:
        plan = _TopologyPlan(topology)
        _PLANS[topology] = plan
    return plan


class _EstimateBatch:
    """One batched lower-bound estimator run (see :func:`batch_score`).

    Mirrors ``LowerBoundEstimator.estimate`` with the candidate dimension
    vectorized. Targets live along axis 1 of ``(C, T)`` ledgers in the
    reference's iteration order -- the sorted real hosts of the simulated
    partial first, imaginary hosts appended as invented -- so column
    argmax reproduces the reference's first-tie scans. Scalar work whose
    float accumulation order depends on per-candidate key collapsing
    (NIC exclusion sums, outbound debits) stays ordered Python.
    """

    def __init__(
        self,
        partial: "PartialPlacement",
        node_name: str,
        targets: Sequence["CandidateTarget"],
        cand_host_arr: Any,
        flows: List[Tuple[int, float]],
        rest: Sequence[str],
        estimator: "LowerBoundEstimator",
    ) -> None:
        self.partial = partial
        self.topology = partial.topology
        self.plan = _plan_for(self.topology)
        self.assignments = partial.assignments
        self.state = partial.state
        self.cloud = self.state.cloud
        self.arrays = CloudArrays.for_cloud(self.cloud)
        self.node_name = node_name
        self.node = self.topology.node(node_name)
        self.cand_hosts = [t.host for t in targets]
        self.cand_disks = [t.disk for t in targets]
        self.cand_host_arr = cand_host_arr
        self.flows = flows
        config = estimator.config
        self.track_nic = estimator._track_nic
        self.optimistic = config.optimistic_colocation
        self.min_hops = estimator._min_hops
        self.min_hops_arr = np.asarray(self.min_hops)
        self.imag_cpu = estimator._imaginary_cpu
        self.imag_mem = estimator._imaginary_mem
        self.imag_disk = estimator._imaginary_disk
        self.imag_nic = estimator._imaginary_nic
        est_order = sorted(rest, key=self.topology.bandwidth_of, reverse=True)
        self.head: Optional[Set[str]] = None
        if config.max_nodes is not None:
            if self.track_nic:
                self.head = set(est_order[: config.max_nodes])
            else:
                est_order = est_order[: config.max_nodes]
        self.est_order = est_order
        self.cpu_factor = self.state.best_effort_cpu_factor
        num_cand = len(self.cand_hosts)
        self.num_cand = num_cand
        self.arange_c = np.arange(num_cand, dtype=np.int64)
        #: located node -> per-candidate target column (-1 in stranded rows)
        self.loc_col: Dict[str, Any] = {}
        #: fixed real host -> per-candidate column array (lazy)
        self.host_col_cache: Dict[int, Any] = {}
        self.stranded = np.zeros(num_cand, dtype=bool)
        #: node name -> (static (C, T) zone mask or None, dynamic members)
        self._zone_cache: Dict[
            str, Tuple[Any, List[Tuple[int, Any, str]]]
        ] = {}
        self._ids_grids: Dict[int, Any] = {}
        self._t_host_imag: Any = None
        self._init_ledgers()
        self.col_space = np.arange(self.num_targets, dtype=np.int64)

    def _init_ledgers(self) -> None:
        """Build the post-assignment ledgers, one row per candidate.

        Real target columns carry the state's current free capacities,
        with the candidate host's slots adjusted by the simulated
        assignment: one subtract per resource (exactly what
        ``place_vm``/``place_volume`` perform) and sequential per-flow
        NIC debits on both flow endpoints (exactly what ``reserve_path``
        performs, in flow order).
        """
        state = self.state
        cloud = self.cloud
        node = self.node
        num_cand = self.num_cand
        base_placed = sorted(self.partial.placed_hosts())
        base_set = set(base_placed)
        num_targets = len(base_placed) + 1 + len(self.est_order)
        self.num_targets = num_targets
        max_disks = 1
        for h in base_set | set(self.cand_hosts):
            max_disks = max(max_disks, len(cloud.hosts[h].disks))
        self.t_host = np.full((num_cand, num_targets), -1, dtype=np.int64)
        self.t_cpu = np.zeros((num_cand, num_targets))
        self.t_mem = np.zeros((num_cand, num_targets))
        self.t_disk = np.full((num_cand, num_targets, max_disks), -np.inf)
        self.t_nic: Any = (
            np.zeros((num_cand, num_targets)) if self.track_nic else None
        )
        self.cand_col = np.empty(num_cand, dtype=np.int64)
        self.col_of: List[Dict[int, int]] = []
        reserved = node.effective_vcpus(self.cpu_factor) if node.is_vm else 0.0
        real_count = np.empty(num_cand, dtype=np.int64)
        for c, host in enumerate(self.cand_hosts):
            if host in base_set:
                reals = base_placed
            else:
                reals = sorted(base_placed + [host])
            mapping: Dict[int, int] = {}
            nic_after: Dict[int, float] = {}
            for col, h in enumerate(reals):
                mapping[h] = col
                self.t_host[c, col] = h
                self.t_cpu[c, col] = state.free_cpu[h]
                self.t_mem[c, col] = state.free_mem[h]
                for di, disk in enumerate(cloud.hosts[h].disks):
                    self.t_disk[c, col, di] = state.free_disk[disk.index]
                if self.track_nic:
                    nic_after[h] = state.free_bw[cloud.hosts[h].link_index]
            self.col_of.append(mapping)
            real_count[c] = len(reals)
            col_c = mapping[host]
            self.cand_col[c] = col_c
            if node.is_vm:
                self.t_cpu[c, col_c] = state.free_cpu[host] - reserved
                self.t_mem[c, col_c] = state.free_mem[host] - node.mem_gb
            else:
                cand_disk = self.cand_disks[c]
                for di, disk in enumerate(cloud.hosts[host].disks):
                    if disk.index == cand_disk:
                        self.t_disk[c, col_c, di] = (
                            state.free_disk[cand_disk] - node.size_gb
                        )
                        break
            if self.track_nic:
                for nbr_host, bw in self.flows:
                    if nbr_host != host:
                        nic_after[host] = nic_after[host] - bw
                        nic_after[nbr_host] = nic_after[nbr_host] - bw
                for h, value in nic_after.items():
                    self.t_nic[c, mapping[h]] = value
        self.t_count = real_count.copy()

    def _host_cols(self, host: int) -> Any:
        cached = self.host_col_cache.get(host)
        if cached is None:
            cached = np.array(
                [mapping[host] for mapping in self.col_of], dtype=np.int64
            )
            self.host_col_cache[host] = cached
        return cached

    def run(self) -> List[float]:
        for name in self.est_order:
            self._locate(name)
        total = self._bandwidth_total()
        if self.stranded.any():
            total = np.where(self.stranded, np.inf, total)
        return total.tolist()

    # ------------------------------------------------------------------

    def _locate(self, name: str) -> None:
        """Approximately place one remaining node in every candidate row."""
        est_node, is_vm, neighbor_list, zones = self.plan.node_info[name]
        vcpus = est_node.effective_vcpus(self.cpu_factor) if is_vm else 0.0
        num_cand = self.num_cand

        # -- link bandwidth toward already-located targets ---------------
        bw_to_placed = 0.0
        bw_to_remaining = 0.0
        keyed: List[Tuple[Any, float]] = []
        has_negative = False
        assignments = self.assignments
        loc_col = self.loc_col
        for neighbor, bw in neighbor_list:
            if neighbor == self.node_name:
                cols = self.cand_col
            else:
                assigned = assignments.get(neighbor)
                if assigned is not None:
                    cols = self._host_cols(assigned.host)
                else:
                    cols = loc_col.get(neighbor)
                    if cols is None:
                        bw_to_remaining += bw
                        continue
            bw_to_placed += bw
            if bw < 0:
                has_negative = True
            keyed.append((cols, bw))
        force_new = bw_to_placed == 0.0 or bw_to_remaining > bw_to_placed

        pos_keyed = [kb for kb in keyed if kb[1] > 0]
        nic = (
            self._nic_payload(keyed, pos_keyed, has_negative)
            if self.track_nic
            else None
        )

        choice: Optional[Any] = None
        linked: Optional[Any] = None
        if force_new:
            chosen = np.full(num_cand, -1, dtype=np.int64)
        else:
            linked = self._linked_matrix(keyed, pos_keyed, has_negative)
            choice = self._best_existing(
                est_node, is_vm, vcpus, name, zones, linked, nic
            )
            chosen = choice.copy()

        # -- fresh imaginary hosts for rows with no existing target ------
        fresh_rows = np.nonzero((chosen == -1) & ~self.stranded)[0]
        if len(fresh_rows):
            fresh_cols = self.t_count[fresh_rows]
            self.t_cpu[fresh_rows, fresh_cols] = self.imag_cpu
            self.t_mem[fresh_rows, fresh_cols] = self.imag_mem
            self.t_disk[fresh_rows, fresh_cols, :] = -np.inf
            self.t_disk[fresh_rows, fresh_cols, 0] = self.imag_disk
            if self.track_nic:
                assert nic is not None
                self.t_nic[fresh_rows, fresh_cols] = self.imag_nic
                ok_arr = self._fresh_nic_ok(nic, fresh_rows)
                accepted = fresh_rows[ok_arr]
                chosen[accepted] = fresh_cols[ok_arr]
                self.t_count[accepted] += 1
                rejected_rows = fresh_rows[~ok_arr]
                if len(rejected_rows):
                    # the fresh host cannot carry the flows; retry the
                    # existing targets (all row state is row-local, so
                    # the late evaluation equals the pre-fresh one)
                    if choice is None:
                        if linked is None:
                            linked = self._linked_matrix(
                                keyed, pos_keyed, has_negative
                            )
                        choice = self._best_existing(
                            est_node, is_vm, vcpus, name, zones, linked, nic
                        )
                    fallback = choice[rejected_rows]
                    good = fallback >= 0
                    chosen[rejected_rows[good]] = fallback[good]
                    self.stranded[rejected_rows[~good]] = True
            else:
                chosen[fresh_rows] = fresh_cols
                self.t_count[fresh_rows] += 1

        self._consume(est_node, is_vm, vcpus, chosen, nic)
        self.loc_col[name] = chosen

    def _linked_matrix(
        self,
        keyed: List[Tuple[Any, float]],
        pos_keyed: List[Tuple[Any, float]],
        has_negative: bool,
    ) -> Any:
        """(C, T) bandwidth toward each target, built only when needed."""
        linked = np.zeros((self.num_cand, self.num_targets))
        if has_negative:
            if keyed:
                rows = np.concatenate([self.arange_c] * len(keyed))
                cols_flat = np.concatenate([cols for cols, _ in keyed])
                vals = np.concatenate(
                    [np.full(self.num_cand, bw) for _, bw in keyed]
                )
                # unbuffered in-order accumulation == the reference's
                # bw_to_target dict (same addends, same order per cell)
                np.add.at(linked, (rows, cols_flat), vals)
        else:
            # zero-bandwidth terms are addition-neutral, so only positive
            # flows touch the matrix; per-entry fancy adds accumulate
            # shared cells in the reference's neighbor order
            arange_c = self.arange_c
            for cols, bw in pos_keyed:
                linked[arange_c, cols] += bw
        return linked

    def _nic_payload(
        self,
        keyed: List[Tuple[Any, float]],
        pos_keyed: List[Tuple[Any, float]],
        has_negative: bool,
    ) -> Tuple[Any, ...]:
        """Shape-specialized summary of the node's NIC flows.

        Zero, one, two, or three positive flows vectorize exactly: the
        per-row collapsing of flows landing on the same column is a
        finite case split, so each collapsed item's value, each ordered
        exclusion sum, and the ordered total are one of a handful of
        scalar expressions selected per row. More flows (or any negative
        bandwidth) fall back to the reference's per-candidate dicts.
        """
        k = len(pos_keyed)
        if not has_negative and k == 0:
            return ("none",)
        if not has_negative and k == 1:
            return ("one", pos_keyed[0][0], pos_keyed[0][1])
        if not has_negative and k == 2:
            (c0, b0), (c1, b1) = pos_keyed
            coll = c0 == c1
            s = b0 + b1
            # collapsed rows carry one item of value s at c0
            eff0 = np.where(coll, s, b0)
            excl0 = np.where(coll, 0.0, b1)
            return ("two", c0, b0, c1, b1, coll, s, eff0, excl0)
        if not has_negative and k == 3:
            (c0, b0), (c1, b1), (c2, b2) = pos_keyed
            e01 = c0 == c1
            e02 = c0 == c2
            e12 = c1 == c2
            s01 = b0 + b1
            s02 = b0 + b2
            s12 = b1 + b2
            t012 = s01 + b2
            t021 = s02 + b1
            t0_12 = b0 + s12
            p_all = e01 & e02
            # item existence after collapsing (collapsed flows join the
            # earlier item, keeping first-insertion order)
            exists1 = ~e01
            exists2 = ~e02 & ~e12
            val0 = np.where(
                p_all, t012, np.where(e01, s01, np.where(e02, s02, b0))
            )
            val1 = np.where(e12, s12, b1)
            # ordered exclusion sums (the addends other items contribute
            # when this item's column is the chosen target)
            excl0 = np.where(
                p_all, 0.0, np.where(e01, b2, np.where(e02, b1, s12))
            )
            excl1 = np.where(e12, b0, s02)
            totals = np.where(
                e02 & ~e01, t021, np.where(e12 & ~e01, t0_12, t012)
            )
            return (
                "three",
                c0,
                c1,
                c2,
                val0,
                val1,
                b2,
                excl0,
                excl1,
                s01,
                exists1,
                exists2,
                totals,
            )
        num_cand = self.num_cand
        per_cand: List[Dict[int, float]] = [{} for _ in range(num_cand)]
        for cols, bw in keyed:
            for c in range(num_cand):
                col = int(cols[c])
                bucket = per_cand[c]
                bucket[col] = bucket.get(col, 0.0) + bw
        totals_list = []
        for c in range(num_cand):
            tot = 0.0
            for bw in per_cand[c].values():
                if bw > 0:
                    tot += bw
            totals_list.append(tot)
        return ("gen", per_cand, np.asarray(totals_list))

    def _fresh_nic_ok(self, nic: Tuple[Any, ...], fresh_rows: Any) -> Any:
        """Per-fresh-row NIC feasibility of the just-invented target.

        The reference checks every flow against its target's remaining
        NIC, then the outbound sum against the fresh host's NIC -- a
        conjunction, so evaluation order does not matter. The fresh
        column is new, so no flow targets it and the outbound sum is the
        row total.
        """
        mode = nic[0]
        t_nic = self.t_nic
        imag_gate = self.imag_nic + 1e-9
        if mode == "none":
            return np.full(len(fresh_rows), 0.0 <= imag_gate, dtype=bool)
        if mode == "one":
            _, c0, b0 = nic
            g0 = t_nic[fresh_rows, c0[fresh_rows]]
            return (b0 <= g0 + 1e-9) & (b0 <= imag_gate)
        if mode == "two":
            _, c0, b0, c1, b1, coll, s, eff0, _excl0 = nic
            g0 = t_nic[fresh_rows, c0[fresh_rows]]
            g1 = t_nic[fresh_rows, c1[fresh_rows]]
            ok = eff0[fresh_rows] <= g0 + 1e-9
            split = ~coll[fresh_rows]
            ok &= ~split | (b1 <= g1 + 1e-9)
            return ok & (s <= imag_gate)
        if mode == "three":
            (
                _,
                c0,
                c1,
                c2,
                val0,
                val1,
                b2,
                _excl0,
                _excl1,
                _excl2,
                exists1,
                exists2,
                totals,
            ) = nic
            g0 = t_nic[fresh_rows, c0[fresh_rows]]
            g1 = t_nic[fresh_rows, c1[fresh_rows]]
            g2 = t_nic[fresh_rows, c2[fresh_rows]]
            ok = val0[fresh_rows] <= g0 + 1e-9
            ok &= ~exists1[fresh_rows] | (val1[fresh_rows] <= g1 + 1e-9)
            ok &= ~exists2[fresh_rows] | (b2 <= g2 + 1e-9)
            return ok & (totals[fresh_rows] <= imag_gate)
        _, per_cand, totals = nic
        ok_list = []
        for row in fresh_rows:
            c = int(row)
            ok = True
            for col, bw in per_cand[c].items():
                if bw <= 0:
                    continue
                if bw > float(t_nic[c, col]) + 1e-9:
                    ok = False
                    break
            if ok:
                ok = float(totals[c]) <= imag_gate
            ok_list.append(ok)
        return np.array(ok_list, dtype=bool)

    def _best_existing(
        self,
        est_node: Any,
        is_vm: bool,
        vcpus: float,
        name: str,
        zones: Any,
        linked: Any,
        nic: Optional[Tuple[Any, ...]],
    ) -> Any:
        """Per-row best existing target (column), -1 where none is feasible.

        Equivalent to the reference's single-pass scan: the feasible
        linked target with the highest linked bandwidth (strict ``>``,
        so first-in-order wins ties -- numpy's first-max argmax), else
        the first feasible unlinked target.
        """
        mask = self.col_space < self.t_count[:, None]
        if is_vm:
            mask &= (vcpus <= self.t_cpu) & (est_node.mem_gb <= self.t_mem)
        else:
            mask &= (est_node.size_gb <= self.t_disk).any(axis=2)
        if zones:
            self._apply_diversity(mask, name, zones)
        if self.track_nic:
            assert nic is not None
            self._apply_nic(mask, nic)
        linked_pos = linked > 0.0
        linked_masked = np.where(mask & linked_pos, linked, -np.inf)
        best_col = linked_masked.argmax(1)
        best_ok = linked_masked[self.arange_c, best_col] > 0.0
        if best_ok.all():
            return best_col
        unlinked = mask & ~linked_pos
        first_unlinked = unlinked.argmax(1)
        unlinked_ok = unlinked[self.arange_c, first_unlinked]
        return np.where(
            best_ok,
            best_col,
            np.where(unlinked_ok, first_unlinked, -1),
        ).astype(np.int64)

    def _ids_grid(self, level: int) -> Any:
        """``unit_ids(level)`` gathered over ``t_host`` (static per batch:
        fresh imaginary columns never write ``t_host``)."""
        grid = self._ids_grids.get(level)
        if grid is None:
            grid = self.arrays.unit_ids(level)[np.maximum(self.t_host, 0)]
            self._ids_grids[level] = grid
        return grid

    def _apply_diversity(self, mask: Any, name: str, zones: Any) -> None:
        """Mask out targets violating a diversity zone of ``name``.

        Real targets are checked against really-placed members (including
        the simulated candidate) via unit ids; a member approximately
        located on the same target rules that target out; imaginary
        targets are otherwise optimistically considered separable.

        Member checks AND into the mask, so the really-placed members'
        contribution is batch-static and cached as one precomputed
        matrix; only members located during this batch stay dynamic.
        """
        cached = self._zone_cache.get(name)
        if cached is None:
            cached = self._build_zone_cache(name, zones)
            self._zone_cache[name] = cached
        static_mask, dynamic = cached
        if static_mask is not None:
            mask &= static_mask
        if not dynamic:
            return
        t_host = self.t_host
        if self._t_host_imag is None:
            self._t_host_imag = t_host < 0
        imag = self._t_host_imag
        for level, ids, member in dynamic:
            approx = self.loc_col.get(member)
            if approx is None:
                continue
            mask[self.arange_c, approx] = False
            member_real = t_host[self.arange_c, approx]
            applicable = member_real >= 0
            separated = (
                self._ids_grid(level)
                != ids[np.maximum(member_real, 0)][:, None]
            )
            mask &= ~applicable[:, None] | imag | separated

    def _build_zone_cache(
        self, name: str, zones: Any
    ) -> Tuple[Any, List[Tuple[int, Any, str]]]:
        """Split ``name``'s zone-member checks into static and dynamic."""
        t_host = self.t_host
        if self._t_host_imag is None:
            self._t_host_imag = t_host < 0
        imag = self._t_host_imag
        static_mask: Optional[Any] = None
        dynamic: List[Tuple[int, Any, str]] = []
        for zone in zones:
            level = int(zone.level)
            ids = self.arrays.unit_ids(level)
            for member in zone.members:
                if member == name:
                    continue
                if member == self.node_name:
                    member_ids: Any = ids[self.cand_host_arr][:, None]
                else:
                    assigned = self.partial.assignments.get(member)
                    if assigned is None:
                        dynamic.append((level, ids, member))
                        continue
                    member_ids = ids[assigned.host]
                term = imag | (self._ids_grid(level) != member_ids)
                static_mask = term if static_mask is None else (
                    static_mask & term
                )
        return (static_mask, dynamic)

    def _apply_nic(self, mask: Any, nic: Tuple[Any, ...]) -> None:
        """Mask out targets whose NICs cannot carry the node's flows.

        For a target ``t``: every flow toward a *different* target must
        fit that target's NIC, and the outbound sum (all flows except
        those to ``t`` itself) must fit ``t``'s NIC. With at most two
        positive flows every exclusion sum has at most one addend, so the
        whole check vectorizes exactly; the generic shape keeps the
        reference's ordered scalar sums.
        """
        t_nic = self.t_nic
        arange_c = self.arange_c
        mode = nic[0]
        if mode == "none":
            mask &= 0.0 <= t_nic + 1e-9
            return
        if mode == "one":
            _, c0, b0 = nic
            g0 = t_nic[arange_c, c0]
            nic_mask = b0 <= t_nic + 1e-9
            nic_mask[b0 > g0 + 1e-9] = False
            # choosing the flow's own target: exclusion sum is empty
            nic_mask[arange_c, c0] = 0.0 <= g0 + 1e-9
            mask &= nic_mask
            return
        if mode == "two":
            _, c0, b0, c1, b1, coll, s, eff0, excl0 = nic
            g0 = t_nic[arange_c, c0]
            g1 = t_nic[arange_c, c1]
            nic_mask = s <= t_nic + 1e-9
            # a row collapses to one flow of s when both land on c0
            bad0 = eff0 > g0 + 1e-9
            bad1 = ~coll & (b1 > g1 + 1e-9)
            nic_mask[bad0 | bad1] = False
            # per-target overrides: picking c0 excludes the c0 flow from
            # the outbound sum (leaving b1, or nothing when collapsed)
            # but still requires the *other* flow to fit its target
            set0 = coll | ~bad1
            nic_mask[arange_c[set0], c0[set0]] = (excl0 <= g0 + 1e-9)[set0]
            set1 = ~coll & ~bad0
            nic_mask[arange_c[set1], c1[set1]] = b0 <= g1[set1] + 1e-9
            mask &= nic_mask
            return
        if mode == "three":
            (
                _,
                c0,
                c1,
                c2,
                val0,
                val1,
                b2,
                excl0,
                excl1,
                excl2,
                exists1,
                exists2,
                totals3,
            ) = nic
            g0 = t_nic[arange_c, c0]
            g1 = t_nic[arange_c, c1]
            g2 = t_nic[arange_c, c2]
            bad0 = val0 > g0 + 1e-9
            bad1 = exists1 & (val1 > g1 + 1e-9)
            bad2 = exists2 & (b2 > g2 + 1e-9)
            nbad = bad0.astype(np.int64) + bad1 + bad2
            nic_mask = totals3[:, None] <= t_nic + 1e-9
            nic_mask[nbad >= 1] = False
            # an item's column gets its ordered exclusion-sum check when
            # the row is clean, or when this item is the row's only
            # misfit (the reference's single-bad rescue)
            zero = nbad == 0
            one = nbad == 1
            set0 = zero | (bad0 & one)
            nic_mask[arange_c[set0], c0[set0]] = (excl0 <= g0 + 1e-9)[set0]
            set1 = exists1 & (zero | (bad1 & one))
            nic_mask[arange_c[set1], c1[set1]] = (excl1 <= g1 + 1e-9)[set1]
            set2 = exists2 & (zero | (bad2 & one))
            nic_mask[arange_c[set2], c2[set2]] = (excl2 <= g2 + 1e-9)[set2]
            mask &= nic_mask
            return
        _, per_cand, totals = nic
        nic_mask = totals[:, None] <= t_nic + 1e-9
        for c in range(self.num_cand):
            items = [(col, bw) for col, bw in per_cand[c].items() if bw > 0]
            if not items:
                continue
            bad = [
                col for col, bw in items if bw > float(t_nic[c, col]) + 1e-9
            ]
            if bad:
                row = np.zeros(self.num_targets, dtype=bool)
                if len(bad) == 1:
                    col0 = bad[0]
                    excl = 0.0
                    for col, bw in items:
                        if col != col0:
                            excl += bw
                    row[col0] = excl <= float(t_nic[c, col0]) + 1e-9
                nic_mask[c] = row
            else:
                for col0, _bw in items:
                    excl = 0.0
                    for col, bw in items:
                        if col != col0:
                            excl += bw
                    nic_mask[c, col0] = excl <= float(t_nic[c, col0]) + 1e-9
        mask &= nic_mask

    def _consume(
        self,
        est_node: Any,
        is_vm: bool,
        vcpus: float,
        chosen: Any,
        nic: Optional[Tuple[Any, ...]],
    ) -> None:
        """Debit the chosen target's capacities in every non-stranded row."""
        active = chosen >= 0
        if active.all():
            active_rows = self.arange_c
            cols = chosen
        else:
            active_rows = active.nonzero()[0]
            if not len(active_rows):
                return
            cols = chosen[active_rows]
        if is_vm:
            self.t_cpu[active_rows, cols] -= vcpus
            self.t_mem[active_rows, cols] -= est_node.mem_gb
        else:
            on_imag = self.t_host[active_rows, cols] < 0
            imag_rows = active_rows[on_imag]
            if len(imag_rows):
                # imaginary hosts consume unconditionally (the reference
                # has no fit gate on the imaginary branch)
                self.t_disk[imag_rows, chosen[imag_rows], 0] -= (
                    est_node.size_gb
                )
            real_rows = active_rows[~on_imag]
            if len(real_rows):
                real_cols = chosen[real_rows]
                disk_rows = self.t_disk[real_rows, real_cols]
                fits = est_node.size_gb <= disk_rows
                # worst fit: emptiest fitting disk, first-max on ties
                pick = np.argmax(np.where(fits, disk_rows, -np.inf), axis=1)
                has_fit = fits.any(axis=1)
                rr = real_rows[has_fit]
                self.t_disk[rr, real_cols[has_fit], pick[has_fit]] -= (
                    est_node.size_gb
                )
        if self.track_nic:
            assert nic is not None
            self._consume_nic(chosen, nic)

    def _consume_nic(self, chosen: Any, nic: Tuple[Any, ...]) -> None:
        """Debit NIC capacity for flows not absorbed by the chosen target.

        The reference debits each flow's target NIC, then the chosen
        target's NIC by the outbound sum. In the vector modes all debits
        hit distinct slots per row, so the scatter order is immaterial;
        the outbound where-sum reproduces the reference's left-to-right
        scalar accumulation exactly (``0.0 + b0`` is exact).
        """
        mode = nic[0]
        if mode == "none":
            return
        t_nic = self.t_nic
        if mode == "one":
            _, c0, b0 = nic
            rows = np.nonzero((chosen >= 0) & (c0 != chosen))[0]
            if len(rows):
                t_nic[rows, c0[rows]] -= b0
                t_nic[rows, chosen[rows]] -= b0
            return
        if mode == "two":
            _, c0, b0, c1, b1, coll, s, _eff0, _excl0 = nic
            active = chosen >= 0
            rows = (active & coll & (c0 != chosen)).nonzero()[0]
            if len(rows):
                # collapsed rows carry one flow of b0 + b1
                t_nic[rows, c0[rows]] -= s
                t_nic[rows, chosen[rows]] -= s
            split = active & ~coll
            m0 = split & (c0 != chosen)
            m1 = split & (c1 != chosen)
            rows0 = m0.nonzero()[0]
            if len(rows0):
                t_nic[rows0, c0[rows0]] -= b0
            rows1 = m1.nonzero()[0]
            if len(rows1):
                t_nic[rows1, c1[rows1]] -= b1
            outbound = np.where(m0, b0, 0.0) + np.where(m1, b1, 0.0)
            rows_out = (outbound > 0).nonzero()[0]
            if len(rows_out):
                t_nic[rows_out, chosen[rows_out]] -= outbound[rows_out]
            return
        if mode == "three":
            (
                _,
                c0,
                c1,
                c2,
                val0,
                val1,
                b2,
                _excl0,
                _excl1,
                _excl2,
                exists1,
                exists2,
                _totals,
            ) = nic
            active = chosen >= 0
            m0 = active & (c0 != chosen)
            m1 = active & exists1 & (c1 != chosen)
            m2 = active & exists2 & (c2 != chosen)
            rows0 = m0.nonzero()[0]
            if len(rows0):
                t_nic[rows0, c0[rows0]] -= val0[rows0]
            rows1 = m1.nonzero()[0]
            if len(rows1):
                t_nic[rows1, c1[rows1]] -= val1[rows1]
            rows2 = m2.nonzero()[0]
            if len(rows2):
                t_nic[rows2, c2[rows2]] -= b2
            # left-to-right outbound accumulation in item order; absent
            # terms add an exact 0.0
            outbound = (
                np.where(m0, val0, 0.0)
                + np.where(m1, val1, 0.0)
                + np.where(m2, b2, 0.0)
            )
            rows_out = (outbound > 0).nonzero()[0]
            if len(rows_out):
                t_nic[rows_out, chosen[rows_out]] -= outbound[rows_out]
            return
        _, per_cand, _totals = nic
        for c in (chosen >= 0).nonzero()[0]:
            target_col = int(chosen[c])
            outbound = 0.0
            for col, bw in per_cand[c].items():
                if col == target_col or bw <= 0:
                    continue
                outbound += bw
                t_nic[c, col] -= bw
            if outbound > 0:
                t_nic[c, target_col] -= outbound

    # ------------------------------------------------------------------

    def _resolve(self, endpoint: str) -> Tuple[str, Any]:
        """Location of a link endpoint: ("const", host), ("arr", eids),
        or ("skip", None).

        Real hosts encode as their host index; imaginary targets as
        ``-(column + 2)`` (row-locally unique, never colliding with real
        indices). An already-assigned endpoint resolves to a single
        constant host; "skip" means the endpoint is beyond the
        truncation horizon -- its links contribute zero.
        """
        if endpoint == self.node_name:
            return ("arr", self.cand_host_arr)
        assigned = self.partial.assignments.get(endpoint)
        if assigned is not None:
            return ("const", assigned.host)
        if self.head is not None and endpoint not in self.head:
            return ("skip", None)
        cols = self.loc_col.get(endpoint)
        if cols is None:
            return ("skip", None)
        located = self.t_host[self.arange_c, cols]
        return ("arr", np.where(located >= 0, located, -(cols + 2)))

    def _bandwidth_total(self) -> Any:
        """Optimistic reserved bandwidth of all not-yet-reserved links.

        All surviving links are evaluated as one ``(L, C)`` term matrix;
        the per-candidate total is ``np.cumsum`` over the link axis,
        whose accumulation is strictly left-to-right -- the same float
        additions in the same order as the reference's per-link loop
        (``np.sum`` would reduce pairwise and drift). Terms the
        reference skips contribute exactly 0.0, which is
        addition-neutral.
        """
        num_cand = self.num_cand
        resolved: Dict[str, Tuple[str, Any]] = {}
        rows_a: List[Any] = []
        rows_b: List[Any] = []
        bws: List[float] = []
        fds: List[int] = []
        assignments = self.assignments
        node_name = self.node_name
        for a, b, bw, fd in self.plan.links:
            a_known = a == node_name or a in assignments
            b_known = b == node_name or b in assignments
            if a_known and b_known:
                continue  # already reserved in the simulated partial
            ra = resolved.get(a)
            if ra is None:
                ra = self._resolve(a)
                resolved[a] = ra
            rb = resolved.get(b)
            if rb is None:
                rb = self._resolve(b)
                resolved[b] = rb
            if ra[0] == "skip" or rb[0] == "skip":
                continue  # beyond the truncation horizon: optimistically 0
            rows_a.append(ra[1])
            rows_b.append(rb[1])
            bws.append(bw)
            fds.append(fd)
        if not rows_a:
            return np.zeros(num_cand)
        num_links = len(rows_a)
        eid_a = np.empty((num_links, num_cand), dtype=np.int64)
        eid_b = np.empty((num_links, num_cand), dtype=np.int64)
        for i in range(num_links):
            eid_a[i] = rows_a[i]
            eid_b[i] = rows_b[i]
        bw_col = np.array(bws)[:, None]
        fd_arr = np.array(fds, dtype=np.int64)
        mh = self.min_hops_arr
        if self.optimistic:
            forced_col = np.where(
                fd_arr > 0, np.array(bws) * mh[fd_arr], 0.0
            )[:, None]
        else:
            forced_col = (np.array(bws) * mh[np.maximum(fd_arr, 1)])[:, None]
        colocated = eid_a == eid_b
        both_real = (eid_a >= 0) & (eid_b >= 0)
        hops = self.arrays.pair_hops(
            np.maximum(eid_a, 0), np.maximum(eid_b, 0)
        )
        term = np.where(
            colocated, 0.0, np.where(both_real, bw_col * hops, forced_col)
        )
        if num_links == 1:
            return term[0] + 0.0
        return np.cumsum(term, axis=0)[-1]


def _forced_distance(topology: "ApplicationTopology", a: str, b: str) -> int:
    """Minimum separation distance implied by shared diversity zones."""
    forced = 0
    for zone in topology.zones_of(a):
        if b in zone.members:
            forced = max(forced, int(zone.level) + 1)
    return forced


# ----------------------------------------------------------------------
# crosscheck
# ----------------------------------------------------------------------


def verify_batch(
    partial: "PartialPlacement",
    node_name: str,
    targets: Sequence["CandidateTarget"],
    rest: Sequence[str],
    objective: "Objective",
    estimator: "LowerBoundEstimator",
    batch: Sequence[Tuple[float, float, int]],
) -> None:
    """Re-score every target with the python reference; raise on mismatch.

    Runs the bit-exact assign/estimate/unassign sequence on ``partial``
    itself (safe: the last-assigned undo restores every touched slot to
    its exact prior value).
    """
    rest_list = list(rest)
    for target, (score, est_bw, est_c) in zip(targets, batch):
        partial.assign(node_name, target.host, target.disk)
        ref_bw, ref_c = estimator.estimate(partial, rest_list)
        ref_score = objective.score(partial.ubw + ref_bw, partial.uc + ref_c)
        partial.unassign(node_name)
        if score != ref_score or est_bw != ref_bw or est_c != ref_c:
            raise KernelMismatch(
                f"batch score mismatch for node {node_name!r} on host "
                f"{target.host} (disk {target.disk}): numpy "
                f"(score={score!r}, est_bw={est_bw!r}, est_c={est_c}) != "
                f"python (score={ref_score!r}, est_bw={ref_bw!r}, "
                f"est_c={ref_c})"
            )


def verify_immediate_costs(
    partial: "PartialPlacement",
    objective: "Objective",
    node_name: str,
    targets: Sequence["CandidateTarget"],
    costs: Sequence[float],
) -> None:
    """Crosscheck the batch immediate-cost proxy against the reference."""
    from repro.core.greedy import _immediate_cost

    for target, cost in zip(targets, costs):
        ref = _immediate_cost(partial, objective, node_name, target)
        if cost != ref:
            raise KernelMismatch(
                f"immediate cost mismatch for node {node_name!r} on host "
                f"{target.host}: numpy {cost!r} != python {ref!r}"
            )
