"""Shared machinery of the placement algorithms.

Every algorithm implements :class:`PlacementAlgorithm` and returns a
:class:`PlacementResult`: the frozen placement plus the metrics reported in
the paper's tables (reserved bandwidth, new active hosts, wall-clock
runtime) and search statistics (nodes expanded, paths pruned, EG bound
re-runs).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro import obs
from repro.core.objective import Objective
from repro.core.placement import Placement
from repro.core.topology import ApplicationTopology
from repro.datacenter.model import Cloud
from repro.datacenter.state import DataCenterState


@dataclass
class SearchStats:
    """Counters and timings collected while an algorithm runs.

    Attributes:
        runtime_s: wall-clock runtime of the search in seconds.
        candidates_scored: how many (node, host) candidates got the full
            lower-bound evaluation.
        paths_expanded: A* paths popped and expanded (0 for greedy).
        paths_pruned: A* paths discarded by bounding or deadline pruning.
        eg_bound_runs: how many times the EG upper bound was (re)computed.
        backtracks: greedy dead-end recoveries (see
            ``GreedyConfig.max_backtracks``).
        deadline_hit: True when a deadline-bounded search ran out of time
            and returned its best-so-far placement.
    """

    runtime_s: float = 0.0
    candidates_scored: int = 0
    paths_expanded: int = 0
    paths_pruned: int = 0
    eg_bound_runs: int = 0
    backtracks: int = 0
    restarts: int = 0
    deadline_hit: bool = False


@dataclass
class PlacementResult:
    """Outcome of one placement run.

    Attributes:
        placement: the frozen node -> (host, disk) mapping with accounting.
        objective_value: normalized objective of the placement (lower is
            better).
        stats: search statistics, including the runtime.
    """

    placement: Placement
    objective_value: float
    stats: SearchStats = field(default_factory=SearchStats)

    @property
    def reserved_bw_mbps(self) -> float:
        """Total bandwidth reserved across all links (the paper's u_bw)."""
        return self.placement.reserved_bw_mbps

    @property
    def new_active_hosts(self) -> int:
        """Previously idle hosts activated by the placement (u_c)."""
        return self.placement.new_active_hosts

    @property
    def runtime_s(self) -> float:
        """Wall-clock runtime of the search in seconds."""
        return self.stats.runtime_s


class PlacementAlgorithm(ABC):
    """Base class for all placement algorithms.

    Subclasses implement :meth:`_run`; :meth:`place` adds validation,
    objective defaulting, and runtime measurement so results are directly
    comparable across algorithms.
    """

    #: short name used in registries, reports, and CLI flags
    name: str = "abstract"

    def place(
        self,
        topology: ApplicationTopology,
        cloud: Cloud,
        state: Optional[DataCenterState] = None,
        objective: Optional[Objective] = None,
        pinned: Optional[Dict[str, Tuple[int, Optional[int]]]] = None,
    ) -> PlacementResult:
        """Place a whole application topology and return the result.

        Args:
            topology: the application to place (validated first).
            cloud: the physical structure.
            state: current availability; a pristine state is created when
                omitted. The input state is never mutated -- commit the
                returned placement explicitly via the scheduler.
            objective: objective to minimize; defaults to the paper's
                theta_bw=0.6 / theta_c=0.4 weighting.
            pinned: optional node -> (host, disk) pre-assignments that the
                search must honor; used by online adaptation to keep
                already deployed nodes in place while new nodes are added.

        Raises:
            PlacementError: when no feasible placement exists (including
                when a pinned assignment itself is infeasible).
        """
        topology.validate()
        if state is None:
            state = DataCenterState(cloud)
        if objective is None:
            objective = Objective.for_topology(topology, cloud)
        rec = obs.get_recorder()
        if rec.enabled:
            rec.event(
                "placement_started",
                app=topology.name,
                algorithm=self.name,
                nodes=len(topology.nodes),
                links=len(topology.links),
            )
        start = time.perf_counter()
        try:
            with rec.span(
                f"{self.name}.place", app=topology.name
            ):
                result = self._run(
                    topology, cloud, state, objective, pinned or {}
                )
        except Exception as exc:
            if rec.enabled:
                rec.inc(
                    "ostro_placement_failures_total", algorithm=self.name
                )
                rec.event(
                    "placement_failed",
                    app=topology.name,
                    algorithm=self.name,
                    error=str(exc),
                )
            raise
        result.stats.runtime_s = time.perf_counter() - start
        if rec.enabled:
            stats = result.stats
            rec.inc("ostro_placements_total", algorithm=self.name)
            rec.observe(
                "ostro_placement_seconds",
                stats.runtime_s,
                algorithm=self.name,
            )
            if stats.deadline_hit:
                rec.inc("ostro_deadline_hits_total")
            rec.event(
                "placement_finished",
                app=topology.name,
                algorithm=self.name,
                objective_value=result.objective_value,
                reserved_bw_mbps=result.reserved_bw_mbps,
                new_active_hosts=result.new_active_hosts,
                runtime_s=stats.runtime_s,
                candidates_scored=stats.candidates_scored,
                paths_expanded=stats.paths_expanded,
                paths_pruned=stats.paths_pruned,
                eg_bound_runs=stats.eg_bound_runs,
                backtracks=stats.backtracks,
                restarts=stats.restarts,
                deadline_hit=stats.deadline_hit,
            )
        return result

    @abstractmethod
    def _run(
        self,
        topology: ApplicationTopology,
        cloud: Cloud,
        state: DataCenterState,
        objective: Objective,
        pinned: Dict[str, Tuple[int, Optional[int]]],
    ) -> PlacementResult:
        """Algorithm body; must not mutate ``state``."""
