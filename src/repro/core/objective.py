"""The placement objective function (Section II-B1).

The paper minimizes a weighted, normalized sum of two usages::

    min( theta_bw * u_bw / u_bw_hat  +  theta_c * u_c / u_c_hat )

where ``u_bw`` is the bandwidth reserved across all network links for the
application's flows, ``u_c`` is the number of previously idle hosts the
placement activates, and the hatted values are worst-case normalizers so
the two terms are commensurable. ``theta_bw + theta_c = 1``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.topology import ApplicationTopology
from repro.datacenter.model import Cloud
from repro.errors import TopologyError


@dataclass(frozen=True)
class Objective:
    """A concrete, normalized objective for one (topology, cloud) pair.

    Attributes:
        theta_bw: weight of the bandwidth term.
        theta_c: weight of the host-count term.
        ubw_hat: worst-case reserved bandwidth (Mbps x links), used to
            normalize ``u_bw``; zero when the topology has no links.
        uc_hat: worst-case newly-activated host count.
    """

    theta_bw: float
    theta_c: float
    ubw_hat: float
    uc_hat: float

    def __post_init__(self) -> None:
        if self.theta_bw < 0 or self.theta_c < 0:
            raise TopologyError("objective weights must be non-negative")
        if abs(self.theta_bw + self.theta_c - 1.0) > 1e-9:
            raise TopologyError(
                "objective weights must sum to 1 "
                f"(got {self.theta_bw} + {self.theta_c})"
            )

    def score(self, ubw: float, uc: float) -> float:
        """Normalized weighted objective value; lower is better."""
        bw_term = (ubw / self.ubw_hat) if self.ubw_hat > 0 else 0.0
        c_term = (uc / self.uc_hat) if self.uc_hat > 0 else 0.0
        return self.theta_bw * bw_term + self.theta_c * c_term

    @staticmethod
    def for_topology(
        topology: ApplicationTopology,
        cloud: Cloud,
        theta_bw: float = 0.6,
        theta_c: float = 0.4,
    ) -> "Objective":
        """Build an objective with worst-case normalizers for this problem.

        The worst-case bandwidth routes every link through the top of the
        hierarchy (both endpoints' full uplink chains); the worst-case host
        count activates a fresh host per node (bounded by the cloud size).
        """
        ubw_hat = topology.total_link_bandwidth() * cloud.max_hop_count()
        uc_hat = float(min(topology.size(), cloud.num_hosts))
        return Objective(
            theta_bw=theta_bw,
            theta_c=theta_c,
            ubw_hat=ubw_hat,
            uc_hat=max(uc_hat, 1.0),
        )
