"""Placements and incremental placement state.

Two layers live here:

* :class:`PartialPlacement` -- the mutable object the search algorithms work
  on. It owns a :class:`~repro.datacenter.state.DataCenterState` clone and
  applies/undoes one node assignment at a time, incrementally maintaining
  the two usage totals of the objective (``u_bw`` reserved bandwidth and
  ``u_c`` newly activated hosts).
* :class:`Placement` -- the immutable result handed back to callers: the
  node -> (host, disk) mapping plus the accounting needed for the paper's
  tables (reserved bandwidth, newly active hosts, hosts used).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.topology import ApplicationTopology
from repro.datacenter.network import PathResolver
from repro.datacenter.state import DataCenterState
from repro.errors import CapacityError, PlacementError


@dataclass(frozen=True)
class Assignment:
    """Final location of one topology node.

    Attributes:
        node: node name.
        host: global host index.
        disk: global disk index for volumes, None for VMs.
    """

    node: str
    host: int
    disk: Optional[int] = None


@dataclass(frozen=True)
class Placement:
    """An immutable, fully accounted placement of a topology.

    Attributes:
        app_name: name of the placed application topology.
        assignments: node name -> :class:`Assignment`.
        reserved_bw_mbps: total bandwidth reserved across all links (u_bw).
        new_active_hosts: hosts activated by this placement (u_c).
        hosts_used: distinct hosts that received at least one node.
    """

    app_name: str
    assignments: Dict[str, Assignment]
    reserved_bw_mbps: float
    new_active_hosts: int
    hosts_used: int

    def host_of(self, node: str) -> int:
        """Host index assigned to a node."""
        return self.assignments[node].host

    def disk_of(self, node: str) -> Optional[int]:
        """Disk index assigned to a node (None for VMs)."""
        return self.assignments[node].disk


@dataclass
class _AppliedNode:
    """Undo record for one applied assignment.

    ``saved`` holds ``(kind, index, value)`` triples capturing the exact
    float stored in each touched state slot *before* this assignment
    mutated it (kinds: ``"cpu"``, ``"mem"``, ``"disk"``, ``"bw"``), and
    ``prev_ubw`` the accumulated bandwidth total before it. Restoring
    these on a LIFO undo makes assign/undo bit-exact: ``(a - v) + v`` is
    not guaranteed to equal ``a`` in IEEE arithmetic, so scratch-state
    scoring (assign, estimate, unassign on one shared object) would
    otherwise drift away from the clone-per-candidate state it must
    reproduce.
    """

    node: str
    host: int
    disk: Optional[int]
    flows: List[Tuple[Tuple[int, ...], float]] = field(default_factory=list)
    added_ubw: float = 0.0
    activated: bool = False
    saved: List[Tuple[str, int, float]] = field(default_factory=list)
    prev_ubw: float = 0.0
    seq: int = 0


class PartialPlacement:
    """Mutable placement-in-progress over a private state clone.

    Args:
        topology: the application being placed.
        state: availability state to build on; cloned unless ``own_state``
            is True (search code passes pre-cloned states to avoid copies).
        resolver: shared path resolver (memoized per cloud).
        own_state: when True, ``state`` is adopted without cloning.
    """

    def __init__(
        self,
        topology: ApplicationTopology,
        state: DataCenterState,
        resolver: PathResolver,
        own_state: bool = False,
    ) -> None:
        self.topology = topology
        self.state = state if own_state else state.clone()
        self.resolver = resolver
        self.assignments: Dict[str, Assignment] = {}
        self.ubw: float = 0.0
        self.newly_activated: Set[int] = set()
        self._applied: Dict[str, _AppliedNode] = {}
        # Monotonic assignment counter and exactness watermark: records
        # with seq <= _exact_floor lost bit-exact undo validity because an
        # out-of-order unassign happened after them (their saved slot
        # values may embed a since-reversed reservation).
        self._seq: int = 0
        self._exact_floor: int = -1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def uc(self) -> int:
        """Number of hosts this placement has newly activated."""
        return len(self.newly_activated)

    def is_placed(self, node: str) -> bool:
        """True if the node has been assigned."""
        return node in self.assignments

    def host_of(self, node: str) -> int:
        """Host index of an already placed node."""
        return self.assignments[node].host

    def placed_hosts(self) -> Set[int]:
        """Distinct host indices used so far."""
        return {a.host for a in self.assignments.values()}

    def placement_key(self) -> frozenset:
        """Hashable identity of the assignment set (for A* closed sets)."""
        return frozenset(
            (a.node, a.host, a.disk) for a in self.assignments.values()
        )

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------

    def assign(self, node_name: str, host: int, disk: Optional[int] = None) -> None:
        """Place one node, reserving resources and neighbor bandwidth.

        Reserves host CPU/memory (VM) or disk capacity (volume), then
        bandwidth on the path to every *already placed* neighbor. The whole
        operation is atomic: on any capacity failure everything reserved so
        far is rolled back and :class:`PlacementError` is raised.
        """
        if node_name in self.assignments:
            raise PlacementError(f"node {node_name!r} is already placed")
        node = self.topology.node(node_name)
        record = _AppliedNode(node=node_name, host=host, disk=disk)
        state = self.state
        was_active = state.host_is_active(host)
        try:
            if node.is_vm:
                record.saved.append(("cpu", host, state.free_cpu[host]))
                record.saved.append(("mem", host, state.free_mem[host]))
                state.place_vm(host, state.reserved_vcpus(node), node.mem_gb)
            else:
                if disk is None:
                    raise PlacementError(
                        f"volume {node_name!r} needs a disk assignment"
                    )
                if state.cloud.disks[disk].host.index != host:
                    raise PlacementError(
                        f"disk {disk} does not belong to host {host}"
                    )
                record.saved.append(("disk", disk, state.free_disk[disk]))
                state.place_volume(disk, node.size_gb)
        except CapacityError as exc:
            record.saved.clear()
            raise PlacementError(str(exc), node_name=node_name) from exc

        touched_links: Set[int] = set()
        try:
            for neighbor, bw_mbps in self.topology.neighbors(node_name):
                placed = self.assignments.get(neighbor)
                if placed is None or bw_mbps <= 0:
                    continue
                path = self.resolver.path(host, placed.host)
                for link in path:
                    if link not in touched_links:
                        touched_links.add(link)
                        record.saved.append(("bw", link, state.free_bw[link]))
                self.state.reserve_path(path, bw_mbps)
                record.flows.append((path, bw_mbps))
                record.added_ubw += bw_mbps * len(path)
        except CapacityError as exc:
            # roll back everything this call reserved, bit-exactly
            for path, bw_mbps in record.flows:
                self.state.release_path(path, bw_mbps)
            if node.is_vm:
                self.state.unplace_vm(
                    host, self.state.reserved_vcpus(node), node.mem_gb
                )
            else:
                self.state.unplace_volume(disk, node.size_gb)
            self._restore_saved(record)
            raise PlacementError(str(exc), node_name=node_name) from exc

        if not was_active:
            record.activated = True
            self.newly_activated.add(host)
        record.prev_ubw = self.ubw
        self.ubw += record.added_ubw
        self._seq += 1
        record.seq = self._seq
        self.assignments[node_name] = Assignment(node_name, host, disk)
        self._applied[node_name] = record

    def _restore_saved(self, record: _AppliedNode) -> None:
        """Overwrite touched float slots with their pre-assign values."""
        state = self.state
        arrays = {
            "cpu": state.free_cpu,
            "mem": state.free_mem,
            "disk": state.free_disk,
            "bw": state.free_bw,
        }
        for kind, index, value in record.saved:
            arrays[kind][index] = value
        state.version += 1

    def unassign(self, node_name: str) -> None:
        """Undo a previous :meth:`assign`, restoring the state exactly.

        When the node is the most recently assigned one and no
        out-of-order undo happened since its assignment (the only pattern
        the search loops use), every touched float slot is overwritten
        with the exact value saved at assign time, so an assign/unassign
        pair is a bit-exact no-op on the state. Out-of-order undo falls
        back to arithmetic reversal, which is correct up to float
        round-off -- and poisons the saved values of every still-applied
        later record (they may embed the reversed reservation), so those
        also fall back.
        """
        record = self._applied.get(node_name)
        if record is None:
            raise PlacementError(f"node {node_name!r} is not placed")
        is_last = record.seq == self._seq and record.seq > self._exact_floor
        del self._applied[node_name]
        del self.assignments[node_name]
        if is_last:
            self._seq = record.seq - 1
        elif self._applied:
            # out-of-order undo: later records lose exact-undo validity
            self._exact_floor = max(
                self._exact_floor,
                max(r.seq for r in self._applied.values()),
            )
        node = self.topology.node(node_name)
        for path, bw_mbps in record.flows:
            self.state.release_path(path, bw_mbps)
        if node.is_vm:
            self.state.unplace_vm(
                record.host, self.state.reserved_vcpus(node), node.mem_gb
            )
        else:
            self.state.unplace_volume(record.disk, node.size_gb)
        if is_last:
            self._restore_saved(record)
            self.ubw = record.prev_ubw
        else:
            self.ubw -= record.added_ubw
        if record.activated:
            self.newly_activated.discard(record.host)

    def clone(self) -> "PartialPlacement":
        """Independent copy (state, assignments, accounting) for branching."""
        copy = PartialPlacement.__new__(PartialPlacement)
        copy.topology = self.topology
        copy.state = self.state.clone()
        copy.resolver = self.resolver
        copy.assignments = dict(self.assignments)
        copy.ubw = self.ubw
        copy.newly_activated = set(self.newly_activated)
        copy._applied = dict(self._applied)
        copy._seq = self._seq
        copy._exact_floor = self._exact_floor
        return copy

    # ------------------------------------------------------------------
    # finalization
    # ------------------------------------------------------------------

    def freeze(self) -> Placement:
        """Produce the immutable :class:`Placement` summary."""
        return Placement(
            app_name=self.topology.name,
            assignments=dict(self.assignments),
            reserved_bw_mbps=self.ubw,
            new_active_hosts=self.uc,
            hosts_used=len(self.placed_hosts()),
        )
