"""Greedy placement algorithms: EG (Algorithm 1) and the EGC / EGBW baselines.

* :class:`EG` -- the paper's estimate-based greedy. Nodes are sorted by
  their aggregate relative resource weight; each node goes to the candidate
  host minimizing *(accumulated usage + lower-bound estimate of placing the
  rest)*, evaluated with :class:`repro.core.heuristic.LowerBoundEstimator`.
* :class:`EGC` -- compute bin-packing baseline: tightest-fit host first,
  ignoring communication links (still constraint-feasible).
* :class:`EGBW` -- bandwidth-greedy baseline: co-locate linked nodes, and
  among equally close hosts prefer the one with the most available
  bandwidth (this is what drives it onto idle hosts in Table I).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core import kernel
from repro.core.base import PlacementAlgorithm, PlacementResult, SearchStats
from repro.core.candidates import CandidateTarget, candidate_targets
from repro.core.constraints import topology_obviously_infeasible
from repro.core.heuristic import EstimatorConfig, LowerBoundEstimator
from repro.core.objective import Objective
from repro.core.placement import PartialPlacement
from repro.core.topology import ApplicationTopology
from repro.datacenter.model import Cloud
from repro.datacenter.network import PathResolver
from repro.datacenter.state import DataCenterState
from repro.errors import PlacementError


@dataclass(frozen=True)
class GreedyConfig:
    """Tuning knobs for EG.

    Attributes:
        dedup: collapse interchangeable candidate hosts (exact; see
            :mod:`repro.core.candidates`). Disable only for ablations.
        max_full_candidates: evaluate the expensive lower-bound estimate on
            at most this many candidates per node, preselected by a cheap
            immediate-cost proxy. None evaluates all candidates, which is
            the paper's (parallelized) behavior.
        estimator: truncation config for the lower-bound estimator.
        max_backtracks: greedy dead-end recovery budget. Pure greedy can
            paint itself into a corner (e.g. exhausting a host's NIC that a
            later neighbor needs); when a node has no feasible candidate,
            the engine undoes the most recent conflicting decision and
            tries its next-best candidate, up to this many times, before
            giving up -- at which point EG's restart cascade switches
            strategy, so a modest budget per strategy beats a large one.
            Set to 0 for the paper's fail-fast behavior.
    """

    dedup: bool = True
    max_full_candidates: Optional[int] = None
    estimator: EstimatorConfig = EstimatorConfig()
    max_backtracks: int = 50


def sort_nodes_by_relative_weight(topology: ApplicationTopology) -> List[str]:
    """Sort node names by the sum of relative resource weights, descending.

    The weight of a node is ``sum_x r_x / R_x`` over x in {cpu, mem, disk,
    bandwidth}, where ``R_x`` is the mean requirement of resource x across
    all nodes (Section III-A1). Ties break on name for determinism. The
    order is cached on the topology until its next structural mutation.
    """
    return topology.sorted_by_weight()


def apply_pinned(
    partial: PartialPlacement,
    pinned: Dict[str, Tuple[int, Optional[int]]],
) -> List[str]:
    """Assign pinned nodes up front; returns the pinned node names.

    Pinned assignments are applied in sorted-name order for determinism.
    :meth:`PartialPlacement.assign` enforces capacity and bandwidth;
    diversity and latency are checked explicitly here (the search normally
    enforces them at candidate generation, which pins bypass), so an
    infeasible pin always surfaces as :class:`PlacementError`.
    """
    from repro.core import constraints

    for name in sorted(pinned):
        host, disk = pinned[name]
        if not constraints.diversity_ok(partial, name, host):
            raise PlacementError(
                f"pinned node {name!r} violates a diversity zone on host "
                f"{partial.state.cloud.hosts[host].name}",
                node_name=name,
            )
        if not constraints.latency_ok(partial, name, host):
            raise PlacementError(
                f"pinned node {name!r} violates a latency bound on host "
                f"{partial.state.cloud.hosts[host].name}",
                node_name=name,
            )
        partial.assign(name, host, disk)
    return list(pinned)


def sort_nodes_by_bandwidth(topology: ApplicationTopology) -> List[str]:
    """Sort node names by total incident link bandwidth, descending.

    The restart ordering for bandwidth-critical topologies: placing the
    most-connected nodes first reserves their flows while the network is
    still empty (most-constrained-first). Cached on the topology.
    """
    return topology.sorted_by_bandwidth()


def most_free_nic_tie(
    partial: PartialPlacement,
) -> Callable[[CandidateTarget], Tuple[float, int]]:
    """Candidate tie-break preferring hosts with the most free NIC bandwidth.

    Used by EGBW always, and by EG/EGC as a last-resort restart strategy:
    spreading onto bandwidth-rich hosts avoids draining any single NIC.
    """
    cloud = partial.state.cloud

    def key(target: CandidateTarget) -> Tuple[float, int]:
        nic_free = partial.state.free_bw[cloud.hosts[target.host].link_index]
        return (-nic_free, target.host)

    return key


def greedy_with_restarts(
    topology: ApplicationTopology,
    state: DataCenterState,
    resolver: PathResolver,
    objective: Objective,
    estimator: LowerBoundEstimator,
    config: GreedyConfig,
    stats: SearchStats,
    pinned: Dict[str, Tuple[int, Optional[int]]],
    strategies: Sequence[Tuple],
) -> PartialPlacement:
    """Try greedy placement strategies in order until one succeeds.

    Each strategy is a ``(node_order, tie_key_factory)`` pair, optionally
    extended with an objective override; the factory (or None) receives
    the fresh partial placement and returns a candidate tie-break key.
    The first exception is re-raised if every strategy fails. This is the
    dead-end recovery of last resort: backjumping handles local
    conflicts, a different global ordering (or scoring) handles
    structural ones (e.g. bandwidth-critical meshes want their chattiest
    nodes placed first and spread over free NICs).
    """
    rec = obs.get_recorder()
    first_error: Optional[PlacementError] = None
    for attempt, strategy in enumerate(strategies):
        order, tie_factory = strategy[0], strategy[1]
        scoring = strategy[2] if len(strategy) > 2 else objective
        partial = PartialPlacement(topology, state, resolver)
        apply_pinned(partial, pinned)
        tie_key = tie_factory(partial) if tie_factory is not None else None
        if rec.enabled and attempt > 0:
            rec.inc("ostro_restarts_total")
            rec.event("restart", strategy=attempt)
        try:
            run_greedy_from(
                partial, list(order), scoring, estimator, config, stats,
                tie_key=tie_key,
            )
            stats.restarts += attempt
            return partial
        except PlacementError as exc:
            if first_error is None:
                first_error = exc
    assert first_error is not None
    raise first_error


def _immediate_cost(
    partial: PartialPlacement,
    objective: Objective,
    node_name: str,
    target: CandidateTarget,
) -> float:
    """Cheap proxy: objective delta from placing only this node."""
    resolver = partial.resolver
    delta_bw = 0.0
    for neighbor, bw in partial.topology.neighbors(node_name):
        assigned = partial.assignments.get(neighbor)
        if assigned is not None and bw > 0:
            delta_bw += bw * len(resolver.path(target.host, assigned.host))
    activation = 0 if partial.state.host_is_active(target.host) else 1
    return objective.score(partial.ubw + delta_bw, partial.uc + activation)


class EG(PlacementAlgorithm):
    """Estimate-based greedy placement (Algorithm 1 of the paper)."""

    name = "eg"

    def __init__(self, config: Optional[GreedyConfig] = None) -> None:
        self.config = config or GreedyConfig()

    def _run(
        self,
        topology: ApplicationTopology,
        cloud: Cloud,
        state: DataCenterState,
        objective: Objective,
        pinned: Dict[str, Tuple[int, Optional[int]]],
    ) -> PlacementResult:
        resolver = PathResolver.for_cloud(cloud)
        probe = PartialPlacement(topology, state, resolver)
        stats = SearchStats()
        reason = topology_obviously_infeasible(topology, probe)
        if reason is not None:
            raise PlacementError(reason)
        estimator = LowerBoundEstimator(cloud, self.config.estimator, resolver=resolver)
        weight_order = [
            n for n in sort_nodes_by_relative_weight(topology) if n not in pinned
        ]
        bw_order = [
            n for n in sort_nodes_by_bandwidth(topology) if n not in pinned
        ]
        try:
            partial = greedy_with_restarts(
                topology,
                state,
                resolver,
                objective,
                estimator,
                self.config,
                stats,
                pinned,
                strategies=self._strategies(weight_order, bw_order, objective),
            )
        except PlacementError:
            # Ultimate fallback: the link-blind tightest-fit packing (EGC)
            # sidesteps bandwidth corners the estimate-guided strategies
            # fall into on densely meshed topologies; a feasible placement
            # beats an exception, and the objective is reported honestly.
            fallback = EGC(dedup=self.config.dedup).place(
                topology, cloud, state, objective,
                pinned=dict(pinned) if pinned else None,
            )
            stats.restarts += len(
                self._strategies(weight_order, bw_order, objective)
            )
            stats.candidates_scored += fallback.stats.candidates_scored
            fallback.stats = stats
            return fallback
        return PlacementResult(
            placement=partial.freeze(),
            objective_value=objective.score(partial.ubw, partial.uc),
            stats=stats,
        )

    @staticmethod
    def _strategies(
        weight_order: List[str],
        bw_order: List[str],
        objective: Objective,
    ) -> List[Tuple]:
        """EG's dead-end restart cascade, cheapest-deviation first.

        The paper's sorting comes first; alternative orders, a
        free-NIC-spreading tie-break, and finally EGBW-style pure-bandwidth
        scoring follow -- the last succeeds whenever a bandwidth-first
        greedy can place the topology at all.
        """
        bw_only = Objective(
            theta_bw=1.0,
            theta_c=0.0,
            ubw_hat=objective.ubw_hat,
            uc_hat=objective.uc_hat,
        )
        return [
            (weight_order, None),
            (bw_order, None),
            (weight_order, most_free_nic_tie),
            (bw_order, most_free_nic_tie),
            (weight_order, most_free_nic_tie, bw_only),
            (bw_order, most_free_nic_tie, bw_only),
        ]


def run_greedy_from(
    partial: PartialPlacement,
    remaining: List[str],
    objective: Objective,
    estimator: LowerBoundEstimator,
    config: GreedyConfig,
    stats: SearchStats,
    tie_key: Optional[Callable[[CandidateTarget], Tuple[float, int]]] = None,
) -> None:
    """Greedily place ``remaining`` onto an existing partial placement.

    This is the shared engine of EG and of the EG-based upper-bound runs
    inside BA*/DBA* (Algorithm 2 lines 3 and 17, where EG continues from a
    partial search path). Mutates ``partial`` in place; raises
    :class:`PlacementError` if some node has no feasible candidate.

    Args:
        tie_key: optional candidate sort key evaluated before scoring;
            among equally scored candidates the first in this order wins
            (EGBW uses it to prefer hosts with the most free bandwidth).
    """
    order = list(remaining)
    rec = obs.get_recorder()

    def ranked_candidates(node_name: str) -> List[CandidateTarget]:
        """Feasible targets best-first: estimate-scored head + proxy tail."""
        targets = candidate_targets(partial, node_name, dedup=config.dedup)
        if tie_key is not None:
            # stable sort: tie_key settles equal-cost candidates below
            targets.sort(key=tie_key)
        tail: List[CandidateTarget] = []
        use_numpy = kernel.numpy_active()
        if (
            config.max_full_candidates is not None
            and len(targets) > config.max_full_candidates
        ):
            if use_numpy:
                costs = kernel.immediate_costs(
                    partial, objective, node_name, targets
                )
                if kernel.crosscheck_active():
                    kernel.verify_immediate_costs(
                        partial, objective, node_name, targets, costs
                    )
                # stable, like list.sort with a key: ties keep input order
                index = sorted(range(len(targets)), key=costs.__getitem__)
                targets = [targets[i] for i in index]
            else:
                targets.sort(
                    key=lambda t: _immediate_cost(
                        partial, objective, node_name, t
                    )
                )
            targets, tail = (
                targets[: config.max_full_candidates],
                targets[config.max_full_candidates :],
            )
        scored = []
        if use_numpy:
            rest = [
                n
                for n in order
                if n != node_name and not partial.is_placed(n)
            ]
            t0 = time.perf_counter()
            batch = kernel.batch_score(
                partial, node_name, targets, rest, objective, estimator
            )
            batch_dt = time.perf_counter() - t0
            if kernel.crosscheck_active():
                kernel.verify_batch(
                    partial, node_name, targets, rest, objective,
                    estimator, batch,
                )
            per_cand_dt = batch_dt / len(targets) if targets else 0.0
            for rank, target in enumerate(targets):
                score, est_bw, est_c = batch[rank]
                if rec.enabled:
                    rec.inc("ostro_estimates_total")
                    rec.inc("ostro_candidates_scored_total")
                    rec.observe("ostro_estimate_seconds", per_cand_dt)
                    rec.event(
                        "estimate_computed",
                        node=node_name,
                        host=target.host,
                        remaining=len(rest),
                        est_bw_mbps=est_bw,
                        est_hosts=est_c,
                        seconds=per_cand_dt,
                    )
                stats.candidates_scored += 1
                scored.append((score, rank, target))
            scored.sort(key=lambda item: (item[0], item[1]))
            return [target for _, _, target in scored] + tail
        for rank, target in enumerate(targets):
            partial.assign(node_name, target.host, target.disk)
            rest = [n for n in order if not partial.is_placed(n)]
            if rec.enabled:
                t0 = time.perf_counter()
                est_bw, est_c = estimator.estimate(partial, rest)
                est_dt = time.perf_counter() - t0
                rec.inc("ostro_estimates_total")
                rec.inc("ostro_candidates_scored_total")
                rec.observe("ostro_estimate_seconds", est_dt)
                rec.event(
                    "estimate_computed",
                    node=node_name,
                    host=target.host,
                    remaining=len(rest),
                    est_bw_mbps=est_bw,
                    est_hosts=est_c,
                    seconds=est_dt,
                )
            else:
                est_bw, est_c = estimator.estimate(partial, rest)
            score = objective.score(partial.ubw + est_bw, partial.uc + est_c)
            partial.unassign(node_name)
            stats.candidates_scored += 1
            scored.append((score, rank, target))
        scored.sort(key=lambda item: (item[0], item[1]))
        return [target for _, _, target in scored] + tail

    backtracking_place(
        partial, order, ranked_candidates, config.max_backtracks, stats
    )


def backtracking_place(
    partial: PartialPlacement,
    order: List[str],
    rank_fn: Callable[[str], List[CandidateTarget]],
    max_backtracks: int,
    stats: SearchStats,
) -> None:
    """Place ``order`` one node at a time with neighbor-directed backjumping.

    ``rank_fn(node_name)`` must return that node's feasible candidates,
    best first, evaluated against the current ``partial``. When a node has
    no candidates, the search jumps back to the most recent *conflicting*
    decision: a placed neighbor of the failing node, or any node sharing a
    host with a placed neighbor (those are the placements that drain the
    capacity and NIC bandwidth the failing node needs). Up to
    ``max_backtracks`` jumps are spent before giving up.
    """
    # Level i holds the not-yet-tried candidates for order[i].
    rec = obs.get_recorder()
    pending: List[List[CandidateTarget]] = []
    backtracks = 0
    level = 0
    while level < len(order):
        node_name = order[level]
        if len(pending) == level:
            pending.append(rank_fn(node_name))
        candidates = pending[level]
        if not candidates:
            if level == 0 or backtracks >= max_backtracks:
                raise PlacementError(
                    f"no feasible host for node {node_name!r}",
                    node_name=node_name,
                )
            neighbors = {n for n, _ in partial.topology.neighbors(node_name)}
            conflict_hosts = {
                partial.assignments[n].host
                for n in neighbors
                if n in partial.assignments
            }
            target_level = level - 1
            for j in range(level - 1, -1, -1):
                placed = order[j]
                if placed in neighbors or (
                    placed in partial.assignments
                    and partial.assignments[placed].host in conflict_hosts
                ):
                    target_level = j
                    break
            del pending[target_level + 1 :]
            for j in range(level - 1, target_level - 1, -1):
                partial.unassign(order[j])
            if rec.enabled:
                rec.inc("ostro_backtracks_total")
                rec.event(
                    "backtrack",
                    node=node_name,
                    from_level=level,
                    to_level=target_level,
                )
            level = target_level
            backtracks += 1
            stats.backtracks = backtracks
            continue
        target = candidates.pop(0)
        partial.assign(node_name, target.host, target.disk)
        if rec.enabled:
            rec.event(
                "node_placed",
                node=node_name,
                host=target.host,
                disk=target.disk,
                level=level,
            )
        level += 1


class EGC(PlacementAlgorithm):
    """Compute bin-packing baseline (tightest remaining capacity first).

    Sorts nodes by decreasing size and packs each onto the feasible host
    with the least remaining compute capacity (volumes: the disk with the
    least remaining space), minimizing the number of hosts used while
    ignoring communication links entirely.
    """

    name = "egc"

    def __init__(self, dedup: bool = True, max_backtracks: int = 200) -> None:
        self.dedup = dedup
        self.max_backtracks = max_backtracks

    def _run(
        self,
        topology: ApplicationTopology,
        cloud: Cloud,
        state: DataCenterState,
        objective: Objective,
        pinned: Dict[str, Tuple[int, Optional[int]]],
    ) -> PlacementResult:
        resolver = PathResolver.for_cloud(cloud)
        probe = PartialPlacement(topology, state, resolver)
        stats = SearchStats()
        reason = topology_obviously_infeasible(topology, probe)
        if reason is not None:
            raise PlacementError(reason)
        orders = [
            [n for n in sort_nodes_by_relative_weight(topology) if n not in pinned],
            [n for n in sort_nodes_by_bandwidth(topology) if n not in pinned],
        ]
        first_error: Optional[PlacementError] = None
        for attempt, order in enumerate(orders):
            partial = PartialPlacement(topology, state, resolver)
            apply_pinned(partial, pinned)

            def tightest_fit_first(node_name: str) -> List[CandidateTarget]:
                targets = candidate_targets(
                    partial, node_name, dedup=self.dedup
                )
                stats.candidates_scored += len(targets)
                node = topology.node(node_name)
                if node.is_vm:
                    targets.sort(
                        key=lambda t: (
                            partial.state.free_cpu[t.host],
                            partial.state.free_mem[t.host],
                            t.host,
                        )
                    )
                else:
                    targets.sort(
                        key=lambda t: (
                            partial.state.free_disk[t.disk], t.host
                        )
                    )
                return targets

            try:
                backtracking_place(
                    partial, order, tightest_fit_first,
                    self.max_backtracks, stats,
                )
                stats.restarts += attempt
                break
            except PlacementError as exc:
                if first_error is None:
                    first_error = exc
        else:
            assert first_error is not None
            raise first_error
        return PlacementResult(
            placement=partial.freeze(),
            objective_value=objective.score(partial.ubw, partial.uc),
            stats=stats,
        )


class EGBW(PlacementAlgorithm):
    """Bandwidth-only version of EG (Section IV-A).

    Per the paper, EGBW is "a version of EG ... that minimizes only the
    u_bw": it runs the same estimate-based greedy but scores candidates
    with a pure-bandwidth objective (theta_bw = 1, theta_c = 0), breaking
    ties toward the host with the most available NIC bandwidth -- which is
    what pushes it onto idle hosts (and all the remaining idle hosts of
    the paper's Table I testbed), since activating them is free under its
    objective.
    """

    name = "egbw"

    def __init__(self, config: Optional[GreedyConfig] = None) -> None:
        self.config = config or GreedyConfig()

    def _run(
        self,
        topology: ApplicationTopology,
        cloud: Cloud,
        state: DataCenterState,
        objective: Objective,
        pinned: Dict[str, Tuple[int, Optional[int]]],
    ) -> PlacementResult:
        resolver = PathResolver.for_cloud(cloud)
        probe = PartialPlacement(topology, state, resolver)
        stats = SearchStats()
        reason = topology_obviously_infeasible(topology, probe)
        if reason is not None:
            raise PlacementError(reason)
        estimator = LowerBoundEstimator(cloud, self.config.estimator, resolver=resolver)
        bw_only = Objective(
            theta_bw=1.0,
            theta_c=0.0,
            ubw_hat=objective.ubw_hat,
            uc_hat=objective.uc_hat,
        )
        weight_order = [
            n for n in sort_nodes_by_relative_weight(topology) if n not in pinned
        ]
        bw_order = [
            n for n in sort_nodes_by_bandwidth(topology) if n not in pinned
        ]
        partial = greedy_with_restarts(
            topology,
            state,
            resolver,
            bw_only,
            estimator,
            self.config,
            stats,
            pinned,
            strategies=[
                (weight_order, most_free_nic_tie),
                (bw_order, most_free_nic_tie),
            ],
        )
        return PlacementResult(
            placement=partial.freeze(),
            objective_value=objective.score(partial.ubw, partial.uc),
            stats=stats,
        )

