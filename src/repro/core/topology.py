"""Application topology: the paper's unit of scheduling.

An :class:`ApplicationTopology` is the graph ``T_a = <V, E>`` of Section
II-A1: nodes are VMs or disk volumes, edges are communication links
annotated with a bandwidth requirement, and a set of diversity zones
constrains placement spread. The topology is the *indivisible* input to all
placement algorithms.

The builder API is incremental (``add_vm`` / ``add_volume`` / ``connect`` /
``add_zone``) and validates as it goes; :meth:`ApplicationTopology.validate`
re-checks global invariants and is called by the scheduler before any
search starts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.core.zones import DiversityZone
from repro.datacenter.model import Level
from repro.errors import TopologyError


@dataclass(frozen=True)
class VM:
    """A virtual machine node.

    Attributes:
        name: unique node name.
        vcpus: number of virtual CPUs required.
        mem_gb: memory requirement in GB.
        cpu_policy: "guaranteed" reserves the full vCPU count;
            "best_effort" reserves a discounted share (the state's
            ``best_effort_cpu_factor``), the paper's envisioned
            guaranteed-vs-best-effort CPU reservations (Section VI).
    """

    name: str
    vcpus: float
    mem_gb: float
    cpu_policy: str = "guaranteed"

    @property
    def is_vm(self) -> bool:
        return True

    def effective_vcpus(self, best_effort_factor: float) -> float:
        """vCPUs actually reserved on a host under the given policy."""
        if self.cpu_policy == "best_effort":
            return self.vcpus * best_effort_factor
        return self.vcpus


@dataclass(frozen=True)
class Volume:
    """A disk-volume node.

    Attributes:
        name: unique node name.
        size_gb: volume size in GB.
    """

    name: str
    size_gb: float

    @property
    def is_vm(self) -> bool:
        return False


#: A topology node. Hot-path code discriminates on the cached ``is_vm``
#: property instead of isinstance checks, which mypy cannot narrow --
#: hence the targeted union-attr accommodation in pyproject.toml.
Node = Union[VM, Volume]


@dataclass(frozen=True)
class PipeLink:
    """An undirected communication link ("network pipe") between two nodes.

    Attributes:
        a: first endpoint node name.
        b: second endpoint node name.
        bw_mbps: required bandwidth in Mbps.
        max_hops: optional latency bound, expressed as the maximum number
            of network links the flow may traverse (0 forces co-location,
            2 allows same-rack, 4 same pod / pod-less data center, ...).
            This is the paper's Section-VI latency requirement, using hop
            count as the latency proxy a hierarchical fabric provides.
    """

    a: str
    b: str
    bw_mbps: float
    max_hops: Optional[int] = None


class ApplicationTopology:
    """The logical layout plus properties of one cloud application.

    Args:
        name: application name, used in reports and the scheduler registry.
    """

    def __init__(self, name: str = "app") -> None:
        self.name = name
        self._nodes: Dict[str, Node] = {}
        self._links: List[PipeLink] = []
        self._adjacency: Dict[str, List[Tuple[str, float]]] = {}
        self._link_index: Dict[Tuple[str, str], PipeLink] = {}
        self._zones: Dict[str, DiversityZone] = {}
        # Derived-lookup caches, rebuilt lazily after any mutation. The
        # search algorithms hit bandwidth_of / requirement_vector /
        # zones_of once per estimator step, i.e. millions of times per
        # placement; recomputing them from the adjacency lists each call
        # dominated the profile before these tables existed.
        self._bw_cache: Optional[Dict[str, float]] = None
        self._req_cache: Dict[str, Tuple[float, float, float, float]] = {}
        self._zones_of_cache: Optional[Dict[str, List[DiversityZone]]] = None
        self._weight_order: Optional[List[str]] = None
        self._bw_order: Optional[List[str]] = None
        # Monotonic structural version; lets external caches (e.g. the
        # vectorized kernel's per-topology plan) detect mutations.
        self.cache_version: int = 0

    def _invalidate_caches(self) -> None:
        """Drop derived lookup tables after a structural mutation."""
        self._bw_cache = None
        self._req_cache = {}
        self._zones_of_cache = None
        self._weight_order = None
        self._bw_order = None
        self.cache_version += 1

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_vm(
        self,
        name: str,
        vcpus: float,
        mem_gb: float,
        cpu_policy: str = "guaranteed",
    ) -> VM:
        """Add a VM node and return it."""
        self._check_new_node(name)
        if vcpus <= 0 or mem_gb <= 0:
            raise TopologyError(
                f"VM {name!r} must have positive vcpus and memory"
            )
        if cpu_policy not in ("guaranteed", "best_effort"):
            raise TopologyError(
                f"VM {name!r}: unknown cpu_policy {cpu_policy!r}"
            )
        vm = VM(
            name=name,
            vcpus=float(vcpus),
            mem_gb=float(mem_gb),
            cpu_policy=cpu_policy,
        )
        self._nodes[name] = vm
        self._adjacency[name] = []
        self._invalidate_caches()
        return vm

    def add_volume(self, name: str, size_gb: float) -> Volume:
        """Add a disk-volume node and return it."""
        self._check_new_node(name)
        if size_gb <= 0:
            raise TopologyError(f"volume {name!r} must have positive size")
        volume = Volume(name=name, size_gb=float(size_gb))
        self._nodes[name] = volume
        self._adjacency[name] = []
        self._invalidate_caches()
        return volume

    def connect(
        self,
        a: str,
        b: str,
        bw_mbps: float,
        max_hops: Optional[int] = None,
    ) -> PipeLink:
        """Add an undirected bandwidth-annotated link between two nodes.

        Args:
            a: first endpoint node name.
            b: second endpoint node name.
            bw_mbps: required bandwidth.
            max_hops: optional latency bound (maximum network links the
                flow may traverse; see :class:`PipeLink`).
        """
        if a not in self._nodes:
            raise TopologyError(f"unknown link endpoint: {a!r}")
        if b not in self._nodes:
            raise TopologyError(f"unknown link endpoint: {b!r}")
        if a == b:
            raise TopologyError(f"self-link on node {a!r}")
        if bw_mbps < 0:
            raise TopologyError(f"negative bandwidth on link {a!r}-{b!r}")
        if max_hops is not None and max_hops < 0:
            raise TopologyError(f"negative max_hops on link {a!r}-{b!r}")
        if not self._nodes[a].is_vm and not self._nodes[b].is_vm:
            raise TopologyError(
                f"link {a!r}-{b!r} connects two volumes; links must involve "
                "at least one VM"
            )
        key = (a, b) if a <= b else (b, a)
        if key in self._link_index:
            raise TopologyError(
                f"duplicate link {a!r}-{b!r}; merge the bandwidths into one"
            )
        link = PipeLink(
            a=a, b=b, bw_mbps=float(bw_mbps), max_hops=max_hops
        )
        self._links.append(link)
        self._link_index[key] = link
        self._adjacency[a].append((b, link.bw_mbps))
        self._adjacency[b].append((a, link.bw_mbps))
        self._invalidate_caches()
        return link

    def link_between(self, a: str, b: str) -> Optional[PipeLink]:
        """The pipe between two nodes, or None when they are not linked."""
        key = (a, b) if a <= b else (b, a)
        return self._link_index.get(key)

    def add_zone(
        self, name: str, level: Level, members: Iterable[str]
    ) -> DiversityZone:
        """Add a diversity zone over existing nodes and return it."""
        if name in self._zones:
            raise TopologyError(f"duplicate diversity zone: {name!r}")
        member_set = frozenset(members)
        if len(member_set) < 2:
            raise TopologyError(
                f"diversity zone {name!r} needs at least two members"
            )
        unknown = member_set - self._nodes.keys()
        if unknown:
            raise TopologyError(
                f"diversity zone {name!r} references unknown nodes: "
                f"{sorted(unknown)}"
            )
        zone = DiversityZone(name=name, level=level, members=member_set)
        self._zones[name] = zone
        self._invalidate_caches()
        return zone

    def remove_node(self, name: str) -> None:
        """Remove a node, its links, and its zone memberships.

        Zones shrinking below two members are dropped. Used by the online
        adaptation path (Section IV-E).
        """
        if name not in self._nodes:
            raise TopologyError(f"unknown node: {name!r}")
        del self._nodes[name]
        del self._adjacency[name]
        self._links = [l for l in self._links if name not in (l.a, l.b)]
        self._link_index = {
            key: link
            for key, link in self._link_index.items()
            if name not in key
        }
        for other, neighbors in self._adjacency.items():
            self._adjacency[other] = [
                (nbr, bw) for nbr, bw in neighbors if nbr != name
            ]
        for zone_name in list(self._zones):
            zone = self._zones[zone_name]
            if name in zone.members:
                remaining = zone.members - {name}
                if len(remaining) >= 2:
                    self._zones[zone_name] = DiversityZone(
                        zone.name, zone.level, remaining
                    )
                else:
                    del self._zones[zone_name]
        self._invalidate_caches()

    def _check_new_node(self, name: str) -> None:
        if not name:
            raise TopologyError("node name must be non-empty")
        if name in self._nodes:
            raise TopologyError(f"duplicate node name: {name!r}")

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> Dict[str, Node]:
        """Mapping of node name to VM/Volume (do not mutate)."""
        return self._nodes

    @property
    def links(self) -> List[PipeLink]:
        """All links (do not mutate)."""
        return self._links

    @property
    def zones(self) -> List[DiversityZone]:
        """All diversity zones."""
        return list(self._zones.values())

    def node(self, name: str) -> Node:
        """Look up one node by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise TopologyError(f"unknown node: {name!r}") from None

    def vms(self) -> List[VM]:
        """All VM nodes, in insertion order."""
        return [n for n in self._nodes.values() if n.is_vm]

    def volumes(self) -> List[Volume]:
        """All volume nodes, in insertion order."""
        return [n for n in self._nodes.values() if not n.is_vm]

    def neighbors(self, name: str) -> List[Tuple[str, float]]:
        """(neighbor name, bandwidth) pairs of a node's incident links."""
        return self._adjacency[name]

    def zones_of(self, name: str) -> List[DiversityZone]:
        """Diversity zones that contain the named node (cached table)."""
        cache = self._zones_of_cache
        if cache is None:
            cache = {n: [] for n in self._nodes}
            for zone in self._zones.values():
                for member in zone.members:
                    if member in cache:
                        cache[member].append(zone)
            self._zones_of_cache = cache
        return cache[name]

    def bandwidth_of(self, name: str) -> float:
        """Total bandwidth requirement of a node's incident links (Mbps)."""
        cache = self._bw_cache
        if cache is None:
            cache = {
                n: sum(bw for _, bw in adj)
                for n, adj in self._adjacency.items()
            }
            self._bw_cache = cache
        return cache[name]

    def total_link_bandwidth(self) -> float:
        """Sum of bandwidth requirements over all links (Mbps)."""
        return sum(link.bw_mbps for link in self._links)

    def requirement_vector(self, name: str) -> Tuple[float, float, float, float]:
        """(cpu, mem, disk, bandwidth) requirement of one node."""
        cached = self._req_cache.get(name)
        if cached is not None:
            return cached
        node = self.node(name)
        if node.is_vm:
            vector = (node.vcpus, node.mem_gb, 0.0, self.bandwidth_of(name))
        else:
            vector = (0.0, 0.0, node.size_gb, self.bandwidth_of(name))
        self._req_cache[name] = vector
        return vector

    def sorted_by_weight(self) -> List[str]:
        """Node names by descending aggregate relative resource weight.

        The weight of a node is ``sum_x r_x / R_x`` over x in {cpu, mem,
        disk, bandwidth}, where ``R_x`` is the mean requirement of resource
        x across all nodes (Section III-A1). Ties break on name for
        determinism. The order is computed once and cached until the next
        structural mutation; a fresh list is returned each call.
        """
        if self._weight_order is None:
            names = list(self._nodes)
            vectors = {name: self.requirement_vector(name) for name in names}
            dims = len(next(iter(vectors.values()))) if names else 0
            means = [
                sum(vec[d] for vec in vectors.values()) / len(names)
                if names
                else 1.0
                for d in range(dims)
            ]

            def weight(name: str) -> float:
                return sum(
                    vectors[name][d] / means[d]
                    for d in range(dims)
                    if means[d] > 0
                )

            self._weight_order = sorted(names, key=lambda n: (-weight(n), n))
        return list(self._weight_order)

    def sorted_by_bandwidth(self) -> List[str]:
        """Node names by descending total incident link bandwidth.

        Cached like :meth:`sorted_by_weight`; a fresh list is returned
        each call.
        """
        if self._bw_order is None:
            self._bw_order = sorted(
                self._nodes, key=lambda n: (-self.bandwidth_of(n), n)
            )
        return list(self._bw_order)

    def size(self) -> int:
        """Number of nodes."""
        return len(self._nodes)

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Re-check global invariants; raises TopologyError on violation."""
        if not self._nodes:
            raise TopologyError(f"topology {self.name!r} has no nodes")
        for zone in self._zones.values():
            unknown = zone.members - self._nodes.keys()
            if unknown:
                raise TopologyError(
                    f"zone {zone.name!r} references unknown nodes: "
                    f"{sorted(unknown)}"
                )
        for link in self._links:
            if link.a not in self._nodes or link.b not in self._nodes:
                raise TopologyError(
                    f"link {link.a!r}-{link.b!r} references unknown nodes"
                )

    def copy(self, name: Optional[str] = None) -> "ApplicationTopology":
        """A deep-enough copy (nodes/links/zones are immutable records)."""
        duplicate = ApplicationTopology(name or self.name)
        duplicate._nodes = dict(self._nodes)
        duplicate._links = list(self._links)
        duplicate._adjacency = {k: list(v) for k, v in self._adjacency.items()}
        duplicate._link_index = dict(self._link_index)
        duplicate._zones = dict(self._zones)
        return duplicate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ApplicationTopology({self.name!r}, vms={len(self.vms())}, "
            f"volumes={len(self.volumes())}, links={len(self._links)}, "
            f"zones={len(self._zones)})"
        )
