"""Persistence for placements and deployed-application inventories.

Operators need to externalize scheduler decisions — hand them to a
deployment system, audit them later, or warm-start a scheduler after a
restart. This module round-trips :class:`~repro.core.placement.Placement`
records and whole :class:`~repro.core.scheduler.Ostro` inventories through
JSON-compatible dicts, addressing hosts and disks *by name* so the files
stay meaningful across process boundaries.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.core.placement import Assignment, Placement
from repro.core.scheduler import Ostro
from repro.datacenter.model import Cloud
from repro.errors import ReproError
from repro.heat.template import template_from_topology, topology_from_template


def placement_to_dict(placement: Placement, cloud: Cloud) -> Dict[str, Any]:
    """Serialize a placement using host/disk names."""
    assignments = {}
    for name, assignment in sorted(placement.assignments.items()):
        entry: Dict[str, Any] = {
            "host": cloud.hosts[assignment.host].name
        }
        if assignment.disk is not None:
            entry["disk"] = cloud.disks[assignment.disk].name
        assignments[name] = entry
    return {
        "app_name": placement.app_name,
        "assignments": assignments,
        "reserved_bw_mbps": placement.reserved_bw_mbps,
        "new_active_hosts": placement.new_active_hosts,
        "hosts_used": placement.hosts_used,
    }


def placement_from_dict(data: Dict[str, Any], cloud: Cloud) -> Placement:
    """Rebuild a placement; raises ReproError on unknown hosts/disks."""
    try:
        assignments = {}
        for name, entry in data["assignments"].items():
            host = cloud.host_by_name(entry["host"])
            disk_name = entry.get("disk")
            disk = (
                cloud.disk_by_name(disk_name).index
                if disk_name is not None
                else None
            )
            assignments[name] = Assignment(
                node=name, host=host.index, disk=disk
            )
        return Placement(
            app_name=data["app_name"],
            assignments=assignments,
            reserved_bw_mbps=float(data.get("reserved_bw_mbps", 0.0)),
            new_active_hosts=int(data.get("new_active_hosts", 0)),
            hosts_used=int(data.get("hosts_used", 0)),
        )
    except KeyError as exc:
        raise ReproError(f"placement record missing field {exc}") from exc


def inventory_to_dict(ostro: Ostro) -> Dict[str, Any]:
    """Serialize every deployed application (topology + placement)."""
    applications = {}
    for name, deployed in sorted(ostro.applications.items()):
        applications[name] = {
            "template": template_from_topology(deployed.topology),
            "placement": placement_to_dict(deployed.placement, ostro.cloud),
        }
    return {"applications": applications}


def restore_inventory(ostro: Ostro, data: Dict[str, Any]) -> None:
    """Re-commit a serialized inventory into a fresh scheduler.

    The target scheduler must have capacity for every recorded
    reservation (typically: a scheduler over a pristine state of the same
    cloud). Applications are committed in name order; on any failure the
    scheduler is left with the applications committed so far.
    """
    for name, record in sorted(data.get("applications", {}).items()):
        topology = topology_from_template(record["template"], name=name)
        placement = placement_from_dict(record["placement"], ostro.cloud)
        ostro.commit(topology, placement)


def save_inventory(ostro: Ostro, path: str) -> None:
    """Write the deployed-application inventory to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(inventory_to_dict(ostro), handle, indent=2)


def load_inventory(ostro: Ostro, path: str) -> None:
    """Load and re-commit an inventory from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        restore_inventory(ostro, json.load(handle))
