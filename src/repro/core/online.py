"""Online adaptation of deployed applications (Section IV-E).

An application topology can be updated at runtime -- VMs added or removed,
requirements changed. Re-placing the whole topology from scratch would both
waste scheduler time and needlessly migrate running VMs, so
:func:`update_application` re-places *incrementally*:

1. Diff the new topology against the deployed one (added / removed /
   changed nodes).
2. Release the deployed application's reservations.
3. Re-place with every unchanged node **pinned** to its current location,
   searching only over the added/changed nodes.
4. If pinning makes the problem infeasible, progressively unpin: first the
   topological neighbors of the added/changed nodes (the paper's
   observation that updates "can in fact spread out to a large portion of
   the application nodes"), then everything.
5. Commit the new placement and report which previously placed nodes moved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, List, Optional, Set, Tuple

from repro import obs
from repro.core.base import PlacementResult
from repro.core.topology import ApplicationTopology
from repro.errors import PlacementError

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import
    from repro.core.scheduler import Ostro


@dataclass
class UpdateResult:
    """Outcome of one online adaptation.

    Attributes:
        result: the placement result of the incremental re-placement.
        added: node names newly introduced by the update.
        removed: node names dropped by the update.
        changed: node names whose requirements changed.
        moved: previously deployed nodes whose host changed.
        unpin_rounds: how many progressive unpinning rounds were needed
            (0 = all unchanged nodes stayed pinned).
    """

    result: PlacementResult
    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    changed: List[str] = field(default_factory=list)
    moved: List[str] = field(default_factory=list)
    unpin_rounds: int = 0


def diff_topologies(
    old: ApplicationTopology, new: ApplicationTopology
) -> Tuple[List[str], List[str], List[str]]:
    """Return (added, removed, changed-requirements) node name lists."""
    added = sorted(new.nodes.keys() - old.nodes.keys())
    removed = sorted(old.nodes.keys() - new.nodes.keys())
    changed = sorted(
        name
        for name in new.nodes.keys() & old.nodes.keys()
        if new.node(name) != old.node(name)
    )
    return added, removed, changed


def update_application(
    ostro: "Ostro",
    new_topology: ApplicationTopology,
    algorithm: str = "dba*",
    max_unpin_rounds: int = 8,
    **options: Any,
) -> UpdateResult:
    """Incrementally re-place a deployed application after a topology update.

    Args:
        ostro: the :class:`repro.core.scheduler.Ostro` owning the app; the
            application is looked up by ``new_topology.name``.
        new_topology: the updated topology (same application name).
        algorithm: placement algorithm for the incremental search.
        max_unpin_rounds: bound on progressive unpinning expansions before
            falling back to a full re-placement.
        **options: forwarded to the algorithm factory (e.g. ``deadline_s``).

    Raises:
        PlacementError: when even a full re-placement is infeasible; the
            original deployment is restored in that case.
    """
    deployed = ostro.deployed(new_topology.name)
    old_topology = deployed.topology
    old_placement = deployed.placement
    added, removed, changed = diff_topologies(old_topology, new_topology)

    # Release the old deployment; we re-commit (old or new) before returning.
    ostro.remove(new_topology.name)

    keep = [
        name
        for name in new_topology.nodes
        if name in old_placement.assignments and name not in changed
    ]
    unpinned: Set[str] = set(added) | set(changed)
    rounds = 0
    while True:
        pinned = {
            name: (
                old_placement.assignments[name].host,
                old_placement.assignments[name].disk,
            )
            for name in keep
            if name not in unpinned
        }
        try:
            result = ostro.place(
                new_topology,
                algorithm=algorithm,
                commit=True,
                pinned=pinned,
                **options,
            )
            break
        except PlacementError:
            if not pinned or rounds >= max_unpin_rounds:
                # Even the fully free search failed: restore the original.
                ostro.commit(old_topology, old_placement)
                raise
            frontier = _expand_frontier(new_topology, unpinned)
            if frontier == unpinned:
                unpinned = set(new_topology.nodes)  # unpin everything
            else:
                unpinned = frontier
            rounds += 1

    moved = [
        name
        for name in keep
        if result.placement.host_of(name) != old_placement.host_of(name)
    ]
    rec = obs.get_recorder()
    if rec.enabled:
        rec.inc("ostro_updates_total")
        rec.event(
            "update_applied",
            app=new_topology.name,
            added=len(added),
            removed=len(removed),
            changed=len(changed),
            moved=len(moved),
            unpin_rounds=rounds,
        )
    return UpdateResult(
        result=result,
        added=added,
        removed=removed,
        changed=changed,
        moved=moved,
        unpin_rounds=rounds,
    )


def _expand_frontier(
    topology: ApplicationTopology, current: Set[str]
) -> Set[str]:
    """Grow an unpinned set by one hop of topological neighbors."""
    grown = set(current)
    for name in current:
        if name not in topology.nodes:
            continue
        grown.update(nbr for nbr, _ in topology.neighbors(name))
    return grown


def add_vms_to_tier(
    topology: ApplicationTopology,
    tier_prefix: str,
    fraction: float,
    link_bw_mbps: Optional[float] = None,
) -> ApplicationTopology:
    """Grow a tier of a topology by a fraction of small VMs (Section IV-E).

    Clones the topology and adds ``ceil(fraction * tier_size)`` VMs whose
    requirements and link structure mirror the tier's first member. Used by
    the online-adaptation experiment ("adding 10% more small VMs on the
    first or second tier").
    """
    members = [
        name for name in topology.nodes if name.startswith(tier_prefix)
        and topology.node(name).is_vm
    ]
    if not members:
        raise PlacementError(f"no VMs with prefix {tier_prefix!r}")
    template_name = members[0]
    template = topology.node(template_name)
    count = max(1, int(round(fraction * len(members))))
    grown = topology.copy()
    for i in range(count):
        new_name = f"{tier_prefix}-extra{i + 1}"
        grown.add_vm(new_name, template.vcpus, template.mem_gb)
        for neighbor, bw in topology.neighbors(template_name):
            grown.connect(
                new_name,
                neighbor,
                bw if link_bw_mbps is None else link_bw_mbps,
            )
    return grown
