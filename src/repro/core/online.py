"""Online adaptation of deployed applications (Section IV-E).

An application topology can be updated at runtime -- VMs added or removed,
requirements changed. Re-placing the whole topology from scratch would both
waste scheduler time and needlessly migrate running VMs, so
:func:`update_application` re-places *incrementally*:

1. Diff the new topology against the deployed one (added / removed /
   changed nodes).
2. Release the deployed application's reservations.
3. Re-place with every unchanged node **pinned** to its current location,
   searching only over the added/changed nodes.
4. If pinning makes the problem infeasible, progressively unpin: first the
   topological neighbors of the added/changed nodes (the paper's
   observation that updates "can in fact spread out to a large portion of
   the application nodes"), then everything.
5. Commit the new placement and report which previously placed nodes moved.

The same machinery powers **host evacuation** (:func:`evacuate_host`):
when a host crashes, every application with nodes on it is re-placed with
the victims freed and the survivors pinned, preserving anti-affinity and
bandwidth constraints -- the paper's runtime-adaptation story applied to
failures instead of updates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

from repro import obs
from repro.core.base import PlacementResult
from repro.core.objective import Objective
from repro.core.topology import ApplicationTopology
from repro.errors import DeadlineError, PlacementError, ReproError

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import
    from repro.core.migration import MigrationStep
    from repro.core.scheduler import Ostro
    from repro.defrag.executor import DefragStats
    from repro.defrag.planner import DefragConfig


@dataclass
class UpdateResult:
    """Outcome of one online adaptation.

    Attributes:
        result: the placement result of the incremental re-placement.
        added: node names newly introduced by the update.
        removed: node names dropped by the update.
        changed: node names whose requirements changed.
        moved: previously deployed nodes whose host changed.
        unpin_rounds: how many progressive unpinning rounds were needed
            (0 = all unchanged nodes stayed pinned).
    """

    result: PlacementResult
    added: List[str] = field(default_factory=list)
    removed: List[str] = field(default_factory=list)
    changed: List[str] = field(default_factory=list)
    moved: List[str] = field(default_factory=list)
    unpin_rounds: int = 0


def diff_topologies(
    old: ApplicationTopology, new: ApplicationTopology
) -> Tuple[List[str], List[str], List[str]]:
    """Return (added, removed, changed-requirements) node name lists."""
    added = sorted(new.nodes.keys() - old.nodes.keys())
    removed = sorted(old.nodes.keys() - new.nodes.keys())
    changed = sorted(
        name
        for name in new.nodes.keys() & old.nodes.keys()
        if new.node(name) != old.node(name)
    )
    return added, removed, changed


def update_application(
    ostro: "Ostro",
    new_topology: ApplicationTopology,
    algorithm: str = "dba*",
    max_unpin_rounds: int = 8,
    **options: Any,
) -> UpdateResult:
    """Incrementally re-place a deployed application after a topology update.

    Args:
        ostro: the :class:`repro.core.scheduler.Ostro` owning the app; the
            application is looked up by ``new_topology.name``.
        new_topology: the updated topology (same application name).
        algorithm: placement algorithm for the incremental search.
        max_unpin_rounds: bound on progressive unpinning expansions before
            falling back to a full re-placement.
        **options: forwarded to the algorithm factory (e.g. ``deadline_s``).

    Raises:
        PlacementError: when even a full re-placement is infeasible; the
            original deployment is restored in that case.
    """
    deployed = ostro.deployed(new_topology.name)
    old_topology = deployed.topology
    old_placement = deployed.placement
    added, removed, changed = diff_topologies(old_topology, new_topology)

    if not added and not removed and not changed:
        # Empty diff: the deployment already satisfies the request. A
        # true no-op -- no release/re-commit cycle, no search work, no
        # state mutation, and no update telemetry.
        objective = Objective.for_topology(
            old_topology, ostro.cloud, ostro.theta_bw, ostro.theta_c
        )
        return UpdateResult(
            result=PlacementResult(
                placement=old_placement,
                objective_value=ostro._placement_value(
                    old_topology, old_placement, objective
                ),
            )
        )

    # Release the old deployment; we re-commit (old or new) before returning.
    ostro.remove(new_topology.name)

    keep = [
        name
        for name in new_topology.nodes
        if name in old_placement.assignments and name not in changed
    ]
    unpinned: Set[str] = set(added) | set(changed)
    rounds = 0
    while True:
        pinned = {
            name: (
                old_placement.assignments[name].host,
                old_placement.assignments[name].disk,
            )
            for name in keep
            if name not in unpinned
        }
        try:
            result = ostro.place(
                new_topology,
                algorithm=algorithm,
                commit=True,
                pinned=pinned,
                **options,
            )
            break
        except PlacementError:
            if not pinned or rounds >= max_unpin_rounds:
                # Even the fully free search failed: restore the original.
                ostro.commit(old_topology, old_placement)
                rec = obs.get_recorder()
                if rec.enabled:
                    rec.inc("ostro_update_failures_total")
                    rec.event(
                        "update_failed",
                        app=new_topology.name,
                        added=len(added),
                        removed=len(removed),
                        changed=len(changed),
                        unpin_rounds=rounds,
                    )
                raise
            frontier = _expand_frontier(new_topology, unpinned)
            if frontier == unpinned:
                unpinned = set(new_topology.nodes)  # unpin everything
            else:
                unpinned = frontier
            rounds += 1

    moved = [
        name
        for name in keep
        if result.placement.host_of(name) != old_placement.host_of(name)
    ]
    rec = obs.get_recorder()
    if rec.enabled:
        rec.inc("ostro_updates_total")
        rec.event(
            "update_applied",
            app=new_topology.name,
            added=len(added),
            removed=len(removed),
            changed=len(changed),
            moved=len(moved),
            unpin_rounds=rounds,
        )
    return UpdateResult(
        result=result,
        added=added,
        removed=removed,
        changed=changed,
        moved=moved,
        unpin_rounds=rounds,
    )


def _expand_frontier(
    topology: ApplicationTopology, current: Set[str]
) -> Set[str]:
    """Grow an unpinned set by one hop of topological neighbors."""
    grown = set(current)
    for name in current:
        if name not in topology.nodes:
            continue
        grown.update(nbr for nbr, _ in topology.neighbors(name))
    return grown


@dataclass
class EvacuationReport:
    """Outcome of evacuating one crashed host.

    Attributes:
        host: name of the evacuated host.
        apps: names of the applications that had nodes on it.
        moved: ``"app/node"`` entries re-placed onto other hosts
            (victims, plus any survivors that had to move to make the
            evacuation feasible).
        failed: ``"app/node"`` victim entries that could not be
            re-placed anywhere; their application is left *removed* from
            the scheduler (its surviving reservations released) rather
            than half-committed.
        algorithms: app name -> the algorithm rung that produced its new
            placement (degradation may have stepped down the ladder).
        runtime_s: total scheduler runtime of the successful
            re-placements (the recovery-time metric of chaos runs).
    """

    host: str
    apps: List[str] = field(default_factory=list)
    moved: List[str] = field(default_factory=list)
    failed: List[str] = field(default_factory=list)
    algorithms: dict = field(default_factory=dict)
    runtime_s: float = 0.0


def evacuate_host(
    ostro: "Ostro",
    host: Union[int, str],
    algorithm: str = "dba*",
    max_unpin_rounds: int = 8,
    **options: Any,
) -> EvacuationReport:
    """Re-place every application with nodes on a crashed host.

    The host must already be failed in the state
    (:meth:`~repro.datacenter.state.DataCenterState.fail_host`), so the
    search cannot put anything back on it. Per affected application:
    victims (nodes assigned to the crashed host -- VMs on it and volumes
    on its disks) are freed while all surviving nodes stay pinned; if
    that is infeasible, pins are progressively released exactly as in
    :func:`update_application`. Placement runs under the degradation
    ladder (:func:`repro.faults.recovery.place_with_degradation`), so
    deadline pressure weakens the algorithm instead of failing the
    evacuation.

    Applications whose victims cannot be re-placed anywhere are left
    removed (reported in ``failed``) -- capacity stays conserved and the
    caller decides whether to retry after more capacity appears.

    Args:
        ostro: the scheduler owning the applications.
        host: index or name of the crashed host.
        algorithm: starting rung for each re-placement.
        max_unpin_rounds: progressive-unpinning bound per application.
        **options: forwarded algorithm options (e.g. ``deadline_s``).
    """
    from repro.faults.recovery import place_with_degradation

    cloud = ostro.cloud
    host_index = (
        cloud.host_by_name(host).index if isinstance(host, str) else host
    )
    host_name = cloud.hosts[host_index].name
    affected: List[Tuple[str, List[str]]] = []
    for app_name in sorted(ostro.applications):
        placement = ostro.applications[app_name].placement
        victims = sorted(
            name
            for name, assignment in placement.assignments.items()
            if assignment.host == host_index
        )
        if victims:
            affected.append((app_name, victims))

    report = EvacuationReport(host=host_name)
    for app_name, victims in affected:
        report.apps.append(app_name)
        deployed = ostro.applications[app_name]
        topology, old_placement = deployed.topology, deployed.placement
        ostro.remove(app_name)
        unpinned: Set[str] = set(victims)
        rounds = 0
        result: Optional[PlacementResult] = None
        while True:
            pinned = {
                name: (assignment.host, assignment.disk)
                for name, assignment in old_placement.assignments.items()
                if name not in unpinned
            }
            try:
                result, used_algorithm = place_with_degradation(
                    ostro,
                    topology,
                    algorithm=algorithm,
                    commit=True,
                    pinned=pinned,
                    **options,
                )
                report.algorithms[app_name] = used_algorithm
                report.runtime_s += result.runtime_s
                break
            except (DeadlineError, PlacementError):
                if not pinned or rounds >= max_unpin_rounds:
                    break  # nowhere to go; leave the app removed
                frontier = _expand_frontier(topology, unpinned)
                if frontier == unpinned:
                    unpinned = set(topology.nodes)
                else:
                    unpinned = frontier
                rounds += 1
        if result is None:
            report.failed.extend(f"{app_name}/{v}" for v in victims)
        else:
            report.moved.extend(
                f"{app_name}/{name}"
                for name in sorted(topology.nodes)
                if result.placement.host_of(name)
                != old_placement.host_of(name)
            )

    rec = obs.get_recorder()
    if rec.enabled:
        rec.inc("ostro_evacuations_total")
        if report.moved:
            rec.inc(
                "ostro_evacuated_nodes_total",
                len(report.moved),
                outcome="moved",
            )
        if report.failed:
            rec.inc(
                "ostro_evacuated_nodes_total",
                len(report.failed),
                outcome="failed",
            )
        rec.event(
            "host_evacuated",
            host=host_name,
            apps=len(report.apps),
            moved=len(report.moved),
            failed=len(report.failed),
        )
    return report


def tier_members(
    topology: ApplicationTopology, tier_prefix: str
) -> List[str]:
    """Sorted names of the VMs whose name starts with ``tier_prefix``."""
    return sorted(
        name
        for name in topology.nodes
        if name.startswith(tier_prefix) and topology.node(name).is_vm
    )


def _next_extra_index(members: List[str], tier_prefix: str) -> int:
    """Highest ``<prefix>-extra<N>`` index among members (0 when none)."""
    extra_prefix = f"{tier_prefix}-extra"
    highest = 0
    for name in members:
        if name.startswith(extra_prefix):
            try:
                highest = max(highest, int(name[len(extra_prefix):]))
            except ValueError:
                continue
    return highest


def add_vms_to_tier(
    topology: ApplicationTopology,
    tier_prefix: str,
    fraction: float,
    link_bw_mbps: Optional[float] = None,
    count: Optional[int] = None,
) -> ApplicationTopology:
    """Grow a tier of a topology by a fraction of small VMs (Section IV-E).

    Clones the topology and adds ``ceil(fraction * tier_size)`` VMs (or
    exactly ``count`` when given) whose requirements and link structure
    mirror the tier's first member. Used by the online-adaptation
    experiment ("adding 10% more small VMs on the first or second tier")
    and by the autoscaling scale-out path (:mod:`repro.scaling`).

    New members are named ``<prefix>-extra<N>`` with ``N`` continuing
    past the highest existing extra, so repeated growths never collide.
    A zero delta is a true no-op: the input topology is returned as-is,
    uncloned.
    """
    members = tier_members(topology, tier_prefix)
    if not members:
        raise PlacementError(f"no VMs with prefix {tier_prefix!r}")
    template_name = members[0]
    template = topology.node(template_name)
    if count is None:
        # ceil, as documented -- with a tiny slack so binary-float noise
        # in fraction * size (e.g. 0.2 * 15 = 3.0000000000000004) cannot
        # round a whole-number product up an extra step.
        count = math.ceil(fraction * len(members) - 1e-9)
    if count <= 0:
        return topology
    start = _next_extra_index(members, tier_prefix)
    grown = topology.copy()
    for i in range(count):
        new_name = f"{tier_prefix}-extra{start + i + 1}"
        grown.add_vm(new_name, template.vcpus, template.mem_gb)
        for neighbor, bw in topology.neighbors(template_name):
            grown.connect(
                new_name,
                neighbor,
                bw if link_bw_mbps is None else link_bw_mbps,
            )
    return grown


@dataclass
class ScaleInResult:
    """Outcome of one :func:`remove_vms_from_tier` call.

    Attributes:
        removed: names of the released tier members (empty = no-op).
        remaining: tier members still deployed after the shrink.
        consolidated: True when the optional consolidation pass executed
            to completion (False when not requested, nothing beneficial
            was found, or a fault aborted it -- the shrink itself stands
            regardless).
        consolidation_moves: migration steps the consolidation executed.
    """

    removed: List[str] = field(default_factory=list)
    remaining: int = 0
    consolidated: bool = False
    consolidation_moves: int = 0


def _removal_preference(members: List[str], tier_prefix: str) -> Dict[str, int]:
    """Deterministic tie-break order for victim selection.

    Scale-out extras go first, last-added first (LIFO over the
    ``-extra<N>`` index), then original members in reverse name order --
    so absent load information a scale-in exactly unwinds prior
    scale-outs before touching the tier's original population.
    """
    extra_prefix = f"{tier_prefix}-extra"

    def extra_index(name: str) -> Optional[int]:
        if not name.startswith(extra_prefix):
            return None
        try:
            return int(name[len(extra_prefix):])
        except ValueError:
            return None

    extras = sorted(
        (name for name in members if extra_index(name) is not None),
        key=lambda name: -(extra_index(name) or 0),
    )
    originals = sorted(
        (name for name in members if extra_index(name) is None),
        reverse=True,
    )
    return {name: rank for rank, name in enumerate(extras + originals)}


def remove_vms_from_tier(
    ostro: "Ostro",
    app_name: str,
    tier_prefix: str,
    fraction: float = 0.0,
    count: Optional[int] = None,
    loads: Optional[Dict[str, float]] = None,
    min_members: int = 1,
    consolidate: Optional["DefragConfig"] = None,
    defrag_stats: Optional["DefragStats"] = None,
    step_hook: Optional[Callable[[str, int, "MigrationStep"], None]] = None,
) -> ScaleInResult:
    """Scale a deployed application's tier *in*, releasing members live.

    The inverse of :func:`add_vms_to_tier`, but operating on a committed
    deployment: ``ceil(fraction * tier_size)`` members (or exactly
    ``count``) are selected least-loaded-first and their reservations --
    incident link bandwidth, then host/disk capacity -- are released
    under a transactional snapshot, exactly mirroring
    :meth:`~repro.core.scheduler.Ostro.commit`: the release is gated
    through the fault injector (service ``"ostro"``, method
    ``"scale_in"``), retried under the scheduler's
    :class:`~repro.faults.retry.RetryPolicy` when one is installed, and
    rolled back bit-exactly on any :class:`~repro.errors.ReproError`.
    No search runs: shrinking never needs placement work.

    Victim selection is fully deterministic: members sort by
    ``(load, preference)`` where ``loads`` maps member name to its
    current load (missing entries read 0.0) and the preference order
    unwinds prior scale-outs first (see :func:`_removal_preference`).
    At least ``min_members`` members always survive.

    With ``consolidate`` given (and enabled), the survivors are handed
    to the PR 9 migration engine for a targeted single-application
    defragmentation pass (:meth:`repro.defrag.planner.DefragPlanner.
    plan_app` executed by :class:`repro.defrag.executor.DefragExecutor`)
    -- scale-in is precisely the moment an application's placement has
    just become sparser than it needs to be. A fault mid-consolidation
    aborts that pass transactionally; the shrink itself is already
    durable at that point.

    Returns a :class:`ScaleInResult`; a resolved delta of zero returns
    immediately with no state mutation, no injector gate, and no events.
    """
    deployed = ostro.deployed(app_name)
    topology = deployed.topology
    placement = deployed.placement
    members = tier_members(topology, tier_prefix)
    if not members:
        raise PlacementError(
            f"no VMs with prefix {tier_prefix!r} in {app_name!r}"
        )
    if count is None:
        count = math.ceil(fraction * len(members) - 1e-9)
    count = min(count, len(members) - max(0, min_members))
    if count <= 0:
        return ScaleInResult(remaining=len(members))

    preference = _removal_preference(members, tier_prefix)
    victims = sorted(
        members,
        key=lambda name: (
            (loads or {}).get(name, 0.0),
            preference[name],
        ),
    )[:count]
    victim_set = set(victims)

    shrunk = topology.copy()
    for name in victims:
        shrunk.remove_node(name)

    released_links = [
        link
        for link in topology.links
        if link.a in victim_set or link.b in victim_set
    ]

    def release_once() -> None:
        baseline = ostro.state.snapshot()
        try:
            if ostro.injector is not None:
                ostro.injector.before_api_call("ostro", "scale_in")
            for link in released_links:
                path = ostro.resolver.path(
                    placement.host_of(link.a), placement.host_of(link.b)
                )
                ostro.state.release_path(path, link.bw_mbps)
            for name in victims:
                node = topology.node(name)
                ostro.state.unplace_vm(
                    placement.host_of(name),
                    ostro.state.reserved_vcpus(node),
                    node.mem_gb,
                )
        except ReproError as exc:
            ostro.state.restore(baseline)
            rec = obs.get_recorder()
            if rec.enabled:
                rec.inc("ostro_rollbacks_total")
                rec.event("rollback", app=app_name, reason=str(exc))
            raise

    if ostro.retry_policy is not None:
        from repro.faults.retry import retry_call

        retry_call(
            ostro.retry_policy,
            release_once,
            service="ostro",
            method="scale_in",
        )
    else:
        release_once()

    released_ubw = 0.0
    for link in released_links:
        path = ostro.resolver.path(
            placement.host_of(link.a), placement.host_of(link.b)
        )
        released_ubw += link.bw_mbps * len(path)
    kept_assignments = {
        name: assignment
        for name, assignment in placement.assignments.items()
        if name not in victim_set
    }
    kept_hosts = {a.host for a in kept_assignments.values()}
    vacated = len(
        {a.host for a in placement.assignments.values()} - kept_hosts
    )
    from repro.core.placement import Placement
    from repro.core.scheduler import DeployedApplication

    ostro.applications[app_name] = DeployedApplication(
        topology=shrunk,
        placement=Placement(
            app_name=app_name,
            assignments=kept_assignments,
            reserved_bw_mbps=placement.reserved_bw_mbps - released_ubw,
            new_active_hosts=max(0, placement.new_active_hosts - vacated),
            hosts_used=len(kept_hosts),
        ),
    )

    result = ScaleInResult(
        removed=victims, remaining=len(members) - len(victims)
    )
    rec = obs.get_recorder()
    if rec.enabled:
        rec.inc("ostro_scaling_vms_total", len(victims), direction="removed")
        rec.event(
            "scale_in",
            app=app_name,
            tier=tier_prefix,
            removed=len(victims),
            remaining=result.remaining,
        )

    if consolidate is not None and consolidate.enabled:
        from repro.defrag.executor import DefragExecutor, DefragStats
        from repro.defrag.planner import DefragPlanner

        plan = DefragPlanner(consolidate).plan_app(ostro, app_name)
        if plan.migrations:
            stats = defrag_stats if defrag_stats is not None else DefragStats()
            moves_before = stats.moves + stats.bounces
            executor = DefragExecutor(ostro, consolidate, step_hook=step_hook)
            result.consolidated = executor.execute(plan, stats)
            result.consolidation_moves = (
                stats.moves + stats.bounces - moves_before
            )
    return result
