"""Migration planning between two placements of the same application.

The paper motivates placement decisions "not just at application
deployment time, but also at runtime if the infrastructure is being
managed adaptively and the resource assignments to applications can be
changed" (Section I). Changing assignments means *migrating* running VMs
and volumes — and a new placement cannot simply be applied wholesale: a
node's target host may be occupied by another node that has not moved out
yet, and every intermediate configuration must respect capacity and
bandwidth.

:func:`plan_migration` turns an (old placement, new placement) pair into
an ordered list of :class:`MigrationStep` moves that is safe to execute
one move at a time:

1. Nodes whose assignment is unchanged are untouched.
2. At each round, any node whose *target* currently has room (CPU/memory
   or disk, plus bandwidth for its links toward every neighbor's current
   location) is moved.
3. When no node can move directly — a cycle, e.g. two VMs swapping
   hosts — one blocked node is *bounced* to a temporary host with room,
   breaking the cycle at the cost of one extra move (bounded by
   ``max_bounces``).

The plan is validated by simulation on a cloned state as it is built, so
a returned plan is feasible by construction; :func:`apply_plan` executes
it against a live state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro import obs
from repro.core.placement import Placement
from repro.core.topology import ApplicationTopology
from repro.datacenter.network import PathResolver
from repro.datacenter.state import DataCenterState
from repro.errors import CapacityError, PlacementError


@dataclass(frozen=True)
class MigrationStep:
    """One move of the plan.

    Attributes:
        node: node being moved.
        to_host: destination host index.
        to_disk: destination disk index (volumes only).
        bounce: True when this is a temporary cycle-breaking move rather
            than the node's final destination.
    """

    node: str
    to_host: int
    to_disk: Optional[int] = None
    bounce: bool = False


@dataclass
class MigrationPlan:
    """An ordered, feasibility-checked migration plan.

    Attributes:
        steps: moves in execution order.
        moves: final-destination moves (excludes bounces).
        bounces: cycle-breaking intermediate moves.
    """

    steps: List[MigrationStep] = field(default_factory=list)

    @property
    def moves(self) -> List[MigrationStep]:
        return [s for s in self.steps if not s.bounce]

    @property
    def bounces(self) -> List[MigrationStep]:
        return [s for s in self.steps if s.bounce]

    def __len__(self) -> int:
        return len(self.steps)


class _Simulator:
    """Executes candidate moves on a cloned state, tracking locations."""

    def __init__(
        self,
        topology: ApplicationTopology,
        state: DataCenterState,
        resolver: PathResolver,
        placement: Placement,
    ) -> None:
        self.topology = topology
        self.state = state
        self.resolver = resolver
        self.location: Dict[str, Tuple[int, Optional[int]]] = {
            name: (a.host, a.disk)
            for name, a in placement.assignments.items()
        }

    def _flows(
        self, node: str, host: int
    ) -> Iterator[Tuple[Tuple[int, ...], float]]:
        for neighbor, bw in self.topology.neighbors(node):
            if bw <= 0:
                continue
            nbr_host, _ = self.location[neighbor]
            yield self.resolver.path(host, nbr_host), bw

    def try_move(
        self, node: str, to_host: int, to_disk: Optional[int]
    ) -> bool:
        """Attempt one move; returns False (state untouched) if it does
        not fit."""
        from_host, from_disk = self.location[node]
        if (from_host, from_disk) == (to_host, to_disk):
            return True
        record = self.topology.node(node)
        # release the node's current flows and occupancy
        for path, bw in self._flows(node, from_host):
            self.state.release_path(path, bw)
        if record.is_vm:
            self.state.unplace_vm(
                from_host, self.state.reserved_vcpus(record), record.mem_gb
            )
        else:
            self.state.unplace_volume(from_disk, record.size_gb)
        # try to take up residence at the target
        try:
            if record.is_vm:
                self.state.place_vm(
                    to_host, self.state.reserved_vcpus(record), record.mem_gb
                )
            else:
                if to_disk is None:
                    raise CapacityError("volume move needs a disk")
                self.state.place_volume(to_disk, record.size_gb)
            reserved = []
            try:
                for path, bw in self._flows(node, to_host):
                    self.state.reserve_path(path, bw)
                    reserved.append((path, bw))
            except CapacityError:
                for path, bw in reserved:
                    self.state.release_path(path, bw)
                if record.is_vm:
                    self.state.unplace_vm(
                        to_host,
                        self.state.reserved_vcpus(record),
                        record.mem_gb,
                    )
                else:
                    self.state.unplace_volume(to_disk, record.size_gb)
                raise
        except CapacityError:
            # put the node back where it was
            if record.is_vm:
                self.state.place_vm(
                    from_host,
                    self.state.reserved_vcpus(record),
                    record.mem_gb,
                )
            else:
                self.state.place_volume(from_disk, record.size_gb)
            for path, bw in self._flows(node, from_host):
                self.state.reserve_path(path, bw)
            return False
        self.location[node] = (to_host, to_disk)
        return True

    def find_bounce_target(
        self, node: str
    ) -> Optional[Tuple[int, Optional[int]]]:
        """Any host/disk with room for the node right now (first fit)."""
        record = self.topology.node(node)
        cloud = self.state.cloud
        if record.is_vm:
            needed = self.state.reserved_vcpus(record)
            for host in range(cloud.num_hosts):
                if host == self.location[node][0]:
                    continue
                if self.state.vm_fits(host, needed, record.mem_gb):
                    return host, None
            return None
        for disk_index, disk in enumerate(cloud.disks):
            if disk_index == self.location[node][1]:
                continue
            if self.state.volume_fits(disk_index, record.size_gb):
                return disk.host.index, disk_index
        return None


def plan_migration(
    topology: ApplicationTopology,
    state: DataCenterState,
    old_placement: Placement,
    new_placement: Placement,
    max_bounces: int = 8,
) -> MigrationPlan:
    """Plan a safe move sequence from ``old_placement`` to ``new_placement``.

    Args:
        topology: the application being migrated.
        state: live availability state *with the old placement committed*
            (cloned internally; never mutated).
        old_placement / new_placement: full placements of the topology.
        max_bounces: cycle-breaking budget.

    Raises:
        PlacementError: when no safe sequence exists within the bounce
            budget (e.g. the cloud is too full to stage any intermediate
            configuration).
    """
    missing = topology.nodes.keys() - new_placement.assignments.keys()
    if missing:
        raise PlacementError(
            f"new placement does not cover nodes: {sorted(missing)}"
        )
    resolver = PathResolver(state.cloud)
    sim = _Simulator(topology, state.clone(), resolver, old_placement)
    plan = MigrationPlan()
    pending = sorted(
        name
        for name in topology.nodes
        if (
            old_placement.assignments[name].host,
            old_placement.assignments[name].disk,
        )
        != (
            new_placement.assignments[name].host,
            new_placement.assignments[name].disk,
        )
    )
    bounces = 0
    while pending:
        progressed = False
        for name in list(pending):
            target = new_placement.assignments[name]
            if sim.try_move(name, target.host, target.disk):
                plan.steps.append(
                    MigrationStep(
                        node=name, to_host=target.host, to_disk=target.disk
                    )
                )
                pending.remove(name)
                progressed = True
        if progressed:
            continue
        if bounces >= max_bounces:
            raise PlacementError(
                f"migration blocked after {bounces} bounces; "
                f"still pending: {pending}"
            )
        # cycle: bounce the first blocked node anywhere with room
        bounced = False
        for name in pending:
            spot = sim.find_bounce_target(name)
            if spot is None:
                continue
            host, disk = spot
            if sim.try_move(name, host, disk):
                plan.steps.append(
                    MigrationStep(
                        node=name, to_host=host, to_disk=disk, bounce=True
                    )
                )
                bounces += 1
                bounced = True
                break
        if not bounced:
            raise PlacementError(
                f"migration blocked: no bounce target for any of {pending}"
            )
    return plan


def apply_plan(
    topology: ApplicationTopology,
    state: DataCenterState,
    old_placement: Placement,
    plan: MigrationPlan,
) -> None:
    """Execute a plan against a live state (with the old placement
    committed), move by move; raises mid-way only if the plan is stale."""
    resolver = PathResolver(state.cloud)
    sim = _Simulator(topology, state, resolver, old_placement)
    rec = obs.get_recorder()
    for step in plan.steps:
        if not sim.try_move(step.node, step.to_host, step.to_disk):
            raise PlacementError(
                f"migration step for {step.node!r} no longer fits; "
                "re-plan against the current state"
            )
        if rec.enabled:
            record = topology.node(step.node)
            moved_gb = record.mem_gb if record.is_vm else record.size_gb
            rec.inc(
                "ostro_migration_steps_total",
                kind="bounce" if step.bounce else "move",
            )
            rec.inc("ostro_migration_moved_gb_total", moved_gb)
            rec.event(
                "migration_step",
                node=step.node,
                to_host=step.to_host,
                to_disk=step.to_disk,
                bounce=step.bounce,
                moved_gb=moved_gb,
            )
