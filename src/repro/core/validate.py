"""Independent validation of placements.

:func:`validate_placement` re-derives every constraint of Section II-B for
a finished placement against a base availability state: capacity, path
bandwidth, diversity zones, latency bounds, and volume/disk consistency.
It shares no code with the search (reservations are replayed onto a fresh
clone), so it catches scheduler bugs rather than inheriting them — the
test suite and the benchmarks both validate through it, and downstream
users can check placements produced elsewhere.
"""

from __future__ import annotations

from typing import List

from repro.core.placement import Placement
from repro.core.topology import ApplicationTopology
from repro.datacenter.model import Cloud
from repro.datacenter.network import PathResolver
from repro.datacenter.state import DataCenterState
from repro.errors import CapacityError


class PlacementViolation(AssertionError):
    """A placement failed validation; ``str()`` lists every violation."""

    def __init__(self, violations: List[str]) -> None:
        super().__init__("\n".join(violations))
        self.violations = violations


def placement_violations(
    topology: ApplicationTopology,
    cloud: Cloud,
    base_state: DataCenterState,
    placement: Placement,
) -> List[str]:
    """Collect every constraint violation of a placement (empty = valid).

    Args:
        topology: the application supposedly placed.
        cloud: the physical structure.
        base_state: availability *before* this placement (cloned; not
            mutated).
        placement: the placement to validate.
    """
    violations: List[str] = []
    missing = topology.nodes.keys() - placement.assignments.keys()
    if missing:
        violations.append(f"nodes not placed: {sorted(missing)}")
        return violations

    state = base_state.clone()
    # capacity, replayed one node at a time
    for name in sorted(topology.nodes):
        node = topology.node(name)
        assignment = placement.assignments[name]
        try:
            if node.is_vm:
                if assignment.disk is not None:
                    violations.append(f"VM {name!r} carries a disk index")
                state.place_vm(
                    assignment.host,
                    state.reserved_vcpus(node),
                    node.mem_gb,
                )
            else:
                if assignment.disk is None:
                    violations.append(f"volume {name!r} has no disk")
                    continue
                disk = cloud.disks[assignment.disk]
                if disk.host.index != assignment.host:
                    violations.append(
                        f"volume {name!r}: disk {disk.name} is not on "
                        f"host {cloud.hosts[assignment.host].name}"
                    )
                    continue
                state.place_volume(assignment.disk, node.size_gb)
        except CapacityError as exc:
            violations.append(f"capacity: {exc}")

    # bandwidth, cumulatively over all links
    resolver = PathResolver(cloud)
    for link in topology.links:
        path = resolver.path(
            placement.host_of(link.a), placement.host_of(link.b)
        )
        try:
            state.reserve_path(path, link.bw_mbps)
        except CapacityError as exc:
            violations.append(
                f"bandwidth: link {link.a!r}-{link.b!r}: {exc}"
            )
        if link.max_hops is not None and len(path) > link.max_hops:
            violations.append(
                f"latency: link {link.a!r}-{link.b!r} spans {len(path)} "
                f"hops, bound {link.max_hops}"
            )

    # diversity zones, pairwise
    for zone in topology.zones:
        members = sorted(zone.members)
        for i, first in enumerate(members):
            for second in members[i + 1 :]:
                if not cloud.separated_at(
                    placement.host_of(first),
                    placement.host_of(second),
                    zone.level,
                ):
                    violations.append(
                        f"diversity: zone {zone.name!r} violated by "
                        f"{first!r} and {second!r}"
                    )
    return violations


def validate_placement(
    topology: ApplicationTopology,
    cloud: Cloud,
    base_state: DataCenterState,
    placement: Placement,
) -> None:
    """Raise :class:`PlacementViolation` unless the placement is valid."""
    violations = placement_violations(topology, cloud, base_state, placement)
    if violations:
        raise PlacementViolation(violations)
