"""Independent validation of placements and of the live state.

:func:`validate_placement` re-derives every constraint of Section II-B for
a finished placement against a base availability state: capacity, path
bandwidth, diversity zones, latency bounds, and volume/disk consistency.
It shares no code with the search (reservations are replayed onto a fresh
clone), so it catches scheduler bugs rather than inheriting them — the
test suite and the benchmarks both validate through it, and downstream
users can check placements produced elsewhere.

:func:`state_invariant_violations` and :func:`conservation_violations`
guard against *capacity leaks* under failures: the first checks the
state's local invariants (no negative free resources, down elements fully
absorbed), the second re-derives what the free arrays *should* read from
the scheduler's baseline snapshot minus its committed reservations. The
chaos harness runs both after every event.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List

from repro.core.placement import Placement
from repro.core.topology import ApplicationTopology
from repro.datacenter.model import Cloud
from repro.datacenter.network import PathResolver
from repro.datacenter.resources import EPSILON
from repro.datacenter.state import DataCenterState
from repro.errors import CapacityError

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import
    from repro.core.scheduler import Ostro


class PlacementViolation(AssertionError):
    """A placement failed validation; ``str()`` lists every violation."""

    def __init__(self, violations: List[str]) -> None:
        super().__init__("\n".join(violations))
        self.violations = violations


def placement_violations(
    topology: ApplicationTopology,
    cloud: Cloud,
    base_state: DataCenterState,
    placement: Placement,
) -> List[str]:
    """Collect every constraint violation of a placement (empty = valid).

    Args:
        topology: the application supposedly placed.
        cloud: the physical structure.
        base_state: availability *before* this placement (cloned; not
            mutated).
        placement: the placement to validate.
    """
    violations: List[str] = []
    missing = topology.nodes.keys() - placement.assignments.keys()
    if missing:
        violations.append(f"nodes not placed: {sorted(missing)}")
        return violations

    state = base_state.clone()
    # capacity, replayed one node at a time
    for name in sorted(topology.nodes):
        node = topology.node(name)
        assignment = placement.assignments[name]
        try:
            if node.is_vm:
                if assignment.disk is not None:
                    violations.append(f"VM {name!r} carries a disk index")
                state.place_vm(
                    assignment.host,
                    state.reserved_vcpus(node),
                    node.mem_gb,
                )
            else:
                if assignment.disk is None:
                    violations.append(f"volume {name!r} has no disk")
                    continue
                disk = cloud.disks[assignment.disk]
                if disk.host.index != assignment.host:
                    violations.append(
                        f"volume {name!r}: disk {disk.name} is not on "
                        f"host {cloud.hosts[assignment.host].name}"
                    )
                    continue
                state.place_volume(assignment.disk, node.size_gb)
        except CapacityError as exc:
            violations.append(f"capacity: {exc}")

    # bandwidth, cumulatively over all links
    resolver = PathResolver(cloud)
    for link in topology.links:
        path = resolver.path(
            placement.host_of(link.a), placement.host_of(link.b)
        )
        try:
            state.reserve_path(path, link.bw_mbps)
        except CapacityError as exc:
            violations.append(
                f"bandwidth: link {link.a!r}-{link.b!r}: {exc}"
            )
        if link.max_hops is not None and len(path) > link.max_hops:
            violations.append(
                f"latency: link {link.a!r}-{link.b!r} spans {len(path)} "
                f"hops, bound {link.max_hops}"
            )

    # diversity zones, pairwise
    for zone in topology.zones:
        members = sorted(zone.members)
        for i, first in enumerate(members):
            for second in members[i + 1 :]:
                if not cloud.separated_at(
                    placement.host_of(first),
                    placement.host_of(second),
                    zone.level,
                ):
                    violations.append(
                        f"diversity: zone {zone.name!r} violated by "
                        f"{first!r} and {second!r}"
                    )
    return violations


def validate_placement(
    topology: ApplicationTopology,
    cloud: Cloud,
    base_state: DataCenterState,
    placement: Placement,
) -> None:
    """Raise :class:`PlacementViolation` unless the placement is valid."""
    violations = placement_violations(topology, cloud, base_state, placement)
    if violations:
        raise PlacementViolation(violations)


def state_invariant_violations(state: DataCenterState) -> List[str]:
    """The state's local conservation invariants (empty = OK).

    Delegates to
    :meth:`~repro.datacenter.state.DataCenterState.capacity_invariants`:
    free values within ``[0, nominal]``, non-negative unit counts, down
    elements fully absorbed.
    """
    return state.capacity_invariants()


def conservation_violations(ostro: "Ostro") -> List[str]:
    """Check the live state against baseline-minus-commitments (empty = OK).

    Re-derives, from the scheduler's :attr:`~repro.core.scheduler
    .Ostro.baseline` snapshot and its committed applications, what every
    free array entry should read, and compares against the live state
    (within :data:`EPSILON`, since replay ordering may differ in the last
    float bits). Down hosts/links are compared through their *effective*
    free values -- capacity absorbed while down must still be conserved.

    Any mismatch is a capacity leak: a failed transaction that released
    too little or too much, a double release, or a fault that resurrected
    dead capacity.
    """
    state = ostro.state
    cloud = state.cloud
    cpu0, mem0, disk0, bw0, units0 = ostro.baseline
    placed_cpu = [0.0] * len(cloud.hosts)
    placed_mem = [0.0] * len(cloud.hosts)
    placed_units = [0] * len(cloud.hosts)
    placed_disk = [0.0] * len(cloud.disks)
    placed_bw = [0.0] * cloud.num_links
    for app_name in sorted(ostro.applications):
        deployed = ostro.applications[app_name]
        topology, placement = deployed.topology, deployed.placement
        for name in sorted(topology.nodes):
            node = topology.node(name)
            assignment = placement.assignments[name]
            if node.is_vm:
                placed_cpu[assignment.host] += state.reserved_vcpus(node)
                placed_mem[assignment.host] += node.mem_gb
                placed_units[assignment.host] += 1
            else:
                placed_disk[assignment.disk] += node.size_gb
                placed_units[cloud.disks[assignment.disk].host.index] += 1
        for link in topology.links:
            path = ostro.resolver.path(
                placement.host_of(link.a), placement.host_of(link.b)
            )
            for index in path:
                placed_bw[index] += link.bw_mbps

    violations: List[str] = []
    for i, host in enumerate(cloud.hosts):
        expected_cpu = cpu0[i] - placed_cpu[i]
        actual_cpu = state.effective_free_cpu(i)
        if abs(actual_cpu - expected_cpu) > EPSILON:
            violations.append(
                f"conservation: host {host.name} free cpu {actual_cpu:.6f}, "
                f"expected {expected_cpu:.6f} (leak of "
                f"{actual_cpu - expected_cpu:+.6f} vCPU)"
            )
        expected_mem = mem0[i] - placed_mem[i]
        actual_mem = state.effective_free_mem(i)
        if abs(actual_mem - expected_mem) > EPSILON:
            violations.append(
                f"conservation: host {host.name} free mem {actual_mem:.6f}, "
                f"expected {expected_mem:.6f} (leak of "
                f"{actual_mem - expected_mem:+.6f} GB)"
            )
        expected_units = int(units0[i]) + placed_units[i]
        if state.host_units[i] != expected_units:
            violations.append(
                f"conservation: host {host.name} unit count "
                f"{state.host_units[i]}, expected {expected_units}"
            )
    for j, disk in enumerate(cloud.disks):
        expected_disk = disk0[j] - placed_disk[j]
        actual_disk = state.effective_free_disk(j)
        if abs(actual_disk - expected_disk) > EPSILON:
            violations.append(
                f"conservation: disk {disk.name} free space "
                f"{actual_disk:.6f}, expected {expected_disk:.6f} GB"
            )
    for k in range(cloud.num_links):
        expected_bw = bw0[k] - placed_bw[k]
        actual_bw = state.effective_free_bw(k)
        if abs(actual_bw - expected_bw) > EPSILON:
            violations.append(
                f"conservation: link {cloud.link_names[k]} free bandwidth "
                f"{actual_bw:.6f}, expected {expected_bw:.6f} Mbps"
            )
    return violations
