"""The Ostro scheduler facade.

:class:`Ostro` owns the live availability state of one cloud and exposes the
paper's workflow: hand it an application topology, get back a holistic
placement computed by one of the registered algorithms, optionally commit
the placement into the live state (so subsequent applications see the
consumed capacity), and later remove or update the application.

Algorithms are addressed by name; the registry accepts the paper's labels::

    "eg", "egc", "egbw", "ba*", "dba*"

plus the aliases "ba"/"astar" and "dba".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from repro import obs
from repro.core.astar import BAStar
from repro.core.base import PlacementAlgorithm, PlacementResult
from repro.core.deadline import DBAStar
from repro.core.greedy import EG, EGBW, EGC, GreedyConfig
from repro.core.objective import Objective
from repro.core.placement import Placement
from repro.core.topology import ApplicationTopology
from repro.datacenter.model import Cloud
from repro.datacenter.network import PathResolver
from repro.datacenter.state import DataCenterState
from repro.errors import PlacementError, ReproError

if TYPE_CHECKING:  # pragma: no cover - avoids circular imports
    from repro.core.migration import MigrationPlan
    from repro.core.online import UpdateResult
    from repro.faults.injector import FaultInjector
    from repro.faults.retry import RetryPolicy

#: Canonical algorithm names -> constructor accepting keyword options.
_ALIASES = {
    "eg": "eg",
    "egc": "egc",
    "egbw": "egbw",
    "ba*": "ba*",
    "ba": "ba*",
    "astar": "ba*",
    "dba*": "dba*",
    "dba": "dba*",
}


def make_algorithm(name: str, **options: Any) -> PlacementAlgorithm:
    """Instantiate a placement algorithm by (case-insensitive) name.

    Keyword options are forwarded to the constructor: ``greedy_config`` /
    ``config``, ``deadline_s``, ``seed``, ``symmetry_reduction``,
    ``max_expansions``, ``dedup`` -- whichever the algorithm accepts.
    """
    canonical = _ALIASES.get(name.strip().lower())
    if canonical is None:
        raise ReproError(
            f"unknown placement algorithm {name!r}; "
            f"choose from {sorted(set(_ALIASES.values()))}"
        )
    if canonical == "eg":
        return EG(config=options.get("config") or options.get("greedy_config"))
    if canonical == "egc":
        return EGC(dedup=options.get("dedup", True))
    if canonical == "egbw":
        return EGBW(
            config=options.get("config") or options.get("greedy_config")
        )
    if canonical == "ba*":
        return BAStar(
            greedy_config=options.get("greedy_config") or options.get("config"),
            symmetry_reduction=options.get("symmetry_reduction", True),
            max_expansions=options.get("max_expansions"),
        )
    return DBAStar(
        deadline_s=options.get("deadline_s", 1.0),
        greedy_config=options.get("greedy_config") or options.get("config"),
        symmetry_reduction=options.get("symmetry_reduction", True),
        alpha_factor=options.get("alpha_factor", 0.2),
        seed=options.get("seed", 0),
        max_expansions=options.get("max_expansions"),
    )


@dataclass
class DeployedApplication:
    """Record of one committed application."""

    topology: ApplicationTopology
    placement: Placement


class Ostro:
    """Holistic application scheduler over one cloud (Section II).

    Args:
        cloud: the physical structure to schedule onto.
        state: live availability; a pristine state is created when omitted.
        theta_bw: objective weight of the bandwidth term.
        theta_c: objective weight of the host-count term.
        greedy_config: default EG/candidate configuration used by all
            algorithms this scheduler instantiates.
        injector: optional fault injector; its ``before_api_call`` gate
            runs at the start of every commit, so commits can fail by
            plan (see :mod:`repro.faults`).
        retry_policy: optional retry/backoff policy wrapped around the
            commit path; transient commit faults are retried under it.
    """

    def __init__(
        self,
        cloud: Cloud,
        state: Optional[DataCenterState] = None,
        theta_bw: float = 0.6,
        theta_c: float = 0.4,
        greedy_config: Optional[GreedyConfig] = None,
        injector: Optional["FaultInjector"] = None,
        retry_policy: Optional["RetryPolicy"] = None,
    ) -> None:
        self.cloud = cloud
        self.state = state if state is not None else DataCenterState(cloud)
        self.theta_bw = theta_bw
        self.theta_c = theta_c
        self.greedy_config = greedy_config or GreedyConfig()
        self.resolver = PathResolver(cloud)
        self.applications: Dict[str, DeployedApplication] = {}
        self.injector = injector
        self.retry_policy = retry_policy
        #: free-capacity snapshot taken at construction; the conservation
        #: check (verify_state) compares the live state against baseline
        #: minus committed reservations. Call rebaseline() after mutating
        #: the state outside the scheduler (e.g. background load).
        self.baseline = self.state.snapshot()

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------

    def place(
        self,
        topology: ApplicationTopology,
        algorithm: str = "dba*",
        commit: bool = True,
        pinned: Optional[Dict[str, Tuple[int, Optional[int]]]] = None,
        **options: Any,
    ) -> PlacementResult:
        """Compute (and by default commit) a placement for a topology.

        Args:
            topology: the application to place; its name must be unique
                among committed applications when ``commit`` is True.
            algorithm: registry name ("eg", "egc", "egbw", "ba*", "dba*")
                -- or pass a ready :class:`PlacementAlgorithm` instance.
            commit: reserve the placement in the live state and remember
                the application for later removal/update.
            pinned: optional node -> (host, disk) pre-assignments.
            **options: forwarded to :func:`make_algorithm`.

        Returns:
            The :class:`PlacementResult` of the chosen algorithm.
        """
        if commit and topology.name in self.applications:
            raise PlacementError(
                f"application {topology.name!r} is already deployed; "
                "use update() or remove() first"
            )
        if isinstance(algorithm, PlacementAlgorithm):
            algo = algorithm
        else:
            options.setdefault("greedy_config", self.greedy_config)
            algo = make_algorithm(algorithm, **options)
        objective = Objective.for_topology(
            topology, self.cloud, self.theta_bw, self.theta_c
        )
        rec = obs.get_recorder()
        with rec.span(
            "ostro.place", app=topology.name, algorithm=algo.name
        ):
            result = algo.place(
                topology, self.cloud, self.state, objective, pinned=pinned
            )
            if commit:
                self.commit(topology, result.placement)
        return result

    # ------------------------------------------------------------------
    # live-state bookkeeping
    # ------------------------------------------------------------------

    def commit(self, topology: ApplicationTopology, placement: Placement) -> None:
        """Reserve a computed placement in the live state.

        Applies host/disk reservations for every node and bandwidth
        reservations for every link, then records the application. The
        placement must cover every node of the topology.

        The commit is transactional: the state is snapshotted first and
        restored bit-exactly on any :class:`~repro.errors.ReproError`
        (capacity race, injected fault, ...). With a
        :attr:`retry_policy` installed, transient commit faults are
        retried under it; each failed attempt rolls back before the next
        one starts.
        """
        missing = topology.nodes.keys() - placement.assignments.keys()
        if missing:
            raise PlacementError(
                f"placement does not cover nodes: {sorted(missing)}"
            )
        if self.retry_policy is not None:
            from repro.faults.retry import retry_call

            retry_call(
                self.retry_policy,
                lambda: self._commit_once(topology, placement),
                service="ostro",
                method="commit",
            )
        else:
            self._commit_once(topology, placement)
        self.applications[topology.name] = DeployedApplication(
            topology=topology.copy(), placement=placement
        )
        rec = obs.get_recorder()
        if rec.enabled:
            rec.inc("ostro_commits_total")
            rec.event(
                "commit", app=topology.name, nodes=len(topology.nodes)
            )

    def _commit_once(
        self, topology: ApplicationTopology, placement: Placement
    ) -> None:
        """One commit attempt: apply all reservations or roll back."""
        rec = obs.get_recorder()
        baseline = self.state.snapshot()
        try:
            with rec.span("ostro.commit", app=topology.name):
                if self.injector is not None:
                    self.injector.before_api_call("ostro", "commit")
                for name in sorted(topology.nodes):
                    node = topology.node(name)
                    assignment = placement.assignments[name]
                    if node.is_vm:
                        self.state.place_vm(
                            assignment.host,
                            self.state.reserved_vcpus(node),
                            node.mem_gb,
                        )
                    else:
                        self.state.place_volume(assignment.disk, node.size_gb)
                for link in topology.links:
                    path = self.resolver.path(
                        placement.host_of(link.a), placement.host_of(link.b)
                    )
                    self.state.reserve_path(path, link.bw_mbps)
        except ReproError as exc:
            self.state.restore(baseline)
            if rec.enabled:
                rec.inc("ostro_rollbacks_total")
                rec.event(
                    "rollback", app=topology.name, reason=str(exc)
                )
            raise

    def remove(self, app_name: str) -> None:
        """Release every reservation of a committed application."""
        deployed = self.applications.pop(app_name, None)
        if deployed is None:
            raise PlacementError(f"unknown application: {app_name!r}")
        topology, placement = deployed.topology, deployed.placement
        for link in topology.links:
            path = self.resolver.path(
                placement.host_of(link.a), placement.host_of(link.b)
            )
            self.state.release_path(path, link.bw_mbps)
        for name in sorted(topology.nodes):
            node = topology.node(name)
            assignment = placement.assignments[name]
            if node.is_vm:
                self.state.unplace_vm(
                    assignment.host,
                    self.state.reserved_vcpus(node),
                    node.mem_gb,
                )
            else:
                self.state.unplace_volume(assignment.disk, node.size_gb)
        rec = obs.get_recorder()
        if rec.enabled:
            rec.inc("ostro_removes_total")
            rec.event("remove", app=app_name)

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------

    def deployed(self, app_name: str) -> DeployedApplication:
        """Look up a committed application."""
        try:
            return self.applications[app_name]
        except KeyError:
            raise PlacementError(f"unknown application: {app_name!r}") from None

    def rebaseline(self) -> None:
        """Re-capture the conservation baseline from the current state.

        Call after mutating the state outside the scheduler's own commit
        and remove paths (e.g. installing background load) so
        :meth:`verify_state` measures leaks from the new starting point.
        """
        self.baseline = self.state.snapshot()

    def verify_state(self) -> list:
        """Capacity-leak audit of the live state (empty list = clean).

        Combines the state's local invariants with the conservation check
        against :attr:`baseline`; see :mod:`repro.core.validate`. The
        chaos harness calls this after every deploy/fault/evacuation.
        """
        from repro.core.validate import (
            conservation_violations,
            state_invariant_violations,
        )

        return state_invariant_violations(self.state) + conservation_violations(
            self
        )

    def update(
        self, new_topology: ApplicationTopology, **kwargs: Any
    ) -> "UpdateResult":
        """Online adaptation; see :func:`repro.core.online.update_application`."""
        from repro.core.online import update_application

        return update_application(self, new_topology, **kwargs)

    def reoptimize(
        self,
        app_name: str,
        algorithm: str = "dba*",
        max_bounces: int = 8,
        **options: Any,
    ) -> Tuple[PlacementResult, "MigrationPlan"]:
        """Re-place a deployed application from scratch and migrate to it.

        The paper's runtime-adaptation scenario (Section I): conditions
        changed since deployment, so compute a fresh holistic placement
        with full freedom, derive a safe move-by-move migration plan from
        the current one (see :mod:`repro.core.migration`), execute it, and
        record the new placement. When the fresh placement is no better
        than the current one, nothing moves.

        Returns:
            (result, plan): the new :class:`PlacementResult` and the
            executed :class:`~repro.core.migration.MigrationPlan` (empty
            when no move was needed).
        """
        from repro.core.migration import apply_plan, plan_migration

        deployed = self.deployed(app_name)
        topology, old_placement = deployed.topology, deployed.placement
        # Search on a hypothetical state without this app's reservations.
        self.remove(app_name)
        try:
            result = self.place(
                topology, algorithm=algorithm, commit=False, **options
            )
            objective = Objective.for_topology(
                topology, self.cloud, self.theta_bw, self.theta_c
            )
            current_value = self._placement_value(
                topology, old_placement, objective
            )
            rec = obs.get_recorder()
            if result.objective_value >= current_value - 1e-12:
                # not an improvement: keep everything where it is
                self.commit(topology, old_placement)
                from repro.core.migration import MigrationPlan

                if rec.enabled:
                    rec.inc("ostro_reoptimizations_total", outcome="kept")
                    rec.event(
                        "reoptimize", app=app_name, improved=False,
                        moves=0, bounces=0,
                    )
                return result, MigrationPlan()
            # plan against the live state *with* the old placement present
            self.commit(topology, old_placement)
            with rec.span("ostro.migrate", app=app_name):
                plan = plan_migration(
                    topology,
                    self.state,
                    old_placement,
                    result.placement,
                    max_bounces=max_bounces,
                )
                apply_plan(topology, self.state, old_placement, plan)
            self.applications[app_name] = DeployedApplication(
                topology=topology, placement=result.placement
            )
            if rec.enabled:
                rec.inc("ostro_reoptimizations_total", outcome="improved")
                rec.event(
                    "reoptimize", app=app_name, improved=True,
                    moves=len(plan.moves), bounces=len(plan.bounces),
                )
            return result, plan
        except ReproError:
            if app_name not in self.applications:
                self.commit(topology, old_placement)
            raise

    def _placement_value(
        self,
        topology: ApplicationTopology,
        placement: Placement,
        objective: Objective,
    ) -> float:
        """Objective value of an existing placement (u_bw recomputed; the
        committed hosts count as already active, so u_c is 0 here --
        matching how a fresh search would score keeping everything put)."""
        ubw = 0.0
        for link in topology.links:
            path = self.resolver.path(
                placement.host_of(link.a), placement.host_of(link.b)
            )
            ubw += link.bw_mbps * len(path)
        return objective.score(ubw, 0)
