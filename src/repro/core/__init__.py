"""Ostro's core: application topologies and holistic placement algorithms.

Public surface:

* :class:`~repro.core.topology.ApplicationTopology` with
  :class:`~repro.core.topology.VM`, :class:`~repro.core.topology.Volume`,
  and :class:`~repro.core.zones.DiversityZone`;
* the algorithms :class:`~repro.core.greedy.EG`,
  :class:`~repro.core.greedy.EGC`, :class:`~repro.core.greedy.EGBW`,
  :class:`~repro.core.astar.BAStar`, :class:`~repro.core.deadline.DBAStar`;
* the :class:`~repro.core.scheduler.Ostro` facade.
"""

from repro.core.astar import BAStar, node_equivalence_classes
from repro.core.base import PlacementAlgorithm, PlacementResult, SearchStats
from repro.core.deadline import DBAStar
from repro.core.greedy import EG, EGBW, EGC, GreedyConfig
from repro.core.heuristic import EstimatorConfig, LowerBoundEstimator
from repro.core.migration import (
    MigrationPlan,
    MigrationStep,
    apply_plan,
    plan_migration,
)
from repro.core.objective import Objective
from repro.core.online import UpdateResult, add_vms_to_tier, update_application
from repro.core.persistence import (
    load_inventory,
    placement_from_dict,
    placement_to_dict,
    restore_inventory,
    save_inventory,
)
from repro.core.placement import Assignment, PartialPlacement, Placement
from repro.core.scheduler import Ostro, make_algorithm
from repro.core.topology import VM, ApplicationTopology, PipeLink, Volume
from repro.core.validate import (
    PlacementViolation,
    placement_violations,
    validate_placement,
)
from repro.core.zones import DiversityLevel, DiversityZone

__all__ = [
    "ApplicationTopology",
    "Assignment",
    "BAStar",
    "DBAStar",
    "DiversityLevel",
    "DiversityZone",
    "EG",
    "EGBW",
    "EGC",
    "EstimatorConfig",
    "GreedyConfig",
    "LowerBoundEstimator",
    "MigrationPlan",
    "MigrationStep",
    "Objective",
    "Ostro",
    "PartialPlacement",
    "PipeLink",
    "Placement",
    "PlacementAlgorithm",
    "PlacementResult",
    "PlacementViolation",
    "SearchStats",
    "UpdateResult",
    "VM",
    "Volume",
    "add_vms_to_tier",
    "apply_plan",
    "load_inventory",
    "make_algorithm",
    "node_equivalence_classes",
    "placement_from_dict",
    "placement_to_dict",
    "placement_violations",
    "plan_migration",
    "restore_inventory",
    "save_inventory",
    "update_application",
    "validate_placement",
]
