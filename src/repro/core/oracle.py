"""LP/ILP lower-bound oracle for placement optimality gaps.

The search algorithms (EG, BA*, DBA*) are heuristics: they return *some*
feasible placement and its objective value, but say nothing about how far
that value is from the optimum. This module computes a certified **lower
bound** on the optimal objective of a fresh placement, so a benchmark run
can report each algorithm's optimality gap::

    gap = (score(algorithm) - score_lower_bound) / score_lower_bound

The bound comes from a mixed-integer relaxation of the placement problem,
solved with :func:`scipy.optimize.milp` (HiGHS). Every constraint kept is
implied by the real problem and every dropped constraint (per-host
packing, NIC and uplink bandwidth capacity, latency bounds) only enlarges
the feasible set, so the relaxation's optimum -- and, on solver timeout,
HiGHS's dual bound -- never exceeds the true optimum.

Relaxation
----------

Nodes are assigned to **racks** instead of hosts (``x[n, r]`` binary):

* rack capacity aggregates the free CPU / memory / disk of its hosts;
* the bandwidth term counts, per application link, the minimum possible
  hop count given the endpoints' rack/pod/datacenter relationship (and
  any separation distance forced by shared diversity zones), using
  linearized "both endpoints inside unit u" variables;
* full co-location (zero hops) is a separate per-link discount variable,
  granted only when some single host could hold both endpoints, and a
  **connectivity cut** limits how many links a connected component may
  co-locate: demand that forces ``k`` hosts (no host pools more than the
  largest single host's free capacity) leaves at least ``k - 1`` links
  crossing hosts, because the quotient graph over occupied hosts stays
  connected;
* the host-activation term is bounded per rack: ``k`` newly activated
  hosts supply at most ``k * max_idle_host_capacity``, so
  ``new_hosts_r >= (load_r - active_free_r) / max_idle_host_capacity_r``
  for each resource;
* diversity zones become per-unit cardinality caps at their level.

A closed-form floor (per-link minimum hops plus the global activation
bound) is always computed as well; it is the returned bound when SciPy
is unavailable, and a sanity floor under the MILP bound otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.core.kernel import HAVE_NUMPY, _forced_distance
from repro.datacenter.model import Cloud

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.objective import Objective
    from repro.core.topology import ApplicationTopology
    from repro.datacenter.state import DataCenterState

try:  # SciPy is optional: without it the closed-form floor is returned
    from scipy.optimize import Bounds, LinearConstraint, milp
    from scipy.sparse import csr_array

    HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised only without scipy
    HAVE_SCIPY = False


@dataclass(frozen=True)
class OracleBound:
    """A certified lower bound on the optimal placement objective.

    Attributes:
        score: lower bound on ``Objective.score`` of any feasible
            placement (the gap denominator).
        bw_mbps: lower bound on reserved bandwidth alone (closed form).
        new_hosts: lower bound on newly activated hosts alone
            (closed form).
        solver: ``"milp"`` when HiGHS proved the bound, ``"milp-dual"``
            when a solver limit stopped the search and the dual bound
            was used, ``"closed-form"`` without SciPy.
        status: solver status message for the benchmark payload.
    """

    score: float
    bw_mbps: float
    new_hosts: float
    solver: str
    status: str


def _min_hops_at_distance(cloud: Cloud) -> List[float]:
    """``g[d]``: minimum hop count of any host pair at separation ``d``.

    Uses the per-host one-sided step counts, minimized over all hosts
    independently per side -- a valid under-estimate of any real pair's
    hop count at that distance. A distance no host can realize (e.g.
    ``d=4`` in a single-datacenter cloud) is ``inf``: that relationship
    cannot occur, so it must never be the minimum of a cost chain.
    """
    from repro.core.kernel import CloudArrays

    if HAVE_NUMPY:
        steps = CloudArrays.for_cloud(cloud).steps_at_dist
        g = [0.0]
        for dist in range(1, 5):
            col = steps[:, dist]
            realizable = col[col > 0]  # 0 is the unrealizable sentinel
            g.append(
                float(2 * realizable.min()) if realizable.size else math.inf
            )
        return g
    g = [0.0]
    for dist in range(1, 5):
        best = math.inf
        for chain in cloud._chains:
            steps_d = Cloud._steps_for_distance(chain, dist)
            if steps_d is not None:
                best = min(best, steps_d)
        g.append(best if math.isinf(best) else 2.0 * best)
    return g


def _link_level_costs(
    g: List[float],
    forced: int,
    num_dcs: int,
    num_pods: int,
    num_racks: int = 2,
) -> Tuple[float, float, float, float]:
    """Monotone per-relationship hop minima ``(far, dc, pod, rack)``.

    ``far`` is the cost when the endpoints share nothing (different
    datacenters), ``dc``/``pod``/``rack`` the minima when their closest
    shared unit is the datacenter / pod / rack -- *excluding* full
    co-location on one host, which is modeled separately (it is gated by
    host capacity). Relationships the forced separation distance rules
    out inherit the next-outer minimum, and a running ``min`` keeps the
    sequence monotone, so the linearized objective can only credit a
    relationship with a certified minimum.
    """
    far = g[4]
    dc = min(g[3], far) if forced <= 3 else far
    pod = min(g[2], dc) if forced <= 2 else dc
    rack = min(g[1], pod) if forced <= 1 else pod
    if num_dcs <= 1:
        far = dc
    if num_pods <= 1:
        far = dc = pod
    if num_racks <= 1:
        far = dc = pod = rack
    return far, dc, pod, rack


def _node_demands(
    topology: "ApplicationTopology", state: "DataCenterState"
) -> Dict[str, Tuple[float, float, float]]:
    """Per-node (cpu, mem, disk) demand vectors."""
    demands: Dict[str, Tuple[float, float, float]] = {}
    for name, node in topology.nodes.items():
        if node.is_vm:
            demands[name] = (state.reserved_vcpus(node), node.mem_gb, 0.0)
        else:
            demands[name] = (0.0, 0.0, node.size_gb)
    return demands


def _host_maxima(
    cloud: Cloud, state: "DataCenterState"
) -> Tuple[float, float, float]:
    """Largest per-host free (cpu, mem, total disk) across the cloud."""
    best = [0.0, 0.0, 0.0]
    for host in cloud.hosts:
        h = host.index
        best[0] = max(best[0], state.free_cpu[h])
        best[1] = max(best[1], state.free_mem[h])
        best[2] = max(
            best[2], sum(state.free_disk[d.index] for d in host.disks)
        )
    return best[0], best[1], best[2]


def _pair_can_colocate(
    dem_a: Tuple[float, float, float],
    dem_b: Tuple[float, float, float],
    host_max: Tuple[float, float, float],
) -> bool:
    """Loose host-capacity screen: can any host hold both endpoints?

    Compares the pair's summed demand against the cloud-wide per-host
    maxima resource by resource -- if even that fails, no host can
    co-locate the pair (the real packing is only harder).
    """
    return all(
        dem_a[i] + dem_b[i] <= host_max[i] + 1e-9 for i in range(3)
    )


def _link_components(
    topology: "ApplicationTopology",
) -> List[List[int]]:
    """Connected components over positive-bandwidth links.

    Returns, per component with at least one link, the indices into the
    positive-link list (the order :func:`_positive_links` yields).
    """
    parent: Dict[str, str] = {}

    def find(x: str) -> str:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    plinks = _positive_links(topology)
    for a, b, _bw in plinks:
        parent.setdefault(a, a)
        parent.setdefault(b, b)
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb
    groups: Dict[str, List[int]] = {}
    for li, (a, _b, _bw) in enumerate(plinks):
        groups.setdefault(find(a), []).append(li)
    return list(groups.values())


def _positive_links(
    topology: "ApplicationTopology",
) -> List[Tuple[str, str, float]]:
    """The positive-bandwidth links as (a, b, bw) tuples, in order."""
    return [
        (lk.a, lk.b, lk.bw_mbps)
        for lk in topology.links
        if lk.bw_mbps > 0
    ]


def _component_min_hosts(
    member_names: List[str],
    demands: Dict[str, Tuple[float, float, float]],
    host_max: Tuple[float, float, float],
) -> float:
    """Capacity floor on how many hosts a node set must occupy.

    ``k`` hosts supply at most ``k`` times the largest single host's
    free capacity, per resource; returns ``inf`` when some demanded
    resource has no capacity anywhere (infeasible).
    """
    k = 1.0
    for res in range(3):
        total = sum(demands[m][res] for m in member_names)
        if total <= 0:
            continue
        if host_max[res] <= 0:
            return math.inf
        k = max(k, math.ceil(total / host_max[res] - 1e-9))
    return k


def _closed_form(
    topology: "ApplicationTopology",
    cloud: Cloud,
    state: "DataCenterState",
    objective: "Objective",
) -> Tuple[float, float, float]:
    """(score, bw_mbps, new_hosts) floor without any solver.

    Bandwidth: each link needs at least its bandwidth times the minimum
    hop count any feasible endpoint pair can realize. Activation: ``k``
    new hosts supply at most ``k`` times the largest idle host's free
    capacity, so ``k`` is at least the demand overshoot beyond the
    already-active hosts' free capacity, per resource.
    """
    g = _min_hops_at_distance(cloud)
    num_dcs = len({c[2] for c in cloud._ancestors})
    num_pods = len({c[1] for c in cloud._ancestors})
    num_racks = len({c[0] for c in cloud._ancestors})
    demands = _node_demands(topology, state)
    host_max = _host_maxima(cloud, state)
    for dem in demands.values():
        if any(dem[i] > host_max[i] + 1e-9 for i in range(3)):
            # no single host can hold this node: truly infeasible
            return math.inf, math.inf, 0.0
    plinks = _positive_links(topology)
    crossing_cost: List[float] = []  # certified min cost if not colocated
    colocatable: List[bool] = []
    bw_lb = 0.0
    for a, b, bw in plinks:
        forced = _forced_distance(topology, a, b)
        _, _, _, rack = _link_level_costs(
            g, forced, num_dcs, num_pods, num_racks
        )
        crossing_cost.append(bw * rack)
        can = forced == 0 and _pair_can_colocate(
            demands[a], demands[b], host_max
        )
        colocatable.append(can)
        if not can:
            if not math.isfinite(rack):
                # the innermost allowed relationship is unrealizable
                return math.inf, math.inf, 0.0
            bw_lb += bw * rack
    # connectivity cut: a component that must span k hosts (by capacity)
    # has at least k-1 links crossing hosts; charge the cheapest ones
    # beyond those already known to cross.
    for comp in _link_components(topology):
        members = sorted({e for li in comp for e in plinks[li][:2]})
        k = _component_min_hosts(members, demands, host_max)
        extra = int(k) - 1 - sum(1 for li in comp if not colocatable[li])
        if extra <= 0:
            continue
        colo_costs = sorted(
            crossing_cost[li] for li in comp if colocatable[li]
        )
        bw_lb += sum(colo_costs[:extra])

    demand = {"cpu": 0.0, "mem": 0.0, "disk": 0.0}
    for node in topology.nodes.values():
        if node.is_vm:
            demand["cpu"] += state.reserved_vcpus(node)
            demand["mem"] += node.mem_gb
        else:
            demand["disk"] += node.size_gb
    active_free = {"cpu": 0.0, "mem": 0.0, "disk": 0.0}
    idle_max = {"cpu": 0.0, "mem": 0.0, "disk": 0.0}
    for host in cloud.hosts:
        h = host.index
        disk_free = sum(
            state.free_disk[d.index] for d in host.disks
        )
        if state.host_is_active(h):
            active_free["cpu"] += state.free_cpu[h]
            active_free["mem"] += state.free_mem[h]
            active_free["disk"] += disk_free
        else:
            idle_max["cpu"] = max(idle_max["cpu"], state.free_cpu[h])
            idle_max["mem"] = max(idle_max["mem"], state.free_mem[h])
            idle_max["disk"] = max(idle_max["disk"], disk_free)
    uc_lb = 0.0
    for res in ("cpu", "mem", "disk"):
        overshoot = demand[res] - active_free[res]
        if overshoot <= 0:
            continue
        if idle_max[res] <= 0:
            continue  # infeasible demand; leave to the solver's verdict
        uc_lb = max(uc_lb, math.ceil(overshoot / idle_max[res] - 1e-9))
    score = objective.score(bw_lb, uc_lb)
    return score, bw_lb, uc_lb


def lower_bound(
    topology: "ApplicationTopology",
    cloud: Cloud,
    state: "DataCenterState",
    objective: "Objective",
    time_limit_s: float = 60.0,
) -> OracleBound:
    """Certified lower bound on the optimal fresh-placement objective.

    Args:
        topology: the application to place (no nodes pre-assigned).
        cloud: the target data center.
        state: current availability (determines capacities and which
            hosts are already active).
        objective: the normalized objective the algorithms minimized.
        time_limit_s: HiGHS wall-clock budget; on timeout the solver's
            dual bound (still a certified lower bound) is used.

    Returns:
        An :class:`OracleBound`; ``score`` never exceeds the objective
        value of any feasible placement.
    """
    cf_score, bw_lb, uc_lb = _closed_form(topology, cloud, state, objective)
    if not (HAVE_SCIPY and HAVE_NUMPY):
        return OracleBound(
            score=cf_score,
            bw_mbps=bw_lb,
            new_hosts=uc_lb,
            solver="closed-form",
            status="scipy unavailable" if not HAVE_SCIPY else "no numpy",
        )
    milp_score, solver, status = _milp_bound(
        topology, cloud, state, objective, time_limit_s
    )
    if milp_score is None or milp_score < cf_score:
        # the MILP never beats its own closed-form floor unless the
        # solver failed outright; keep the floor either way
        if milp_score is None:
            solver, status = "closed-form", status
        milp_score = cf_score
    return OracleBound(
        score=milp_score,
        bw_mbps=bw_lb,
        new_hosts=uc_lb,
        solver=solver,
        status=status,
    )


def _milp_bound(
    topology: "ApplicationTopology",
    cloud: Cloud,
    state: "DataCenterState",
    objective: "Objective",
    time_limit_s: float,
) -> Tuple[Optional[float], str, str]:
    """Rack-granular MILP relaxation; returns (score_lb, solver, status)."""
    import numpy as np

    from repro.core.kernel import CloudArrays

    arrays = CloudArrays.for_cloud(cloud)
    rack_of_host = arrays.unit_id_arrays[1]
    pod_of_host = arrays.unit_id_arrays[2]
    dc_of_host = arrays.unit_id_arrays[3]
    racks = sorted({int(r) for r in rack_of_host})
    rack_index = {r: i for i, r in enumerate(racks)}
    num_r = len(racks)
    # rack -> pod / dc (unit ids nest, so any member host decides)
    pod_of_rack = [0] * num_r
    dc_of_rack = [0] * num_r
    hosts_by_rack: List[List[int]] = [[] for _ in range(num_r)]
    for h in range(cloud.num_hosts):
        ri = rack_index[int(rack_of_host[h])]
        hosts_by_rack[ri].append(h)
        pod_of_rack[ri] = int(pod_of_host[h])
        dc_of_rack[ri] = int(dc_of_host[h])
    pods = sorted(set(pod_of_rack))
    num_p = len(pods)
    num_d = len(set(dc_of_rack))

    nodes = list(topology.nodes)
    node_index = {name: n for n, name in enumerate(nodes)}
    num_n = len(nodes)
    links = [
        (node_index[lk.a], node_index[lk.b], lk.bw_mbps,
         _forced_distance(topology, lk.a, lk.b))
        for lk in topology.links
        if lk.bw_mbps > 0
    ]
    num_l = len(links)
    g = _min_hops_at_distance(cloud)
    demands = _node_demands(topology, state)
    host_max = _host_maxima(cloud, state)
    if any(
        any(dem[i] > host_max[i] + 1e-9 for i in range(3))
        for dem in demands.values()
    ):
        return math.inf, "closed-form", "node exceeds every host"
    plinks = _positive_links(topology)
    colocatable = [
        forced == 0
        and _pair_can_colocate(demands[a], demands[b], host_max)
        for (a, b, _bw), (_ai, _bi, _bwi, forced) in zip(plinks, links)
    ]

    # variable layout: x (N*R bin) | both_r (L*R) | both_p (L*P) |
    #                  both_d (L*D) | new_hosts (R) | colo (L)
    use_pod = num_p > 1
    use_dc = num_d > 1
    off_x = 0
    off_br = off_x + num_n * num_r
    off_bp = off_br + num_l * num_r
    off_bd = off_bp + (num_l * num_p if use_pod else 0)
    off_nh = off_bd + (num_l * num_d if use_dc else 0)
    off_co = off_nh + num_r
    num_vars = off_co + num_l

    theta_bw = objective.theta_bw / objective.ubw_hat if (
        objective.ubw_hat > 0
    ) else 0.0
    theta_c = objective.theta_c / objective.uc_hat if (
        objective.uc_hat > 0
    ) else 0.0

    cost = np.zeros(num_vars)
    constant = 0.0
    for li, (_a, _b, bw, forced) in enumerate(links):
        far, dc, pod, rack = _link_level_costs(
            g, forced, num_d, num_p, num_r
        )
        if not math.isfinite(far):
            # all folds collapsed onto an unrealizable relationship
            if colocatable[li]:
                return None, "milp", "degenerate cloud; closed form only"
            return math.inf, "milp", "forced separation unrealizable"
        constant += theta_bw * bw * far
        cost[off_br + li * num_r : off_br + (li + 1) * num_r] = (
            theta_bw * bw * (rack - pod)
        )
        if use_pod:
            cost[off_bp + li * num_p : off_bp + (li + 1) * num_p] = (
                theta_bw * bw * (pod - dc)
            )
        if use_dc:
            cost[off_bd + li * num_d : off_bd + (li + 1) * num_d] = (
                theta_bw * bw * (dc - far)
            )
        if colocatable[li]:
            # full co-location discounts the same-rack floor to zero
            cost[off_co + li] = -theta_bw * bw * rack
    cost[off_nh:off_co] = theta_c

    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    con_lb: List[float] = []
    con_ub: List[float] = []
    row = 0

    def add_entry(r: int, c: int, v: float) -> None:
        rows.append(r)
        cols.append(c)
        vals.append(v)

    # each node in exactly one rack
    for n in range(num_n):
        for r in range(num_r):
            add_entry(row, off_x + n * num_r + r, 1.0)
        con_lb.append(1.0)
        con_ub.append(1.0)
        row += 1

    # per-rack capacities, activation bounds, and demands
    node_objs = [topology.nodes[name] for name in nodes]
    cpu_dem = [
        state.reserved_vcpus(nd) if nd.is_vm else 0.0 for nd in node_objs
    ]
    mem_dem = [nd.mem_gb if nd.is_vm else 0.0 for nd in node_objs]
    disk_dem = [0.0 if nd.is_vm else nd.size_gb for nd in node_objs]
    for r in range(num_r):
        cap = {"cpu": 0.0, "mem": 0.0, "disk": 0.0}
        active_free = {"cpu": 0.0, "mem": 0.0, "disk": 0.0}
        idle_max = {"cpu": 0.0, "mem": 0.0, "disk": 0.0}
        idle_hosts = 0
        for h in hosts_by_rack[r]:
            disk_free = sum(state.free_disk[d.index]
                            for d in cloud.hosts[h].disks)
            cap["cpu"] += state.free_cpu[h]
            cap["mem"] += state.free_mem[h]
            cap["disk"] += disk_free
            if state.host_is_active(h):
                active_free["cpu"] += state.free_cpu[h]
                active_free["mem"] += state.free_mem[h]
                active_free["disk"] += disk_free
            else:
                idle_hosts += 1
                idle_max["cpu"] = max(idle_max["cpu"], state.free_cpu[h])
                idle_max["mem"] = max(idle_max["mem"], state.free_mem[h])
                idle_max["disk"] = max(idle_max["disk"], disk_free)
        for res, dem in (
            ("cpu", cpu_dem), ("mem", mem_dem), ("disk", disk_dem)
        ):
            # total demand routed to this rack fits its aggregate free
            for n in range(num_n):
                if dem[n]:
                    add_entry(row, off_x + n * num_r + r, dem[n])
            con_lb.append(-math.inf)
            con_ub.append(cap[res])
            row += 1
            # k new hosts supply at most k * largest idle host
            for n in range(num_n):
                if dem[n]:
                    add_entry(row, off_x + n * num_r + r, dem[n])
            add_entry(row, off_nh + r, -idle_max[res])
            con_lb.append(-math.inf)
            con_ub.append(active_free[res])
            row += 1
        # upper-bound new hosts by the rack's idle host count (bounds
        # vector below needs a per-variable cap; do it here as a row)
        add_entry(row, off_nh + r, 1.0)
        con_lb.append(-math.inf)
        con_ub.append(float(idle_hosts))
        row += 1

    # both_u <= x[endpoint, u] for each level's units
    rack_to_pod_index = [pods.index(p) for p in pod_of_rack]
    dcs = sorted(set(dc_of_rack))
    rack_to_dc_index = [dcs.index(d) for d in dc_of_rack]
    for li, (a, b, _bw, _forced) in enumerate(links):
        for r in range(num_r):
            for endpoint in (a, b):
                add_entry(row, off_br + li * num_r + r, 1.0)
                add_entry(row, off_x + endpoint * num_r + r, -1.0)
                con_lb.append(-math.inf)
                con_ub.append(0.0)
                row += 1
        if use_pod:
            for pi in range(num_p):
                member_racks = [
                    r for r in range(num_r) if rack_to_pod_index[r] == pi
                ]
                for endpoint in (a, b):
                    add_entry(row, off_bp + li * num_p + pi, 1.0)
                    for r in member_racks:
                        add_entry(row, off_x + endpoint * num_r + r, -1.0)
                    con_lb.append(-math.inf)
                    con_ub.append(0.0)
                    row += 1
        if use_dc:
            for di in range(num_d):
                member_racks = [
                    r for r in range(num_r) if rack_to_dc_index[r] == di
                ]
                for endpoint in (a, b):
                    add_entry(row, off_bd + li * num_d + di, 1.0)
                    for r in member_racks:
                        add_entry(row, off_x + endpoint * num_r + r, -1.0)
                    con_lb.append(-math.inf)
                    con_ub.append(0.0)
                    row += 1

    # co-location implies same rack: co_l <= sum_r both_r[l, r]
    for li in range(num_l):
        if not colocatable[li]:
            continue
        add_entry(row, off_co + li, 1.0)
        for r in range(num_r):
            add_entry(row, off_br + li * num_r + r, -1.0)
        con_lb.append(-math.inf)
        con_ub.append(0.0)
        row += 1

    # connectivity cut: a component whose demand forces k hosts (by the
    # largest-host capacity argument) keeps at least k-1 of its links
    # un-colocated in any real placement, because the quotient graph
    # over occupied hosts is connected
    for comp in _link_components(topology):
        members = sorted({e for li in comp for e in plinks[li][:2]})
        k = _component_min_hosts(members, demands, host_max)
        cap = float(len(comp)) - (k - 1.0)
        if cap >= len(comp):
            continue
        for li in comp:
            add_entry(row, off_co + li, 1.0)
        con_lb.append(-math.inf)
        con_ub.append(cap)
        row += 1

    # diversity zones: at most one member per unit at the zone's level
    # (level 0 caps members per rack at the rack's host count)
    for zone in topology.zones:
        members = [node_index[m] for m in zone.members if m in node_index]
        if len(members) < 2:
            continue
        level = int(zone.level)
        if level == 0:
            for r in range(num_r):
                for n in members:
                    add_entry(row, off_x + n * num_r + r, 1.0)
                con_lb.append(-math.inf)
                con_ub.append(float(len(hosts_by_rack[r])))
                row += 1
        elif level == 1:
            for r in range(num_r):
                for n in members:
                    add_entry(row, off_x + n * num_r + r, 1.0)
                con_lb.append(-math.inf)
                con_ub.append(1.0)
                row += 1
        elif level == 2 and use_pod:
            for pi in range(num_p):
                for n in members:
                    for r in range(num_r):
                        if rack_to_pod_index[r] == pi:
                            add_entry(row, off_x + n * num_r + r, 1.0)
                con_lb.append(-math.inf)
                con_ub.append(1.0)
                row += 1
        elif level >= 3 and use_dc:
            for di in range(num_d):
                for n in members:
                    for r in range(num_r):
                        if rack_to_dc_index[r] == di:
                            add_entry(row, off_x + n * num_r + r, 1.0)
                con_lb.append(-math.inf)
                con_ub.append(1.0)
                row += 1

    matrix = csr_array(
        (vals, (rows, cols)), shape=(row, num_vars)
    )
    integrality = np.zeros(num_vars)
    integrality[: num_n * num_r] = 1
    lower = np.zeros(num_vars)
    upper = np.ones(num_vars)
    # new-host counts capped by the per-rack idle-count rows
    upper[off_nh:off_co] = np.inf
    for li in range(num_l):
        if not colocatable[li]:
            upper[off_co + li] = 0.0
    result = milp(
        c=cost,
        constraints=LinearConstraint(
            matrix, np.array(con_lb), np.array(con_ub)
        ),
        integrality=integrality,
        bounds=Bounds(lower, upper),
        options={"time_limit": time_limit_s, "disp": False},
    )
    status = f"{result.status}: {result.message}"
    if result.status == 0 and result.fun is not None:
        return constant + float(result.fun), "milp", status
    dual = getattr(result, "mip_dual_bound", None)
    if dual is not None and math.isfinite(dual):
        return constant + float(dual), "milp-dual", status
    if result.status == 2:
        # relaxation infeasible => the true problem is infeasible
        return math.inf, "milp", status
    return None, "milp", status


def gap_payload(
    bound: OracleBound,
) -> Dict[str, Any]:
    """JSON-ready description of an oracle bound for bench payloads."""
    return {
        "score_lower_bound": bound.score,
        "reserved_bw_mbps_lower_bound": bound.bw_mbps,
        "new_active_hosts_lower_bound": bound.new_hosts,
        "solver": bound.solver,
        "status": bound.status,
    }
