"""Deadline-bounded A* (``DBA*``, Section III-C).

DBA* extends BA* with *progress-biased probabilistic pruning* so that a
near-optimal placement is produced within a caller-supplied time budget
``T``:

* When a path is popped for expansion it is pruned with probability
  ``P(x > s)`` where ``x`` is uniform on ``[0, r)`` and ``s`` is the path's
  progress ``|V*_p| / |V|``. Deep paths (s near 1) almost never get pruned,
  biasing the search depth-first; shallow duplicated prefixes get culled.
* The range bound ``r`` starts at 0 (no pruning) and is raised over time.
  Whenever half of the previously estimated remaining time has elapsed,
  DBA* estimates the number of paths it can still afford
  (``|P| = T_left / avg-delay-per-path``) and the number it is on track to
  explore (``|P_left|``, propagated over the open-queue depth histogram
  with the paper's recurrence). If the search cannot finish in time, ``r``
  is increased by ``alpha = 0.2 * (T / T_left)``.
* When the wall clock passes ``T`` the incumbent (the best EG-completed
  placement so far) is returned immediately.

All randomness flows through an explicit seed, so runs are reproducible.
"""

from __future__ import annotations

import random
import time
from collections import Counter
from typing import Optional, Sequence

from repro import obs
from repro.core.astar import BAStar
from repro.core.greedy import GreedyConfig
from repro.errors import DeadlineError


class DBAStar(BAStar):
    """Deadline-bounded A* placement (Section III-C of the paper).

    Args:
        deadline_s: time budget ``T`` in seconds (must be positive).
        greedy_config: shared EG/candidate configuration (see
            :class:`repro.core.greedy.GreedyConfig`).
        symmetry_reduction: collapse interchangeable nodes (III-B3).
        alpha_factor: the 0.2 multiplier in the paper's
            ``alpha = 0.2 * (T / T_left)`` adjustment.
        seed: seed for the pruning randomness.
        max_expansions: optional extra safety cap on expanded paths.
    """

    name = "dba*"
    ordering = "informative"
    terminate_on_bound = False
    eg_rerun_policy = "on-advance"
    eg_rerun_every_pops = 25

    def __init__(
        self,
        deadline_s: float = 1.0,
        greedy_config: Optional[GreedyConfig] = None,
        symmetry_reduction: bool = True,
        alpha_factor: float = 0.2,
        seed: int = 0,
        max_expansions: Optional[int] = None,
    ):
        super().__init__(
            greedy_config=greedy_config,
            symmetry_reduction=symmetry_reduction,
            max_expansions=max_expansions,
        )
        if deadline_s <= 0:
            raise DeadlineError(f"deadline must be positive, got {deadline_s}")
        self.deadline_s = deadline_s
        self.alpha_factor = alpha_factor
        self.seed = seed
        # search-time mutable controller state
        self._rng = random.Random(seed)
        self._r = 0.0
        self._t_start = 0.0
        self._next_check = 0.0
        self._t_left_estimate = deadline_s
        self._pops = 0
        self._avg_branching = 1.0

    # ------------------------------------------------------------------
    # BA* hooks
    # ------------------------------------------------------------------

    def _before_search(self, order: Sequence[str]) -> None:
        self._rng = random.Random(self.seed)
        self._r = 0.0
        self._t_start = time.perf_counter()
        self._t_left_estimate = self.deadline_s
        self._next_check = self._t_start + self.deadline_s / 2.0
        self._pops = 0
        self._avg_branching = 1.0

    def _out_of_time(self) -> bool:
        return time.perf_counter() - self._t_start >= self.deadline_s

    def _allow_bound_rerun(self, last_duration_s: float) -> bool:
        """Refuse EG re-runs that would blow through the deadline.

        An EG completion from a shallow prefix costs roughly as much as
        the previous one did; starting one with less than that much time
        left only produces overshoot, not better bounds.
        """
        remaining = self.deadline_s - (time.perf_counter() - self._t_start)
        return remaining > last_duration_s

    def _should_prune_pop(self, depth: int, total: int) -> bool:
        """Prune with probability P(x > s), x ~ U[0, r), s = depth/total."""
        self._pops += 1
        if self._r <= 0.0 or total == 0:
            return False
        progress = depth / total
        if progress >= self._r:
            return False
        x = self._rng.uniform(0.0, self._r)
        return x > progress

    def _after_expansion(self, open_depths: Counter, branching: float) -> None:
        # Exponential moving average of the branching factor |P|-bar.
        self._avg_branching = 0.9 * self._avg_branching + 0.1 * branching
        now = time.perf_counter()
        if now < self._next_check:
            return
        self._recalibrate(now, open_depths)

    # ------------------------------------------------------------------
    # pruning-rate controller
    # ------------------------------------------------------------------

    def _recalibrate(self, now: float, open_depths: Counter) -> None:
        """Raise the pruning range ``r`` if the search cannot finish by T."""
        elapsed = now - self._t_start
        t_left = max(self.deadline_s - elapsed, 1e-6)
        avg_delay = elapsed / max(self._pops, 1)
        affordable = t_left / max(avg_delay, 1e-9)
        on_track = self._estimate_paths_left(open_depths)
        if on_track > affordable:
            alpha = self.alpha_factor * (self.deadline_s / t_left)
            self._r = min(self._r + alpha, 1.0)
        self._t_left_estimate = t_left
        self._next_check = now + t_left / 2.0
        rec = obs.get_recorder()
        if rec.enabled:
            rec.set_gauge("ostro_deadline_remaining_seconds", t_left)
            rec.set_gauge("ostro_pruning_range", self._r)
            rec.event(
                "deadline_tick",
                elapsed_s=elapsed,
                remaining_s=t_left,
                pruning_range=self._r,
                pops=self._pops,
                paths_on_track=on_track,
                paths_affordable=affordable,
            )

    def _estimate_paths_left(self, open_depths: Counter) -> float:
        """The paper's |P_left| recurrence over the open-queue histogram.

        Each open path of depth ``i`` survives its pop with probability
        ``1 - p_i`` and then spawns roughly ``|P|-bar`` children of depth
        ``i + 1``, which are themselves pruned at rate ``p_(i+1)`` before
        insertion; the estimate accumulates surviving pops over all depths.
        """
        if not open_depths:
            return 0.0
        depths = [d for d, count in open_depths.items() if count > 0]
        if not depths:
            return 0.0
        total_depth = max(depths) + 1
        horizon = max(total_depth, 1)
        level = [0.0] * (horizon + 2)
        for d, count in open_depths.items():
            if count > 0:
                level[d] += count

        def survive(depth: int) -> float:
            if self._r <= 0.0:
                return 1.0
            s = depth / horizon
            if s >= self._r:
                return 1.0
            return 1.0 - (self._r - s) / self._r

        paths_left = 0.0
        for i in range(horizon + 1):
            if level[i] <= 0:
                continue
            live = level[i] * survive(i)
            paths_left += live
            # Children sit at depth i+1 and are culled at *that* depth's
            # rate before insertion; survive(i) is already folded into
            # `live`, so applying it again here would double-count the
            # depth-i pruning and systematically under-estimate |P_left|.
            level[i + 1] += live * survive(i + 1) * self._avg_branching
        return paths_left
