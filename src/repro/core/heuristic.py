"""Estimate-based lower bound (``GetHeuristic`` of Algorithm 1).

Given a partial placement, the estimator *approximately* places every
remaining node to bound, from below, the bandwidth the rest of the
placement must reserve. Following Section III-A2:

1. Remaining nodes are visited in decreasing order of their total link
   bandwidth.
2. Each node is tentatively assigned to an already-used real host or to an
   **imaginary host** ``h-hat``. A fresh imaginary host is created when
   (a) no existing target has capacity, (b) diversity zones rule out every
   existing target, (c) the node has no link to any placed node, or
   (d) the node is more strongly linked to still-remaining nodes than to
   placed ones. Otherwise the node joins the target with which it shares
   the most link bandwidth ("co-located with nodes that are linked with
   more bandwidth").
3. Imaginary hosts have the maximum capacity of any real host and are not
   counted toward ``u_c``; their location is optimistic, so distances
   involving them are the *minimum* allowed by the diversity zones the two
   endpoints share.

The returned bandwidth estimate covers every topology link not yet fully
reserved by the partial placement; paired with the accumulated usage it
forms the ``u* + u-bar`` value that EG minimizes and BA* uses as an
admissible node evaluation.

For scalability the estimator can be truncated to the ``max_nodes`` most
bandwidth-hungry remaining nodes: unestimated links then contribute zero,
which keeps the bound admissible (it can only get looser). The exhaustive
behavior of the paper is ``max_nodes=None``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.core.placement import PartialPlacement
from repro.core.topology import ApplicationTopology, Node
from repro.datacenter.model import Cloud
from repro.datacenter.network import PathResolver
from repro.errors import DataCenterError


@dataclass(frozen=True)
class EstimatorConfig:
    """Tuning knobs for the lower-bound estimator.

    Attributes:
        max_nodes: cap on how many remaining nodes are approximately
            placed (None = all, the paper's behavior). Truncation keeps the
            bound admissible; it only loosens it.
        optimistic_colocation: how to charge links whose endpoints the
            estimator put on *imaginary* hosts. False (default, the
            paper's literal ``max{dz, h != h'}`` formula) charges every
            split pair at least a host separation: informative, which is
            what makes EG's candidate choices good, but only
            quasi-admissible. True charges only the separation forced by
            shared diversity zones -- a genuine lower bound, used by
            BA*/DBA* for search ordering and bounding so they can explore
            below EG's value and beat it.
    """

    max_nodes: Optional[int] = None
    optimistic_colocation: bool = False

    def admissible(self) -> "EstimatorConfig":
        """The relaxed (provably admissible) variant of this config."""
        return EstimatorConfig(max_nodes=self.max_nodes,
                               optimistic_colocation=True)


@dataclass
class _ImaginaryHost:
    """An optimistically located host invented by the estimator."""

    free_vcpus: float
    free_mem_gb: float
    free_disk_gb: float
    free_nic_mbps: float
    nodes: List[str]


@dataclass
class _RealHostLedger:
    """Scratch free-capacity ledger for one in-use real host.

    Disks are tracked individually (``disk_free`` parallels
    ``cloud.hosts[h].disks``): collapsing them into one scalar wrongly
    rejects two volumes that fit on *different* disks of the host.
    """

    free_vcpus: float
    free_mem_gb: float
    disk_free: List[float]
    free_nic_mbps: float


class LowerBoundEstimator:
    """Reusable estimator bound to one topology/cloud pair.

    Args:
        cloud: the physical structure (for distances and hop minima).
        config: truncation knobs.
        resolver: shared memoizing path/hop-count resolver. Defaults to
            the cloud's shared instance; pass the search's resolver so the
            estimator, candidate generation, and placement bookkeeping all
            reuse one hop-count cache.
    """

    def __init__(
        self,
        cloud: Cloud,
        config: Optional[EstimatorConfig] = None,
        resolver: Optional[PathResolver] = None,
    ) -> None:
        self.cloud = cloud
        self.config = config or EstimatorConfig()
        self.resolver = resolver or PathResolver.for_cloud(cloud)
        self._imaginary_cpu = max(h.cpu_cores for h in cloud.hosts)
        self._imaginary_mem = max(h.mem_gb for h in cloud.hosts)
        self._imaginary_disk = max(
            (d.capacity_gb for d in cloud.disks), default=0.0
        )
        self._imaginary_nic = max(h.nic_bw_mbps for h in cloud.hosts)
        # refreshed from the state on every estimate() call
        self._cpu_factor = 1.0
        # NIC-bandwidth capacity tracking gives the informative estimator
        # the foresight to penalize candidates that strand future
        # neighbors behind drained NICs (the paper's capacity constraints
        # include bandwidth). The admissible variant stays optimistic.
        self._track_nic = not self.config.optimistic_colocation
        # hop minima per separation distance, precomputed once
        self._min_hops: List[float] = [0.0] * 5
        for dist in range(1, 5):
            try:
                self._min_hops[dist] = float(
                    cloud.min_hops_for_distance(dist)
                )
            except DataCenterError:
                # Distance not realizable in this cloud (e.g. single DC):
                # a pair *forced* that far apart is genuinely infeasible.
                # The admissible variant must say so -- an infinite hop
                # count propagates to an infinite bound, so BA*/DBA* treat
                # such states as the dead ends they are. The informative
                # variant keeps a large-but-finite pessimistic value so
                # EG's candidate ranking stays comparable.
                if self.config.optimistic_colocation:
                    self._min_hops[dist] = float("inf")
                else:
                    self._min_hops[dist] = float(2 * 4)

    # ------------------------------------------------------------------

    def estimate(
        self,
        partial: PartialPlacement,
        remaining: Sequence[str],
    ) -> Tuple[float, int]:
        """Lower-bound (bandwidth, new-host) usage of placing ``remaining``.

        Args:
            partial: current partial placement (already includes every
                node considered placed, e.g. the candidate being scored).
            remaining: names of nodes not yet placed.

        Returns:
            ``(ubw_bar, uc_bar)`` -- estimated additional reserved
            bandwidth in Mbps x links, and estimated additional newly
            activated hosts (always 0, per the paper: imaginary hosts are
            not counted).
        """
        topology = partial.topology
        if not remaining:
            return 0.0, 0

        order = sorted(
            remaining, key=topology.bandwidth_of, reverse=True
        )
        head: Optional[Set[str]] = None
        if self.config.max_nodes is not None:
            if self._track_nic:
                # The informative (NIC-tracking) estimator must
                # approximately place *every* remaining node, or it cannot
                # see a low-bandwidth node at the tail getting stranded
                # behind a drained NIC; its bandwidth sum is still limited
                # to the head (links whose estimated endpoint falls beyond
                # the truncation horizon contribute zero, exactly as they
                # do when the admissible variant drops those nodes).
                head = set(order[: self.config.max_nodes])
            else:
                # Truncation only loosens the admissible bound.
                order = order[: self.config.max_nodes]

        # Local free-capacity ledger for the real hosts in use.
        state = partial.state
        self._cpu_factor = state.best_effort_cpu_factor
        real_free: Dict[int, _RealHostLedger] = {}
        # Sorted host order canonicalizes the ledger's iteration order so
        # the vectorized kernel's column layout (and therefore its
        # first-feasible / first-max tie-breaks) matches bit-for-bit.
        for host in sorted(partial.placed_hosts()):
            real_free[host] = _RealHostLedger(
                free_vcpus=state.free_cpu[host],
                free_mem_gb=state.free_mem[host],
                disk_free=[
                    state.free_disk[d.index]
                    for d in self.cloud.hosts[host].disks
                ],
                free_nic_mbps=state.free_bw[
                    self.cloud.hosts[host].link_index
                ],
            )
        imaginary: List[_ImaginaryHost] = []
        # node -> ('real', host_index) or ('imag', list_index)
        location: Dict[str, Tuple[str, int]] = {}

        for name in order:
            placed = self._approx_place(
                partial, name, real_free, imaginary, location
            )
            if not placed:
                # Even a fresh imaginary host cannot carry this node's
                # flows: the partial placement has stranded it behind
                # drained NICs. Signal an (effectively) infeasible future.
                return float("inf"), 0

        ubw_bar = self._estimate_bandwidth(partial, location, head)
        return ubw_bar, 0

    # ------------------------------------------------------------------

    def _approx_place(
        self,
        partial: PartialPlacement,
        name: str,
        real_free: Dict[int, _RealHostLedger],
        imaginary: List[_ImaginaryHost],
        location: Dict[str, Tuple[str, int]],
    ) -> bool:
        """Approximately place one node; False signals a stranded node."""
        topology = partial.topology
        node = topology.node(name)

        # Link bandwidth of `name` toward already-located nodes, per target.
        bw_to_target: Dict[Tuple[str, int], float] = {}
        bw_to_placed = 0.0
        bw_to_remaining = 0.0
        for neighbor, bw in topology.neighbors(name):
            assigned = partial.assignments.get(neighbor)
            if assigned is not None:
                bw_to_placed += bw
                key = ("real", assigned.host)
                bw_to_target[key] = bw_to_target.get(key, 0.0) + bw
            elif neighbor in location:
                bw_to_placed += bw
                key = location[neighbor]
                bw_to_target[key] = bw_to_target.get(key, 0.0) + bw
            else:
                bw_to_remaining += bw

        force_new = bw_to_placed == 0.0 or bw_to_remaining > bw_to_placed

        def feasible(key: Tuple[str, int]) -> bool:
            return (
                self._fits(node, key, real_free, imaginary)
                and self._diversity_ok(partial, name, key, location)
                and (
                    not self._track_nic
                    or self._nic_ok(key, bw_to_target, real_free, imaginary)
                )
            )

        def best_existing() -> Optional[Tuple[str, int]]:
            # Single pass, equivalent to an argmax over all feasible
            # targets with first-in-iteration-order tie-breaking, but
            # checking feasibility only where it can matter: a linked
            # target that does not beat the best linked bandwidth so far
            # cannot win regardless of feasibility, and among unlinked
            # targets (all tied at 0) only the first feasible one can win
            # -- and none can once any feasible linked target exists.
            best: Optional[Tuple[str, int]] = None
            best_bw = 0.0
            first_unlinked: Optional[Tuple[str, int]] = None
            for key in self._targets(real_free, imaginary):
                linked = bw_to_target.get(key, 0.0)
                if linked > 0.0:
                    if linked > best_bw and feasible(key):
                        best_bw = linked
                        best = key
                elif best is None and first_unlinked is None and feasible(key):
                    first_unlinked = key
            return best if best is not None else first_unlinked

        best_key: Optional[Tuple[str, int]] = None
        if not force_new:
            best_key = best_existing()

        if best_key is None:
            fresh = ("imag", len(imaginary))
            imaginary.append(
                _ImaginaryHost(
                    free_vcpus=self._imaginary_cpu,
                    free_mem_gb=self._imaginary_mem,
                    free_disk_gb=self._imaginary_disk,
                    free_nic_mbps=self._imaginary_nic,
                    nodes=[],
                )
            )
            if not self._track_nic or self._nic_ok(
                fresh, bw_to_target, real_free, imaginary
            ):
                best_key = fresh
            else:
                # A fresh host cannot carry the flows (the bottleneck is at
                # the neighbors' NICs); joining a neighbor may still work.
                imaginary.pop()
                best_key = best_existing()
                if best_key is None:
                    return False

        self._consume(node, best_key, real_free, imaginary)
        if self._track_nic:
            self._consume_nic(best_key, bw_to_target, real_free, imaginary)
        if best_key[0] == "imag":
            imaginary[best_key[1]].nodes.append(name)
        location[name] = best_key
        return True

    @staticmethod
    def _targets(
        real_free: Dict[int, _RealHostLedger],
        imaginary: List[_ImaginaryHost],
    ) -> Iterator[Tuple[str, int]]:
        for host in real_free:
            yield ("real", host)
        for i in range(len(imaginary)):
            yield ("imag", i)

    def _fits(
        self,
        node: Node,
        key: Tuple[str, int],
        real_free: Dict[int, _RealHostLedger],
        imaginary: List[_ImaginaryHost],
    ) -> bool:
        vcpus = (
            node.effective_vcpus(self._cpu_factor) if node.is_vm else 0.0
        )
        if key[0] == "real":
            ledger = real_free[key[1]]
            if node.is_vm:
                return (
                    vcpus <= ledger.free_vcpus
                    and node.mem_gb <= ledger.free_mem_gb
                )
            return any(node.size_gb <= free for free in ledger.disk_free)
        imag = imaginary[key[1]]
        if node.is_vm:
            return vcpus <= imag.free_vcpus and node.mem_gb <= imag.free_mem_gb
        return node.size_gb <= imag.free_disk_gb

    def _consume(
        self,
        node: Node,
        key: Tuple[str, int],
        real_free: Dict[int, _RealHostLedger],
        imaginary: List[_ImaginaryHost],
    ) -> None:
        vcpus = (
            node.effective_vcpus(self._cpu_factor) if node.is_vm else 0.0
        )
        if key[0] == "real":
            ledger = real_free[key[1]]
            if node.is_vm:
                ledger.free_vcpus -= vcpus
                ledger.free_mem_gb -= node.mem_gb
            else:
                # debit the emptiest disk that fits (ties: lowest index),
                # the same worst-fit rule used for real volume placement
                best = -1
                for i, free in enumerate(ledger.disk_free):
                    if node.size_gb <= free and (
                        best < 0 or free > ledger.disk_free[best]
                    ):
                        best = i
                if best >= 0:
                    ledger.disk_free[best] -= node.size_gb
            return
        imag = imaginary[key[1]]
        if node.is_vm:
            imag.free_vcpus -= vcpus
            imag.free_mem_gb -= node.mem_gb
        else:
            imag.free_disk_gb -= node.size_gb

    @staticmethod
    def _nic_free(
        key: Tuple[str, int],
        real_free: Dict[int, _RealHostLedger],
        imaginary: List[_ImaginaryHost],
    ) -> float:
        if key[0] == "real":
            return real_free[key[1]].free_nic_mbps
        return imaginary[key[1]].free_nic_mbps

    def _nic_ok(
        self,
        target: Tuple[str, int],
        bw_to_target: Dict[Tuple[str, int], float],
        real_free: Dict[int, _RealHostLedger],
        imaginary: List[_ImaginaryHost],
    ) -> bool:
        """NIC feasibility of routing the node's flows from ``target``.

        Flows toward neighbors on other hosts must fit both the target's
        NIC and each remote neighbor's host NIC (an approximation of the
        full path check, catching the dominant bottleneck).
        """
        outbound = 0.0
        for key, bw in bw_to_target.items():
            if key == target or bw <= 0:
                continue
            outbound += bw
            if bw > self._nic_free(key, real_free, imaginary) + 1e-9:
                return False
        return outbound <= self._nic_free(target, real_free, imaginary) + 1e-9

    def _consume_nic(
        self,
        target: Tuple[str, int],
        bw_to_target: Dict[Tuple[str, int], float],
        real_free: Dict[int, _RealHostLedger],
        imaginary: List[_ImaginaryHost],
    ) -> None:
        def debit(key: Tuple[str, int], amount: float) -> None:
            if key[0] == "real":
                real_free[key[1]].free_nic_mbps -= amount
            else:
                imaginary[key[1]].free_nic_mbps -= amount

        outbound = 0.0
        for key, bw in bw_to_target.items():
            if key == target or bw <= 0:
                continue
            outbound += bw
            debit(key, bw)
        if outbound > 0:
            debit(target, outbound)

    def _diversity_ok(
        self,
        partial: PartialPlacement,
        name: str,
        key: Tuple[str, int],
        location: Dict[str, Tuple[str, int]],
    ) -> bool:
        """Diversity screen for approximate placement.

        Real-host targets are checked against real placements exactly; any
        zone partner *approximately* located on the same target rules the
        target out (co-location on one host violates every level).
        Different targets are optimistically considered separable.
        """
        cloud = self.cloud
        for zone in partial.topology.zones_of(name):
            for member in zone.members:
                if member == name:
                    continue
                assigned = partial.assignments.get(member)
                if assigned is not None:
                    if key[0] == "real" and not cloud.separated_at(
                        key[1], assigned.host, zone.level
                    ):
                        return False
                    continue
                approx = location.get(member)
                if approx is not None and approx == key:
                    return False
                if (
                    approx is not None
                    and approx[0] == "real"
                    and key[0] == "real"
                    and not cloud.separated_at(key[1], approx[1], zone.level)
                ):
                    return False
        return True

    # ------------------------------------------------------------------

    def _estimate_bandwidth(
        self,
        partial: PartialPlacement,
        location: Dict[str, Tuple[str, int]],
        head: Optional[Set[str]] = None,
    ) -> float:
        """Optimistic reserved bandwidth of all not-yet-reserved links.

        A link is already accounted in the partial's ``u_bw`` exactly when
        both endpoints are really placed; every other link with at least
        one estimated endpoint contributes ``bw x hops`` using real hop
        counts where both locations are real hosts and the diversity-forced
        minimum otherwise. Links to nodes beyond the truncation horizon
        contribute zero (admissible): either the node was never
        approximately placed (``location`` miss) or -- for the NIC-tracking
        estimator, which locates every node -- it falls outside ``head``,
        the ``max_nodes`` most bandwidth-hungry remaining nodes.
        """
        topology = partial.topology
        hop_count = self.resolver.hop_count
        total = 0.0
        for link in topology.links:
            if link.bw_mbps <= 0:
                continue
            a_real = partial.assignments.get(link.a)
            b_real = partial.assignments.get(link.b)
            if a_real is not None and b_real is not None:
                continue  # already reserved in the partial placement
            if a_real is not None:
                loc_a = ("real", a_real.host)
            elif head is None or link.a in head:
                loc_a = location.get(link.a)
            else:
                loc_a = None  # estimated, but beyond the truncation head
            if b_real is not None:
                loc_b = ("real", b_real.host)
            elif head is None or link.b in head:
                loc_b = location.get(link.b)
            else:
                loc_b = None
            if loc_a is None or loc_b is None:
                continue  # beyond the truncation horizon: optimistically 0
            if loc_a == loc_b:
                continue  # co-located: no network hops
            if loc_a[0] == "real" and loc_b[0] == "real":
                total += link.bw_mbps * hop_count(loc_a[1], loc_b[1])
            else:
                dist = self._forced_distance(topology, link.a, link.b)
                if not self.config.optimistic_colocation:
                    dist = max(1, dist)
                if dist > 0:
                    total += link.bw_mbps * self._min_hops[dist]
        return total

    @staticmethod
    def _forced_distance(topology: ApplicationTopology, a: str, b: str) -> int:
        """Minimum separation distance implied by shared diversity zones."""
        forced = 0
        for zone in topology.zones_of(a):
            if b in zone.members:
                forced = max(forced, int(zone.level) + 1)
        return forced
