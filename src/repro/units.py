"""Unit conventions used throughout the library.

The paper mixes Mbps and Gbps for bandwidth and GB for memory/disk. To avoid
unit bugs, the library stores everything in *base units* and exposes helpers
for the common conversions:

* bandwidth: megabits per second (Mbps)
* memory:    gigabytes (GB)
* disk:      gigabytes (GB)
* cpu:       vCPU count (dimensionless)
* time:      seconds
"""

from __future__ import annotations

#: Megabits per second in one gigabit per second.
MBPS_PER_GBPS = 1000.0


def gbps(value: float) -> float:
    """Convert gigabits/second to the library's Mbps base unit."""
    return value * MBPS_PER_GBPS


def mbps_to_gbps(value: float) -> float:
    """Convert the library's Mbps base unit to gigabits/second."""
    return value / MBPS_PER_GBPS


def tb(value: float) -> float:
    """Convert terabytes to the library's GB base unit."""
    return value * 1000.0
