"""Exception hierarchy for the repro package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch one type to handle any library failure. More specific subclasses
distinguish user mistakes (bad topology / template) from scheduling outcomes
(no feasible placement exists).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class TopologyError(ReproError):
    """An application topology is malformed (unknown node, bad requirement,
    duplicate name, inconsistent diversity zone, ...)."""


class TemplateError(ReproError):
    """A QoS-enhanced Heat template could not be parsed or validated."""


class DataCenterError(ReproError):
    """A data-center description is malformed or an unknown element was
    referenced."""


class CapacityError(ReproError):
    """A reservation was attempted that exceeds the available capacity of a
    host, disk, or network link."""


class PlacementError(ReproError):
    """No feasible placement exists for the given topology on the given
    data center (capacity, bandwidth, or diversity constraints cannot all
    be satisfied)."""

    def __init__(self, message: str, node_name: str | None = None):
        super().__init__(message)
        #: Name of the first node for which no candidate host was found,
        #: if the failure is attributable to a single node.
        self.node_name = node_name


class SchedulerError(ReproError):
    """An OpenStack-surrogate scheduler (Nova/Cinder) could not satisfy a
    request."""


class DeadlineError(ReproError):
    """A deadline-bounded search was configured with an unusable deadline."""


class FaultError(ReproError):
    """Base class for injected infrastructure / control-plane faults (see
    :mod:`repro.faults`)."""


class TransientAPIError(FaultError):
    """A surrogate API call (Nova/Cinder/Heat or the scheduler commit path)
    failed transiently. Retryable: wrapping the call in
    :func:`repro.faults.retry_call` is expected to succeed eventually."""


class PermanentAPIError(FaultError):
    """A surrogate API call failed permanently. Never retried; the caller
    must roll back whatever it partially applied."""


class RetryError(FaultError):
    """A retried call exhausted its attempt or time budget.

    The last underlying error is chained as ``__cause__``.

    Attributes:
        attempts: how many attempts were made before giving up.
        backoff_s: total (virtual) backoff delay accumulated across retries.
    """

    def __init__(self, message: str, attempts: int, backoff_s: float):
        super().__init__(message)
        self.attempts = attempts
        self.backoff_s = backoff_s
