"""Graceful degradation: weaker algorithms beat failed requests.

Under failure pressure -- a deadline too tight for DBA*, or search made
infeasible-looking by pruning -- the right production behavior is to
fall back to a cheaper algorithm, not to fail the placement request.
:func:`place_with_degradation` walks the ladder

    dba* -> ba* -> eg

retrying the placement one rung down whenever the current rung raises
:class:`~repro.errors.DeadlineError` or
:class:`~repro.errors.PlacementError`. The last rung's error propagates
(EG failing means the request is genuinely infeasible right now). Each
degradation emits a ``degraded`` telemetry event and increments
``ostro_degradations_total``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional, Tuple

from repro import obs
from repro.errors import DeadlineError, PlacementError

if TYPE_CHECKING:  # pragma: no cover - avoids a circular import at runtime
    from repro.core.base import PlacementResult
    from repro.core.scheduler import Ostro
    from repro.core.topology import ApplicationTopology

#: canonical algorithm name -> next (weaker, cheaper) rung
DEGRADATION_LADDER: Dict[str, str] = {
    "dba*": "ba*",
    "dba": "ba*",
    "ba*": "eg",
    "ba": "eg",
    "astar": "eg",
}


def place_with_degradation(
    ostro: "Ostro",
    topology: "ApplicationTopology",
    algorithm: str = "dba*",
    commit: bool = True,
    pinned: Optional[Dict[str, Tuple[int, Optional[int]]]] = None,
    **options: Any,
) -> Tuple["PlacementResult", str]:
    """Place with automatic DBA* -> BA* -> EG fallback.

    Args:
        ostro: the scheduler facade to place through.
        topology: the application to place.
        algorithm: the rung to start from.
        commit: forwarded to :meth:`~repro.core.scheduler.Ostro.place`;
            a failed rung leaves no reservations behind (commit itself
            is transactional), so falling back is always safe.
        pinned: forwarded node pre-assignments.
        **options: forwarded algorithm options; rungs ignore options
            they do not accept (e.g. ``deadline_s`` on EG).

    Returns:
        (result, used_algorithm): the successful placement and the name
        of the rung that produced it.

    Raises:
        DeadlineError, PlacementError: from the last rung only.
    """
    current = algorithm
    while True:
        try:
            result = ostro.place(
                topology,
                algorithm=current,
                commit=commit,
                pinned=pinned,
                **options,
            )
            return result, current
        except (DeadlineError, PlacementError) as exc:
            fallback = DEGRADATION_LADDER.get(current.strip().lower())
            if fallback is None:
                raise
            rec = obs.get_recorder()
            if rec.enabled:
                rec.inc(
                    "ostro_degradations_total",
                    from_algorithm=current,
                    to_algorithm=fallback,
                )
                rec.event(
                    "degraded",
                    app=topology.name,
                    from_algorithm=current,
                    to_algorithm=fallback,
                    reason=f"{type(exc).__name__}: {exc}",
                )
            current = fallback
