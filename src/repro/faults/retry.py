"""Retry with exponential backoff and deterministic seeded jitter.

:func:`retry_call` is the single retry primitive for every surrogate API
call in the stack (Heat orchestration calls into Nova/Cinder, Ostro's
commit path). Semantics:

* Only :class:`~repro.errors.TransientAPIError` is retried.
  :class:`~repro.errors.PermanentAPIError` -- and every other error --
  propagates unchanged on the first occurrence.
* Backoff is exponential (``base_delay_s * backoff_factor**(attempt-1)``)
  with multiplicative jitter drawn from the policy's own seeded RNG, so
  a fixed policy seed yields the same delay sequence on every run.
* The policy carries a total *time budget*: when the accumulated backoff
  would exceed ``timeout_budget_s``, retrying stops early.
* Exhaustion (attempts or budget) raises
  :class:`~repro.errors.RetryError` chained from the last transient
  error, with the attempt count and total backoff attached.

By default delays are **virtual**: they are accounted and reported but
nobody sleeps, keeping chaos runs fast and free of wall-clock reads (the
determinism rules OST001/OST002 apply -- see docs/STATIC_ANALYSIS.md).
Pass ``sleep=time.sleep`` to a policy to wait for real.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, TypeVar

from repro import obs
from repro.errors import DataCenterError, RetryError, TransientAPIError

T = TypeVar("T")


class RetryPolicy:
    """Deterministic retry/backoff configuration.

    Args:
        max_attempts: total tries including the first (>= 1).
        base_delay_s: backoff before the second attempt.
        backoff_factor: multiplier applied per subsequent attempt.
        jitter: each delay is scaled by ``1 + jitter * u`` with ``u``
            uniform in [-1, 1] from the seeded RNG; 0 disables jitter.
        timeout_budget_s: cap on the *total* backoff delay across all
            retries of one call; exceeding it raises RetryError.
        seed: seeds the jitter RNG.
        sleep: called with each delay in seconds; None (the default)
            makes delays virtual -- accounted but not slept.
    """

    def __init__(
        self,
        max_attempts: int = 4,
        base_delay_s: float = 0.05,
        backoff_factor: float = 2.0,
        jitter: float = 0.5,
        timeout_budget_s: float = 30.0,
        seed: int = 0,
        sleep: Optional[Callable[[float], None]] = None,
    ) -> None:
        if max_attempts < 1:
            raise DataCenterError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        if base_delay_s < 0 or backoff_factor < 1.0:
            raise DataCenterError(
                "base_delay_s must be >= 0 and backoff_factor >= 1"
            )
        if not 0.0 <= jitter <= 1.0:
            raise DataCenterError(f"jitter must be within [0, 1], got {jitter}")
        self.max_attempts = max_attempts
        self.base_delay_s = base_delay_s
        self.backoff_factor = backoff_factor
        self.jitter = jitter
        self.timeout_budget_s = timeout_budget_s
        self.seed = seed
        self.sleep = sleep
        self._rng = random.Random(seed)

    def next_delay_s(self, attempt: int) -> float:
        """Jittered backoff delay after a failed attempt (1-based)."""
        delay = self.base_delay_s * self.backoff_factor ** (attempt - 1)
        if self.jitter:
            delay *= 1.0 + self.jitter * (2.0 * self._rng.random() - 1.0)
        return delay


def retry_call(
    policy: RetryPolicy,
    fn: Callable[[], T],
    service: str = "unknown",
    method: str = "call",
) -> T:
    """Invoke ``fn`` under the policy; see the module docstring.

    Args:
        policy: retry configuration (owns the jitter RNG).
        fn: zero-argument callable performing the API call.
        service: label for telemetry and error messages ("nova", ...).
        method: label for telemetry and error messages.

    Returns:
        ``fn()``'s return value from the first successful attempt.

    Raises:
        RetryError: when the attempt or time budget is exhausted; the
            last :class:`TransientAPIError` is chained as ``__cause__``.
    """
    rec = obs.get_recorder()
    total_backoff_s = 0.0
    attempt = 0
    while True:
        attempt += 1
        try:
            return fn()
        except TransientAPIError as exc:
            exhausted_reason = None
            delay_s = 0.0
            if attempt >= policy.max_attempts:
                exhausted_reason = (
                    f"gave up after {attempt} attempts"
                )
            else:
                delay_s = policy.next_delay_s(attempt)
                if total_backoff_s + delay_s > policy.timeout_budget_s:
                    exhausted_reason = (
                        f"backoff budget {policy.timeout_budget_s}s exhausted "
                        f"after {attempt} attempts"
                    )
            if exhausted_reason is not None:
                if rec.enabled:
                    rec.inc(
                        "ostro_retries_exhausted_total",
                        service=service,
                        method=method,
                    )
                    rec.event(
                        "retries_exhausted",
                        service=service,
                        method=method,
                        attempts=attempt,
                    )
                raise RetryError(
                    f"{service}.{method}: {exhausted_reason}",
                    attempts=attempt,
                    backoff_s=total_backoff_s,
                ) from exc
            total_backoff_s += delay_s
            if rec.enabled:
                rec.inc(
                    "ostro_api_retries_total", service=service, method=method
                )
                rec.inc("ostro_retry_backoff_seconds_total", delay_s)
                rec.event(
                    "retry",
                    service=service,
                    method=method,
                    attempt=attempt,
                    delay_s=delay_s,
                )
            if policy.sleep is not None:
                policy.sleep(delay_s)
