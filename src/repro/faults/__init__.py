"""Deterministic fault injection and recovery for the Ostro stack.

Production placement systems are judged on behavior under failure: hosts
crash, switches fail, and control-plane calls flake. This package makes
those conditions reproducible so the rest of the stack can be hardened
and tested against them:

* :class:`~repro.faults.plan.FaultPlan` -- a seeded description of what
  goes wrong and when: per-call transient/permanent API fault rates plus
  a schedule of host/link down/up events
  (:class:`~repro.faults.plan.FaultEvent`).
* :class:`~repro.faults.injector.FaultInjector` -- binds a plan to a
  live :class:`~repro.datacenter.state.DataCenterState`: raises
  :class:`~repro.errors.TransientAPIError` /
  :class:`~repro.errors.PermanentAPIError` at surrogate API call sites
  and applies scheduled host/link faults via the state's fault model,
  emitting a ``fault_injected`` / ``fault_cleared`` telemetry event for
  every fault.
* :class:`~repro.faults.retry.RetryPolicy` /
  :func:`~repro.faults.retry.retry_call` -- exponential backoff with
  deterministic seeded jitter and a per-call time budget, wrapped around
  every surrogate API call made by :class:`~repro.heat.engine.HeatEngine`
  and the scheduler's commit path.
* :func:`~repro.faults.recovery.place_with_degradation` -- the
  degradation ladder: under deadline pressure DBA* degrades to BA*, then
  to EG, instead of failing the request.

Everything is seeded: the same :class:`FaultPlan` seed produces the same
faults, retries, and recovery decisions on every run. With no plan
installed (the default everywhere), the entire subsystem is inert and
the scheduler's behavior is bit-identical to a build without it.

See ``docs/ROBUSTNESS.md`` for the full fault model and protocols.
"""

from __future__ import annotations

from repro.faults.injector import FaultInjector
from repro.faults.plan import FAULT_KINDS, FaultEvent, FaultPlan
from repro.faults.recovery import (
    DEGRADATION_LADDER,
    place_with_degradation,
)
from repro.faults.retry import RetryPolicy, retry_call

__all__ = [
    "DEGRADATION_LADDER",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "RetryPolicy",
    "place_with_degradation",
    "retry_call",
]
