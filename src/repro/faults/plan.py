"""Fault plans: seeded descriptions of what fails, and when.

A :class:`FaultPlan` carries two independent fault sources:

* **API fault rates** -- every surrogate API call (Nova, Cinder, the
  Heat engine's orchestration calls, Ostro's commit) draws from a seeded
  RNG and fails with :class:`~repro.errors.TransientAPIError` (retryable)
  or :class:`~repro.errors.PermanentAPIError` (must roll back) at the
  configured rates.
* **Scheduled infrastructure events** -- a list of
  :class:`FaultEvent` (step, kind, target) entries crashing and
  restoring hosts or failing ToR/pod uplinks at deterministic points of
  a scenario.

Plans are pure descriptions plus the RNG: they touch no state. The
:class:`~repro.faults.injector.FaultInjector` interprets a plan against
a live :class:`~repro.datacenter.state.DataCenterState`.

Determinism contract: with a fixed seed, the sequence of API fault draws
depends only on the order of calls, and the schedule is static -- so a
chaos run with the same seed and workload is bit-identical every time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import (
    DataCenterError,
    FaultError,
    PermanentAPIError,
    TransientAPIError,
)

#: Scheduled fault kinds. ``*_down`` injects a fault, ``*_up`` clears it.
FAULT_KINDS: Tuple[str, ...] = (
    "host_down",
    "host_up",
    "link_down",
    "link_up",
)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled infrastructure fault.

    Attributes:
        at_step: scenario step at which the event fires (the chaos harness
            advances the injector one step per deploy/update operation).
        kind: one of :data:`FAULT_KINDS`.
        target: element name. For host events, a host name. For link
            events, ``"host:<name>"`` (the host's NIC link),
            ``"rack:<name>"`` (the ToR uplink), or ``"pod:<name>"``
            (the pod-switch uplink).
    """

    at_step: int
    kind: str
    target: str

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise DataCenterError(
                f"unknown fault kind {self.kind!r}; "
                f"choose from {sorted(FAULT_KINDS)}"
            )
        if self.at_step < 0:
            raise DataCenterError(
                f"fault event step must be >= 0, got {self.at_step}"
            )


class FaultPlan:
    """A seeded fault schedule plus per-call API fault rates.

    Args:
        seed: seeds the API-fault RNG; same seed, same draws.
        api_transient_rate: probability in ``[0, 1]`` that any one
            surrogate API call raises :class:`TransientAPIError`.
        api_permanent_rate: probability that a call raises
            :class:`PermanentAPIError`. Drawn after the transient check,
            from the same RNG stream.
        events: scheduled :class:`FaultEvent` entries, in any order;
            stored sorted by (step, kind, target) so application order is
            deterministic.
    """

    def __init__(
        self,
        seed: int = 0,
        api_transient_rate: float = 0.0,
        api_permanent_rate: float = 0.0,
        events: Sequence[FaultEvent] = (),
    ) -> None:
        for name, rate in (
            ("api_transient_rate", api_transient_rate),
            ("api_permanent_rate", api_permanent_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise DataCenterError(
                    f"{name} must be within [0, 1], got {rate}"
                )
        self.seed = seed
        self.api_transient_rate = api_transient_rate
        self.api_permanent_rate = api_permanent_rate
        self.events: List[FaultEvent] = sorted(
            events, key=lambda e: (e.at_step, e.kind, e.target)
        )
        self._rng = random.Random(seed)

    def reset(self) -> None:
        """Rewind the API-fault RNG to the start of its stream.

        :class:`~repro.faults.injector.FaultInjector` resets the plan at
        construction, so reusing one plan across runs still yields the
        same draw sequence each run.
        """
        self._rng = random.Random(self.seed)

    def draw_api_fault(self, service: str, method: str) -> Optional[FaultError]:
        """Roll the dice for one API call; return the fault or None.

        One RNG draw per configured rate per call, so the fault sequence
        is a pure function of (seed, call order).
        """
        if self.api_transient_rate > 0.0:
            if self._rng.random() < self.api_transient_rate:
                return TransientAPIError(
                    f"injected transient fault in {service}.{method}"
                )
        if self.api_permanent_rate > 0.0:
            if self._rng.random() < self.api_permanent_rate:
                return PermanentAPIError(
                    f"injected permanent fault in {service}.{method}"
                )
        return None

    def events_between(self, after: int, upto: int) -> List[FaultEvent]:
        """Scheduled events with ``after < at_step <= upto``, in order."""
        return [e for e in self.events if after < e.at_step <= upto]

    @property
    def has_api_faults(self) -> bool:
        """True when any API fault rate is non-zero."""
        return self.api_transient_rate > 0.0 or self.api_permanent_rate > 0.0
