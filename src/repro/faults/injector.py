"""The fault injector: interprets a FaultPlan against live state.

A :class:`FaultInjector` is handed to the surrogates (NovaScheduler,
CinderScheduler, HeatEngine, Ostro); each calls
:meth:`FaultInjector.before_api_call` at its API boundaries, which raises
the plan's drawn fault (if any). The chaos harness drives
:meth:`FaultInjector.advance_to` between workload operations, applying
scheduled host/link events through the state's fault model
(:meth:`~repro.datacenter.state.DataCenterState.fail_host` and friends).

Every injected or cleared fault is emitted as a ``fault_injected`` /
``fault_cleared`` telemetry event and counted in
``ostro_faults_injected_total``; the ``ostro_hosts_down`` gauge tracks
the current number of failed hosts.
"""

from __future__ import annotations

from typing import Dict, List

from repro import obs
from repro.datacenter.model import Cloud
from repro.datacenter.state import DataCenterState
from repro.errors import DataCenterError
from repro.faults.plan import FaultEvent, FaultPlan


def _resolve_link(cloud: Cloud, target: str) -> int:
    """Resolve a link-event target to a global link index.

    Accepts ``"host:<name>"`` (NIC), ``"rack:<name>"`` (ToR uplink), and
    ``"pod:<name>"`` (pod-switch uplink).
    """
    kind, sep, name = target.partition(":")
    if not sep:
        raise DataCenterError(
            f"link fault target {target!r} must be "
            "'host:<name>', 'rack:<name>', or 'pod:<name>'"
        )
    if kind == "host":
        return cloud.host_by_name(name).link_index
    if kind == "rack":
        for rack in cloud.racks:
            if rack.name == name:
                return rack.link_index
        raise DataCenterError(f"unknown rack: {name!r}")
    if kind == "pod":
        for pod in cloud.pods:
            if pod.name == name:
                return pod.link_index
        raise DataCenterError(f"unknown pod: {name!r}")
    raise DataCenterError(
        f"link fault target {target!r} has unknown element kind {kind!r}"
    )


class FaultInjector:
    """Applies one :class:`FaultPlan` to one state.

    Args:
        plan: what goes wrong, and when.
        state: the live availability state faults are applied to.
    """

    def __init__(self, plan: FaultPlan, state: DataCenterState) -> None:
        self.plan = plan
        self.plan.reset()  # same plan object, same draw stream, every run
        self.state = state
        #: last scenario step advanced to (events at step 0 fire on the
        #: first advance_to(0) call because the cursor starts at -1)
        self.step = -1
        #: every scheduled event applied so far, in application order
        self.applied: List[FaultEvent] = []
        #: API faults raised so far, by error class name
        self.api_faults: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # API-call faults
    # ------------------------------------------------------------------

    def before_api_call(self, service: str, method: str) -> None:
        """Raise the plan's drawn fault for one API call, if any."""
        fault = self.plan.draw_api_fault(service, method)
        if fault is None:
            return
        kind = type(fault).__name__
        self.api_faults[kind] = self.api_faults.get(kind, 0) + 1
        rec = obs.get_recorder()
        if rec.enabled:
            rec.inc("ostro_faults_injected_total", kind=kind)
            rec.event(
                "fault_injected", kind=kind, target=f"{service}.{method}"
            )
        raise fault

    # ------------------------------------------------------------------
    # scheduled infrastructure faults
    # ------------------------------------------------------------------

    def advance_to(self, step: int) -> List[FaultEvent]:
        """Apply all scheduled events up to (and including) ``step``.

        Returns the events applied by this call, in order. Idempotent per
        step: advancing to the same or an earlier step applies nothing.
        """
        if step <= self.step:
            return []
        fired = self.plan.events_between(self.step, step)
        self.step = step
        for event in fired:
            self.apply_event(event)
        return fired

    def apply_event(self, event: FaultEvent) -> None:
        """Apply one scheduled event to the state, with telemetry."""
        state = self.state
        if event.kind == "host_down":
            state.fail_host(state.cloud.host_by_name(event.target).index)
        elif event.kind == "host_up":
            state.restore_host(state.cloud.host_by_name(event.target).index)
        elif event.kind == "link_down":
            state.fail_link(_resolve_link(state.cloud, event.target))
        elif event.kind == "link_up":
            state.restore_link(_resolve_link(state.cloud, event.target))
        else:  # unreachable: FaultEvent validates its kind
            raise DataCenterError(f"unknown fault kind {event.kind!r}")
        self.applied.append(event)
        rec = obs.get_recorder()
        if rec.enabled:
            if event.kind.endswith("_down"):
                rec.inc("ostro_faults_injected_total", kind=event.kind)
                rec.event(
                    "fault_injected", kind=event.kind, target=event.target
                )
            else:
                rec.event(
                    "fault_cleared", kind=event.kind, target=event.target
                )
            rec.set_gauge(
                "ostro_hosts_down", float(len(state.down_hosts()))
            )
