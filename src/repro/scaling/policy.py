"""Pluggable scaling policies: threshold-with-hysteresis and EWMA slope.

A policy is a deterministic state machine: ``decide`` maps (tier key,
virtual time, measured utilization) to an action -- ``"out"``, ``"in"``,
or ``"hold"`` -- plus a reason string. Policies keep only per-tier
bookkeeping (breach streaks, cooldown stamps, EWMA levels); they draw no
randomness and never read the wall clock, so identical evaluation
sequences produce identical action sequences, bit for bit. All
randomness in the scaling loop lives in the seeded load signal
(:mod:`repro.scaling.signals`).

Two implementations:

* :class:`ThresholdPolicy` -- the classic reactive rule: scale out when
  utilization holds above the high threshold for ``breaches``
  consecutive evaluations, in below the low one, with a per-tier
  cooldown after every action. The threshold gap plus the breach streak
  is the hysteresis that stops flapping.
* :class:`EwmaSlopePolicy` -- a simple predictive rule: track an EWMA of
  utilization and its slope, project ``lead_s`` seconds ahead, and apply
  the same thresholds to the *projected* value -- scaling out before the
  peak arrives instead of after.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Tuple

#: decide() verdicts
ACTION_OUT = "out"
ACTION_IN = "in"
ACTION_HOLD = "hold"


class ScalingPolicy(ABC):
    """Base class: per-tier decision state plus cooldown bookkeeping."""

    def __init__(self, cooldown_s: float = 0.0) -> None:
        self.cooldown_s = cooldown_s
        self._last_action_at: Dict[str, float] = {}

    @abstractmethod
    def decide(self, key: str, now: float, utilization: float) -> Tuple[str, str]:
        """Return ``(action, reason)`` for one evaluation."""

    def in_cooldown(self, key: str, now: float) -> bool:
        """True while the tier's post-action cooldown window is open."""
        last = self._last_action_at.get(key)
        return (
            last is not None
            and self.cooldown_s > 0.0
            and now - last < self.cooldown_s
        )

    def record_action(self, key: str, now: float) -> None:
        """Stamp an applied action (opens the cooldown window)."""
        self._last_action_at[key] = now

    def forget(self, key: str) -> None:
        """Drop all per-tier state (the tier departed)."""
        self._last_action_at.pop(key, None)


class ThresholdPolicy(ScalingPolicy):
    """Utilization thresholds with breach-streak hysteresis and cooldown.

    Args:
        scale_out_at: utilization at or above which the tier is hot.
        scale_in_at: utilization at or below which the tier is cold.
        breaches: consecutive hot/cold evaluations required before
            acting (the hysteresis depth; 1 = act immediately).
        cooldown_s: virtual seconds after an applied action during which
            the tier holds regardless of utilization.
    """

    def __init__(
        self,
        scale_out_at: float = 0.75,
        scale_in_at: float = 0.30,
        breaches: int = 1,
        cooldown_s: float = 0.0,
    ) -> None:
        super().__init__(cooldown_s=cooldown_s)
        self.scale_out_at = scale_out_at
        self.scale_in_at = scale_in_at
        self.breaches = max(1, breaches)
        self._hot: Dict[str, int] = {}
        self._cold: Dict[str, int] = {}

    def decide(self, key: str, now: float, utilization: float) -> Tuple[str, str]:
        if self.in_cooldown(key, now):
            return ACTION_HOLD, "cooldown"
        if utilization >= self.scale_out_at:
            self._hot[key] = self._hot.get(key, 0) + 1
            self._cold[key] = 0
            if self._hot[key] >= self.breaches:
                return ACTION_OUT, "above-threshold"
            return ACTION_HOLD, "hysteresis"
        if utilization <= self.scale_in_at:
            self._cold[key] = self._cold.get(key, 0) + 1
            self._hot[key] = 0
            if self._cold[key] >= self.breaches:
                return ACTION_IN, "below-threshold"
            return ACTION_HOLD, "hysteresis"
        self._hot[key] = 0
        self._cold[key] = 0
        return ACTION_HOLD, "in-band"

    def record_action(self, key: str, now: float) -> None:
        super().record_action(key, now)
        self._hot[key] = 0
        self._cold[key] = 0

    def forget(self, key: str) -> None:
        super().forget(key)
        self._hot.pop(key, None)
        self._cold.pop(key, None)


class EwmaSlopePolicy(ScalingPolicy):
    """Predictive thresholds on an EWMA-projected utilization.

    Args:
        scale_out_at / scale_in_at: thresholds applied to the projection.
        alpha: EWMA smoothing factor in ``(0, 1]`` (1 = no smoothing).
        lead_s: how far ahead to project the smoothed trend.
        cooldown_s: post-action hold window, as in the base class.
    """

    def __init__(
        self,
        scale_out_at: float = 0.75,
        scale_in_at: float = 0.30,
        alpha: float = 0.3,
        lead_s: float = 600.0,
        cooldown_s: float = 0.0,
    ) -> None:
        super().__init__(cooldown_s=cooldown_s)
        self.scale_out_at = scale_out_at
        self.scale_in_at = scale_in_at
        self.alpha = alpha
        self.lead_s = lead_s
        #: key -> (last evaluation time, EWMA level, EWMA slope per second)
        self._trend: Dict[str, Tuple[float, float, float]] = {}

    def projected(self, key: str, now: float, utilization: float) -> float:
        """Update the tier's trend and return the ``lead_s``-ahead value."""
        previous = self._trend.get(key)
        if previous is None:
            self._trend[key] = (now, utilization, 0.0)
            return utilization
        last_at, level, slope = previous
        new_level = level + self.alpha * (utilization - level)
        dt = now - last_at
        if dt > 0:
            step_slope = (new_level - level) / dt
            slope = slope + self.alpha * (step_slope - slope)
        self._trend[key] = (now, new_level, slope)
        return new_level + slope * self.lead_s

    def decide(self, key: str, now: float, utilization: float) -> Tuple[str, str]:
        projected = self.projected(key, now, utilization)
        if self.in_cooldown(key, now):
            return ACTION_HOLD, "cooldown"
        if projected >= self.scale_out_at:
            return ACTION_OUT, "projected-above-threshold"
        if projected <= self.scale_in_at:
            return ACTION_IN, "projected-below-threshold"
        return ACTION_HOLD, "in-band"

    def forget(self, key: str) -> None:
        super().forget(key)
        self._trend.pop(key, None)
