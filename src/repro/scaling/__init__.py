"""Deterministic autoscaling: load signals, policies, and the engine.

Closes the elasticity loop over live placements (ROADMAP open item 3):
per-tier load signals (:mod:`~repro.scaling.signals`) feed pluggable
policies (:mod:`~repro.scaling.policy`) through the
:class:`~repro.scaling.engine.AutoScaler`; scale-out places only the
delta via :func:`repro.core.online.add_vms_to_tier` +
``update_application``, scale-in releases members transactionally via
:func:`repro.core.online.remove_vms_from_tier`. Every value is seeded
and bit-reproducible.
"""

from repro.scaling.engine import (
    AutoScaler,
    ScalingConfig,
    ScalingDecision,
    ScalingStats,
    consolidation_config,
    make_policy,
)
from repro.scaling.policy import (
    ACTION_HOLD,
    ACTION_IN,
    ACTION_OUT,
    EwmaSlopePolicy,
    ScalingPolicy,
    ThresholdPolicy,
)
from repro.scaling.signals import LoadSignal, tier_utilization

__all__ = [
    "ACTION_HOLD",
    "ACTION_IN",
    "ACTION_OUT",
    "AutoScaler",
    "EwmaSlopePolicy",
    "LoadSignal",
    "ScalingConfig",
    "ScalingDecision",
    "ScalingPolicy",
    "ScalingStats",
    "ThresholdPolicy",
    "consolidation_config",
    "make_policy",
    "tier_utilization",
]
