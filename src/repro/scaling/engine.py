"""The autoscaling engine: config, per-tier evaluation, accounting.

:class:`AutoScaler` is the piece the service driver and the chaos
harness share. It owns the policy instance and the load signal, tracks
each application's initial tier size (the demand anchor), and turns one
evaluation into a :class:`ScalingDecision` carrying the resolved member
delta -- bounded by ``min_members``/``max_members`` so the fleet can
neither collapse a tier nor grow it without limit.

Applying a decision stays with the caller, because the two hosts differ:
the service driver grows through the sharded coordinator's update path
and shrinks through :func:`repro.core.online.remove_vms_from_tier` on
the coordinator's global scheduler, while the chaos harness talks to its
:class:`~repro.core.scheduler.Ostro` directly. After applying, callers
report back through :meth:`AutoScaler.applied` / :meth:`AutoScaler.
failed` so cooldowns, stats, and the ``ostro_scaling_*`` metrics stay
consistent regardless of the host.

Everything is deterministic: the signal is seeded per (seed, tier,
time), the policies are pure state machines, and the engine itself
draws no randomness -- same trace, same decisions, bit for bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro import obs
from repro.core.online import tier_members
from repro.core.placement import Placement
from repro.core.topology import ApplicationTopology
from repro.datacenter.state import DataCenterState
from repro.defrag.planner import DefragConfig
from repro.errors import ReproError
from repro.scaling.policy import (
    ACTION_HOLD,
    ACTION_IN,
    ACTION_OUT,
    EwmaSlopePolicy,
    ScalingPolicy,
    ThresholdPolicy,
)
from repro.scaling.signals import LoadSignal, tier_utilization
from repro.sim.utilization import hosts_cpu_used_frac


@dataclass(frozen=True)
class ScalingConfig:
    """Knobs of the autoscaling loop (hashable and picklable, so it can
    ride inside frozen service/chaos configurations).

    Attributes:
        enabled: master switch; disabled scalers are never constructed
            and leave every run bit-identical to a scaling-free baseline.
        policy: ``"threshold"`` (reactive, hysteresis + cooldown) or
            ``"ewma"`` (predictive EWMA-slope projection).
        tier_prefix: name prefix of the scaled tier's VMs (``"vm"`` for
            the service tenants, ``"tier1"`` for chaos multitier apps).
        scale_out_at / scale_in_at: utilization thresholds; the gap is
            the primary hysteresis band.
        breaches: consecutive breaches required before the threshold
            policy acts (ignored by ``"ewma"``).
        cooldown_s: per-tier hold window after every applied action.
        step_fraction: member delta per action, as a fraction of the
            current tier size (minimum 1 member).
        min_members / max_members: hard bounds on the tier size.
        ewma_alpha / lead_s: EWMA smoothing and projection horizon
            (``"ewma"`` policy only).
        seed: load-signal seed.
        signal_base / signal_amplitude / signal_period_s / signal_noise:
            the diurnal offered-load model, see
            :class:`repro.scaling.signals.LoadSignal`.
        pressure_weight: blend weight of the live host-pressure term in
            the utilization signal (0 = pure demand model).
        consolidate: run a targeted defrag pass over the survivors after
            every scale-in (the PR 9 migration engine).
        max_consolidation_moves: move budget of that pass.
    """

    enabled: bool = True
    policy: str = "threshold"
    tier_prefix: str = "vm"
    scale_out_at: float = 0.75
    scale_in_at: float = 0.30
    breaches: int = 1
    cooldown_s: float = 0.0
    step_fraction: float = 0.25
    min_members: int = 1
    max_members: int = 64
    ewma_alpha: float = 0.3
    lead_s: float = 600.0
    seed: int = 0
    signal_base: float = 0.55
    signal_amplitude: float = 0.35
    signal_period_s: float = 86400.0
    signal_noise: float = 0.05
    pressure_weight: float = 0.0
    consolidate: bool = False
    max_consolidation_moves: int = 8


def make_policy(config: ScalingConfig) -> ScalingPolicy:
    """Instantiate the configured policy."""
    name = config.policy.strip().lower()
    if name == "threshold":
        return ThresholdPolicy(
            scale_out_at=config.scale_out_at,
            scale_in_at=config.scale_in_at,
            breaches=config.breaches,
            cooldown_s=config.cooldown_s,
        )
    if name == "ewma":
        return EwmaSlopePolicy(
            scale_out_at=config.scale_out_at,
            scale_in_at=config.scale_in_at,
            alpha=config.ewma_alpha,
            lead_s=config.lead_s,
            cooldown_s=config.cooldown_s,
        )
    raise ReproError(
        f"unknown scaling policy {config.policy!r}; "
        "choose from ['threshold', 'ewma']"
    )


def consolidation_config(
    config: ScalingConfig, algorithm: str
) -> Optional[DefragConfig]:
    """The defrag configuration of the post-scale-in consolidation pass
    (None when consolidation is off)."""
    if not config.consolidate:
        return None
    return DefragConfig(
        enabled=True,
        algorithm=algorithm,
        max_apps_per_pass=1,
        max_moves_per_pass=config.max_consolidation_moves,
    )


@dataclass
class ScalingStats:
    """What one run's autoscaling loop did.

    Attributes:
        evaluations: scale evaluations performed.
        scale_outs / scale_ins: actions applied.
        holds: evaluations that decided (or were bounded) to hold.
        scale_out_failures: grow attempts the placement search rejected.
        vms_added / vms_removed: total member delta applied.
        consolidation_moves: migration steps executed by post-scale-in
            consolidation passes.
    """

    evaluations: int = 0
    scale_outs: int = 0
    scale_ins: int = 0
    holds: int = 0
    scale_out_failures: int = 0
    vms_added: int = 0
    vms_removed: int = 0
    consolidation_moves: int = 0


@dataclass(frozen=True)
class ScalingDecision:
    """One evaluation's verdict, with the resolved member delta.

    Attributes:
        app: application name.
        action: ``"out"``, ``"in"``, or ``"hold"``.
        delta: members to add/remove (0 for holds); already bounded by
            the configured min/max tier size.
        members: current tier size at evaluation time.
        utilization: the measured utilization the policy saw.
        reason: why (policy reason, or ``"at-max"``/``"at-min"`` when
            the bounds vetoed an action).
    """

    app: str
    action: str
    delta: int
    members: int
    utilization: float
    reason: str


class AutoScaler:
    """Deterministic per-tier scaling evaluator (one per run)."""

    def __init__(self, config: ScalingConfig) -> None:
        self.config = config
        self.policy = make_policy(config)
        self.signal = LoadSignal(
            seed=config.seed,
            base=config.signal_base,
            amplitude=config.signal_amplitude,
            period_s=config.signal_period_s,
            noise=config.signal_noise,
        )
        #: app name -> initial tier size (the demand anchor)
        self.initial: Dict[str, int] = {}
        self.stats = ScalingStats()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def register(self, app: str, topology: ApplicationTopology) -> None:
        """Start tracking an admitted application (idempotent)."""
        if app not in self.initial:
            members = tier_members(topology, self.config.tier_prefix)
            self.initial[app] = len(members)

    def forget(self, app: str) -> None:
        """Stop tracking a departed application."""
        self.initial.pop(app, None)
        self.policy.forget(app)

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------

    def evaluate(
        self,
        app: str,
        topology: ApplicationTopology,
        now: float,
        state: Optional[DataCenterState] = None,
        placement: Optional[Placement] = None,
    ) -> ScalingDecision:
        """Measure one tier and ask the policy what to do.

        ``state``/``placement`` feed the optional host-pressure term;
        omitted (or with ``pressure_weight == 0``) the signal is the
        pure demand model.
        """
        cfg = self.config
        members = len(tier_members(topology, cfg.tier_prefix))
        if app not in self.initial:
            self.initial[app] = members
        pressure = 0.0
        if (
            cfg.pressure_weight > 0.0
            and state is not None
            and placement is not None
        ):
            pressure = hosts_cpu_used_frac(
                state, {a.host for a in placement.assignments.values()}
            )
        utilization = tier_utilization(
            self.signal,
            app,
            self.initial[app],
            members,
            now,
            pressure=pressure,
            pressure_weight=cfg.pressure_weight,
        )
        action, reason = self.policy.decide(app, now, utilization)
        delta = 0
        if action == ACTION_OUT:
            step = max(1, math.ceil(cfg.step_fraction * members - 1e-9))
            delta = min(step, cfg.max_members - members)
            if delta <= 0:
                action, reason, delta = ACTION_HOLD, "at-max", 0
        elif action == ACTION_IN:
            step = max(1, math.ceil(cfg.step_fraction * members - 1e-9))
            delta = min(step, members - max(0, cfg.min_members))
            if delta <= 0:
                action, reason, delta = ACTION_HOLD, "at-min", 0
        self.stats.evaluations += 1
        if action == ACTION_HOLD:
            self.stats.holds += 1
        rec = obs.get_recorder()
        if rec.enabled:
            rec.inc("ostro_scaling_evaluations_total")
            rec.set_gauge(
                "ostro_scaling_utilization", utilization, app=app
            )
        return ScalingDecision(
            app=app,
            action=action,
            delta=delta,
            members=members,
            utilization=utilization,
            reason=reason,
        )

    # ------------------------------------------------------------------
    # outcome reporting (callers apply, then report)
    # ------------------------------------------------------------------

    def applied(self, app: str, now: float, action: str, delta: int) -> None:
        """An action landed: stamp the cooldown and account for it."""
        self.policy.record_action(app, now)
        rec = obs.get_recorder()
        if action == ACTION_OUT:
            self.stats.scale_outs += 1
            self.stats.vms_added += delta
            if rec.enabled:
                rec.inc("ostro_scaling_actions_total", direction="out")
                rec.inc(
                    "ostro_scaling_vms_total", delta, direction="added"
                )
                rec.event("scale_out", app=app, added=delta)
        elif action == ACTION_IN:
            self.stats.scale_ins += 1
            self.stats.vms_removed += delta
            if rec.enabled:
                rec.inc("ostro_scaling_actions_total", direction="in")
            # the scale-in primitive itself emits the "scale_in" event
            # and the removed-VM counter

    def failed(self, app: str, action: str) -> None:
        """An action could not be applied (placement search rejected the
        grown topology, or a fault aborted the shrink)."""
        if action == ACTION_OUT:
            self.stats.scale_out_failures += 1
        rec = obs.get_recorder()
        if rec.enabled:
            rec.inc("ostro_scaling_failures_total", direction=action)
            rec.event("scale_failed", app=app, direction=action)
