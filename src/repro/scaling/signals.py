"""Per-tier load signals: deterministic offered load and utilization.

The autoscaling loop needs something to react to. Real fleets read tier
metrics from monitoring; a reproduction needs a signal that is (a)
realistic enough to exercise both scaling directions -- a diurnal swell
with seeded jitter, per the day/night cycles the SAP Cloud
Infrastructure Dataset paper reports dominating real clouds -- and (b)
**bit-reproducible**: every value is a pure function of (seed, tier key,
virtual time), drawn from a :class:`random.Random` seeded per
evaluation, never from shared RNG state or the wall clock. Two runs of
the same trace therefore see byte-identical signals regardless of what
else executed in the process.

:func:`tier_utilization` closes the control loop: offered load is
expressed in units of the tier's *initial* capacity, so a tier that
scales out spreads the same demand over more members and its measured
utilization drops -- without this, a threshold policy would scale out
forever. An optional host-pressure term blends in the live placement's
CPU occupancy (:func:`repro.sim.utilization.hosts_cpu_used_frac`),
tying the signal to the existing utilization metrics.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass


@dataclass(frozen=True)
class LoadSignal:
    """Seeded diurnal offered-load model for one application tier.

    Attributes:
        seed: signal seed; identical seeds yield identical signals.
        base: mean offered load, in units of the tier's initial capacity
            (1.0 = the tier as originally sized running flat out).
        amplitude: half-swing of the diurnal sinusoid around ``base``.
        period_s: period of the sinusoid (default: one simulated day).
        noise: half-width of the per-evaluation uniform jitter.
    """

    seed: int = 0
    base: float = 0.55
    amplitude: float = 0.35
    period_s: float = 86400.0
    noise: float = 0.05

    def phase_s(self, key: str) -> float:
        """Per-tier phase offset, fixed for the tier's lifetime.

        Seeded from ``(seed, key)`` so distinct applications peak at
        distinct times -- a fleet never scales in lockstep.
        """
        rng = random.Random(f"{self.seed}:{key}:phase")
        return rng.uniform(0.0, self.period_s)

    def offered(self, key: str, now: float) -> float:
        """Offered load at virtual time ``now`` (>= 0, in initial-capacity
        units): diurnal sinusoid plus seeded per-evaluation jitter."""
        if self.period_s <= 0:
            diurnal = self.base
        else:
            angle = (
                2.0 * math.pi * (now + self.phase_s(key)) / self.period_s
            )
            diurnal = self.base + self.amplitude * math.sin(angle)
        jitter = 0.0
        if self.noise > 0:
            rng = random.Random(f"{self.seed}:{key}:{now!r}")
            jitter = rng.uniform(-self.noise, self.noise)
        return max(0.0, diurnal + jitter)


def tier_utilization(
    signal: LoadSignal,
    key: str,
    initial_members: int,
    current_members: int,
    now: float,
    pressure: float = 0.0,
    pressure_weight: float = 0.0,
) -> float:
    """Measured utilization of one tier at virtual time ``now``.

    Offered load (in initial-capacity units) scales with the tier's
    initial size and is served by its *current* members, so utilization
    falls as the tier scales out and rises as it scales in -- the closed
    loop a policy regulates. ``pressure`` (the used-CPU fraction of the
    hosts the tier occupies, see
    :func:`repro.sim.utilization.hosts_cpu_used_frac`) blends in
    multiplicatively with weight ``pressure_weight``: a packed host
    reads as hotter than an idle one, neutral at pressure 0.5.
    """
    demand = signal.offered(key, now) * max(1, initial_members)
    utilization = demand / max(1, current_members)
    if pressure_weight > 0.0:
        utilization *= (
            1.0 - pressure_weight + pressure_weight * 2.0 * pressure
        )
    return utilization
