"""Synthetic QFS benchmark over a placement (the Section IV-A experiment).

The paper's testbed experiment deploys a real QFS cluster and runs a
distributed-file-system benchmark from the client VM. The physical testbed
is substituted here by a flow-level simulation that exercises the same
code path end to end:

1. A file of N chunks is written: for every chunk, the client streams to a
   chunk server (client -> chunk flow), the chunk server persists to its
   volume (chunk -> volume flow), and a metadata update flows between
   client and meta server. Reads reverse the data direction (bandwidth on
   our undirected links is direction-agnostic).
2. Every flow is routed over the *placed* hosts' network paths, and its
   per-link footprint is compared against (a) the application's
   reservations and (b) the links' raw capacities.
3. The benchmark reports the bottleneck-limited aggregate throughput, so
   placements that spread chunk servers across starved links measurably
   hurt -- the observable the paper's experiment is about.

This is the documented substitution for the physical testbed (DESIGN.md):
placement quality metrics (reserved bandwidth, hosts) are computed exactly;
the benchmark validates that reservations are honored and translates
placement into an application-visible throughput number.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.placement import Placement
from repro.core.topology import ApplicationTopology
from repro.datacenter.model import Cloud
from repro.datacenter.network import PathResolver
from repro.errors import ReproError


@dataclass
class BenchmarkReport:
    """Results of one synthetic QFS benchmark run.

    Attributes:
        chunks_written: chunks streamed during the write phase.
        flows: number of distinct (src, dst) flows generated.
        max_link_utilization: peak fraction of any link's *capacity* used
            by the benchmark's steady-state traffic.
        reservation_violations: links where traffic exceeded the
            application's reserved bandwidth (must be empty for a correct
            placement -- QFS throttles to its reservations).
        aggregate_throughput_mbps: bottleneck-limited total client
            throughput across all chunk streams.
        per_link_traffic: link index -> steady-state Mbps (diagnostics).
    """

    chunks_written: int
    flows: int
    max_link_utilization: float
    reservation_violations: List[int]
    aggregate_throughput_mbps: float
    per_link_traffic: Dict[int, float] = field(default_factory=dict)


class QFSBenchmark:
    """Flow-level QFS benchmark bound to a topology and its placement.

    Args:
        topology: the QFS application topology (see
            :func:`repro.workloads.qfs.build_qfs`).
        placement: a placement covering every topology node.
        cloud: the physical structure the placement refers to.
    """

    def __init__(
        self,
        topology: ApplicationTopology,
        placement: Placement,
        cloud: Cloud,
    ):
        missing = topology.nodes.keys() - placement.assignments.keys()
        if missing:
            raise ReproError(
                f"placement does not cover QFS nodes: {sorted(missing)}"
            )
        self.topology = topology
        self.placement = placement
        self.cloud = cloud
        self.resolver = PathResolver(cloud)
        self.chunk_servers = sorted(
            name
            for name, node in topology.nodes.items()
            if node.is_vm and name.startswith("chunk") and "vol" not in name
        )
        if not self.chunk_servers:
            raise ReproError("topology has no chunk servers")

    # ------------------------------------------------------------------

    def _link_bw(self, a: str, b: str) -> float:
        for neighbor, bw in self.topology.neighbors(a):
            if neighbor == b:
                return bw
        return 0.0

    def _volume_of(self, server: str) -> str:
        for neighbor, _ in self.topology.neighbors(server):
            if not self.topology.node(neighbor).is_vm:
                return neighbor
        raise ReproError(f"chunk server {server!r} has no volume")

    def steady_state_flows(self) -> List[Tuple[str, str, float]]:
        """Node-level flows of the benchmark at full offered load.

        The client stripes chunks round-robin over every chunk server, so
        in steady state each (client -> chunk server), (chunk server ->
        volume), and (client/meta control) link carries its reserved
        bandwidth.
        """
        flows: List[Tuple[str, str, float]] = []
        for server in self.chunk_servers:
            flows.append(("client", server, self._link_bw("client", server)))
            volume = self._volume_of(server)
            flows.append((server, volume, self._link_bw(server, volume)))
            meta_bw = self._link_bw("meta", server)
            if meta_bw > 0:
                flows.append(("meta", server, meta_bw))
        client_meta = self._link_bw("client", "meta")
        if client_meta > 0:
            flows.append(("client", "meta", client_meta))
        return flows

    def run(self, chunks: int = 120) -> BenchmarkReport:
        """Execute the benchmark and validate against the placement.

        Args:
            chunks: number of chunks written (spread round-robin).
        """
        flows = self.steady_state_flows()
        traffic: Dict[int, float] = {}
        reserved: Dict[int, float] = {}
        for link in self.topology.links:
            path = self.resolver.path(
                self.placement.host_of(link.a), self.placement.host_of(link.b)
            )
            for idx in path:
                reserved[idx] = reserved.get(idx, 0.0) + link.bw_mbps
        for a, b, mbps in flows:
            path = self.resolver.path(
                self.placement.host_of(a), self.placement.host_of(b)
            )
            for idx in path:
                traffic[idx] = traffic.get(idx, 0.0) + mbps

        violations = [
            idx
            for idx, used in traffic.items()
            if used > reserved.get(idx, 0.0) + 1e-9
        ]
        max_utilization = max(
            (
                used / self.cloud.link_capacity_mbps[idx]
                for idx, used in traffic.items()
            ),
            default=0.0,
        )

        # Bottleneck model: each chunk stream is capped by the scarcest
        # *capacity* share along its path (uniform share per competing
        # stream), and by its reservation.
        streams = 0.0
        for server in self.chunk_servers:
            rate = self._link_bw("client", server)
            path = self.resolver.path(
                self.placement.host_of("client"),
                self.placement.host_of(server),
            )
            for idx in path:
                capacity = self.cloud.link_capacity_mbps[idx]
                competing = traffic.get(idx, 0.0)
                if competing > capacity:
                    rate = min(rate, rate * capacity / competing)
            streams += rate
        return BenchmarkReport(
            chunks_written=chunks,
            flows=len(flows),
            max_link_utilization=max_utilization,
            reservation_violations=sorted(violations),
            aggregate_throughput_mbps=streams,
            per_link_traffic=traffic,
        )
