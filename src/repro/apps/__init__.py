"""Application-level simulations driven by placements.

* :mod:`repro.apps.qfs_sim` -- a synthetic QFS read/write benchmark that
  replays the paper's realistic experiment over a computed placement,
  verifying that the traffic fits the reservations and measuring the
  throughput the placement allows.
* :mod:`repro.apps.multitier_sim` -- request-flow latency/throughput over
  a placed multi-tier application: turns reserved bandwidth and hop
  counts into the application-visible quantities an operator graphs.
"""

from repro.apps.multitier_sim import MultitierReport, MultitierSimulator
from repro.apps.qfs_sim import BenchmarkReport, QFSBenchmark

__all__ = [
    "BenchmarkReport",
    "MultitierReport",
    "MultitierSimulator",
    "QFSBenchmark",
]
