"""Request-flow simulation over a placed multi-tier application.

Where :mod:`repro.apps.qfs_sim` replays a storage benchmark, this module
measures what a *request-serving* application experiences under a given
placement: every front-tier request fans down the tiers and back, so its
end-to-end latency is dominated by how many network hops the placement
put between communicating instances, and its throughput by the most
oversubscribed link on the way.

The model is deliberately simple and fully determined by the placement:

* **latency**: a request path samples one instance per tier (uniformly
  over the linked instances); its cost is the sum of per-hop costs along
  the placed network paths (``hop_cost_us`` per link traversal). The
  report carries the mean and worst case over all tier-respecting paths.
* **throughput**: each link's steady-state traffic is its reserved
  bandwidth; the aggregate admissible request rate scales down by the
  most oversubscribed physical link (utilization > 1 never happens when
  reservations were enforced, but the report shows the headroom).

This turns the paper's abstract objective (reserved bandwidth) into the
application-visible quantities an operator would graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Dict, List, Sequence

from repro.core.placement import Placement
from repro.core.topology import ApplicationTopology
from repro.datacenter.model import Cloud
from repro.datacenter.network import PathResolver
from repro.errors import ReproError


@dataclass
class PathLatencyReport:
    """Latency statistics over tier-respecting request paths.

    Attributes:
        mean_hops / max_hops: network link traversals per request.
        mean_latency_us / max_latency_us: with the per-hop cost applied.
        paths_sampled: number of distinct tier paths measured.
    """

    mean_hops: float
    max_hops: int
    mean_latency_us: float
    max_latency_us: float
    paths_sampled: int


@dataclass
class MultitierReport:
    """Results of simulating one placement.

    Attributes:
        latency: request-path latency statistics.
        max_link_utilization: reserved bandwidth of the busiest physical
            link divided by its capacity.
        colocated_link_fraction: fraction of topology links whose
            endpoints share a host (those cost zero hops).
    """

    latency: PathLatencyReport
    max_link_utilization: float
    colocated_link_fraction: float
    per_link_reserved: Dict[int, float] = field(default_factory=dict)


class MultitierSimulator:
    """Flow-level simulator bound to a tiered topology and its placement.

    Args:
        topology: a tiered application (node names ``tier<k>-...`` as the
            generators produce, or pass explicit ``tiers``).
        placement: placement covering every node.
        cloud: the physical structure.
        tiers: optional explicit tier partition (list of name lists,
            front tier first); inferred from ``tier<k>-`` prefixes when
            omitted.
        hop_cost_us: latency cost of one link traversal in microseconds.
    """

    def __init__(
        self,
        topology: ApplicationTopology,
        placement: Placement,
        cloud: Cloud,
        tiers: Sequence[Sequence[str]] = None,
        hop_cost_us: float = 20.0,
    ):
        missing = topology.nodes.keys() - placement.assignments.keys()
        if missing:
            raise ReproError(
                f"placement does not cover nodes: {sorted(missing)}"
            )
        self.topology = topology
        self.placement = placement
        self.cloud = cloud
        self.resolver = PathResolver(cloud)
        self.hop_cost_us = hop_cost_us
        self.tiers = (
            [list(t) for t in tiers] if tiers is not None else self._infer()
        )
        if len(self.tiers) < 2:
            raise ReproError("a multi-tier simulation needs >= 2 tiers")

    def _infer(self) -> List[List[str]]:
        by_tier: Dict[int, List[str]] = {}
        for name, node in self.topology.nodes.items():
            if not node.is_vm or not name.startswith("tier"):
                continue
            head = name.split("-", 1)[0]
            try:
                index = int(head[len("tier"):])
            except ValueError:
                continue
            by_tier.setdefault(index, []).append(name)
        return [sorted(by_tier[k]) for k in sorted(by_tier)]

    # ------------------------------------------------------------------

    def _linked(self, upper: str) -> List[str]:
        return [n for n, _ in self.topology.neighbors(upper)]

    def latency_report(self, max_paths: int = 4096) -> PathLatencyReport:
        """Latency over tier-respecting request paths.

        A path picks one instance per tier such that consecutive picks are
        linked; up to ``max_paths`` are enumerated deterministically (the
        cross product is truncated, never sampled, so reruns agree).
        """
        paths = []
        for combo in product(*self.tiers):
            ok = True
            for upper, lower in zip(combo, combo[1:]):
                if lower not in self._linked(upper):
                    ok = False
                    break
            if ok:
                paths.append(combo)
            if len(paths) >= max_paths:
                break
        if not paths:
            raise ReproError("no tier-respecting request path exists")
        hop_counts = []
        for combo in paths:
            hops = 0
            for upper, lower in zip(combo, combo[1:]):
                hops += len(
                    self.resolver.path(
                        self.placement.host_of(upper),
                        self.placement.host_of(lower),
                    )
                )
            # responses retrace the path
            hop_counts.append(2 * hops)
        mean_hops = sum(hop_counts) / len(hop_counts)
        max_hops = max(hop_counts)
        return PathLatencyReport(
            mean_hops=mean_hops,
            max_hops=max_hops,
            mean_latency_us=mean_hops * self.hop_cost_us,
            max_latency_us=max_hops * self.hop_cost_us,
            paths_sampled=len(paths),
        )

    def run(self) -> MultitierReport:
        """Full report: latency plus link-pressure statistics."""
        reserved: Dict[int, float] = {}
        colocated = 0
        for link in self.topology.links:
            path = self.resolver.path(
                self.placement.host_of(link.a),
                self.placement.host_of(link.b),
            )
            if not path:
                colocated += 1
            for idx in path:
                reserved[idx] = reserved.get(idx, 0.0) + link.bw_mbps
        max_util = max(
            (
                mbps / self.cloud.link_capacity_mbps[idx]
                for idx, mbps in reserved.items()
            ),
            default=0.0,
        )
        total_links = len(self.topology.links) or 1
        return MultitierReport(
            latency=self.latency_report(),
            max_link_utilization=max_util,
            colocated_link_fraction=colocated / total_links,
            per_link_reserved=reserved,
        )
