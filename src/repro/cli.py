"""Command-line interface for the Ostro reproduction.

Subcommands:

* ``repro place --template stack.json --dc testbed --algorithm dba*`` --
  optimize a QoS-enhanced Heat template and print the annotated template.
* ``repro experiment {table1,table2,online}`` -- rerun the paper's
  testbed experiments and print the tables.
* ``repro experiment chaos --faults hosts=2,links=1,api=0.05`` -- run a
  seeded fault-injection scenario (host crashes, uplink failures,
  flaky surrogate APIs) and report availability, recovery time, and the
  capacity-leak audit (exit code 2 on any leak); add ``--defrag`` to
  interleave the bounded-disruption background defragmenter; see
  docs/ROBUSTNESS.md.
* ``repro sweep {fig7,fig8,fig9,fig10,fig11} [--hom]`` -- rerun a figure's
  size sweep and print the data series.
* ``repro tradeoff`` -- the Fig. 6 deadline/optimality tradeoff.
* ``repro bench`` -- time EG/BA*/DBA* on the reference scenarios and emit
  machine-readable ``BENCH_<scenario>.json`` files (optionally gated
  against a committed baseline; see benchmarks/perf/).
* ``repro serve --dc pods:4 --arrivals 200 --serial-check`` -- run a
  Poisson arrival storm through the batched, pod-sharded admission
  pipeline and gate the batched fingerprint against the serial
  reference (see docs/SERVICE.md).

``place``, ``experiment``, and ``sweep`` accept ``--trace-out FILE``
(JSONL event stream) and ``--metrics-out FILE`` (Prometheus text
exposition); either flag enables the telemetry subsystem for the run and
prints the search-effort summary to stderr (see docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro import __version__, obs
from repro.core.scheduler import Ostro
from repro.errors import ReproError
from repro.heat.wrapper import OstroHeatWrapper
from repro.sim.experiment import run_placement
from repro.sim.reporting import format_series, format_table
from repro.sim.runner import sweep as run_sweep
from repro.sim.scenarios import (
    mesh_scenario,
    multitier_scenario,
    qfs_testbed_scenario,
    sweep_sizes,
)


def _build_cloud(spec: str):
    from repro.datacenter.builder import cloud_from_spec

    return cloud_from_spec(spec)


def cmd_place(args: argparse.Namespace) -> int:
    cloud = _build_cloud(args.dc)
    ostro = Ostro(cloud)
    wrapper = OstroHeatWrapper(ostro)
    options = {}
    if args.deadline is not None:
        options["deadline_s"] = args.deadline
    try:
        response = wrapper.handle(
            args.template,
            stack_name=args.stack,
            algorithm=args.algorithm,
            commit=False,
            **options,
        )
    except ReproError as exc:
        # A failed run still exits with a one-line diagnostic (and, when
        # telemetry is on, still dumps the trace/metrics collected so far)
        # instead of a raw traceback; exit code 2 distinguishes "the
        # placement failed" from "the invocation was wrong" (1).
        print(
            f"# placement failed ({type(exc).__name__}): {exc}",
            file=sys.stderr,
        )
        return 2
    result = response.result
    print(json.dumps(response.annotated_template, indent=2))
    print(
        f"# reserved bandwidth: {result.reserved_bw_mbps:.0f} Mbps, "
        f"new active hosts: {result.new_active_hosts}, "
        f"runtime: {result.runtime_s:.3f} s",
        file=sys.stderr,
    )
    return 0


_TESTBED_ALGOS = ["egc", "egbw", "eg", "ba*", "dba*"]
_SWEEP_ALGOS = ["egc", "egbw", "eg", "dba*"]


def cmd_experiment(args: argparse.Namespace) -> int:
    if args.name in ("table1", "table2"):
        scenario = qfs_testbed_scenario(uniform=args.name == "table2")
        rows = [
            run_placement(
                algo,
                scenario,
                size=12,
                seed=args.seed,
                deadline_s=0.5,
                **({"max_expansions": 5000} if algo == "ba*" else {}),
            )
            for algo in _TESTBED_ALGOS
        ]
        title = (
            "Table I: QFS under non-uniform resource availability"
            if args.name == "table1"
            else "Table II: QFS under uniform resource availability"
        )
        print(format_table(rows, title=title))
        return 0
    if args.name == "online":
        from repro.core.online import add_vms_to_tier
        from repro.workloads.multitier import build_multitier

        scenario = multitier_scenario(heterogeneous=True)
        cloud = scenario.build_cloud()
        ostro = Ostro(cloud, scenario.build_state(cloud, args.seed))
        topo = build_multitier(total_vms=args.size)
        ostro.place(topo, algorithm="eg", greedy_config=scenario.greedy_config)
        grown = add_vms_to_tier(topo, "tier1", 0.1)
        update = ostro.update(
            grown,
            algorithm="dba*",
            deadline_s=0.3,
            greedy_config=scenario.greedy_config,
        )
        print(
            f"online adaptation: added {len(update.added)} VMs, "
            f"moved {len(update.moved)} existing nodes, "
            f"runtime {update.result.runtime_s:.3f} s"
        )
        return 0
    if args.name == "chaos":
        from repro.sim.chaos import run_chaos_many

        cloud = _build_cloud(args.dc)
        spec = _parse_fault_spec(args.faults)
        options = {}
        if args.deadline is not None:
            options["deadline_s"] = args.deadline
        defrag_config = _defrag_config_from_args(args)
        if defrag_config is not None:
            options["defrag"] = defrag_config
        seeds = list(range(args.seed, args.seed + max(1, args.seeds)))
        reports = run_chaos_many(
            seeds,
            workers=args.workers,
            cloud_spec=args.dc,
            faults={
                "hosts": spec["hosts"],
                "links": spec["links"],
                "api_transient_rate": spec["api"],
                "api_permanent_rate": spec["api-perm"],
                "steps": args.apps,
                "recover_after_steps": spec["recover"],
            },
            apps=args.apps,
            app_vms=args.app_vms,
            algorithm=args.algorithm,
            **options,
        )
        leaked = False
        for report in reports:
            print(
                f"chaos run ({args.faults}) on {cloud.num_hosts} hosts, "
                f"algorithm {args.algorithm}:"
            )
            for line in report.summary_lines():
                print(f"  {line}")
            if report.invariant_violations:
                leaked = True
                for violation in report.invariant_violations:
                    print(
                        f"LEAK: [seed {report.seed}] {violation}",
                        file=sys.stderr,
                    )
        return 2 if leaked else 0
    raise ReproError(f"unknown experiment: {args.name!r}")


#: fault-spec keys -> (parser, default) for ``--faults k=v,...``
_FAULT_SPEC_KEYS = {
    "hosts": (int, 0),
    "links": (int, 0),
    "api": (float, 0.0),
    "api-perm": (float, 0.0),
    "recover": (int, None),
}


def _parse_fault_spec(spec: str) -> dict:
    """Parse ``--faults`` (e.g. ``hosts=2,links=1,api=0.05``) to a dict."""
    values = {key: default for key, (_, default) in _FAULT_SPEC_KEYS.items()}
    if not spec.strip():
        return values
    for part in spec.split(","):
        key, sep, raw = part.strip().partition("=")
        if not sep or key not in _FAULT_SPEC_KEYS:
            raise ReproError(
                f"bad fault spec entry {part.strip()!r}; expected "
                f"key=value with key in {sorted(_FAULT_SPEC_KEYS)}"
            )
        convert = _FAULT_SPEC_KEYS[key][0]
        try:
            values[key] = convert(raw)
        except ValueError as exc:
            raise ReproError(
                f"bad fault spec value {raw!r} for {key!r}"
            ) from exc
    return values


_FIGS = {
    "fig7": ("multitier", "reserved_bw_gbps"),
    "fig8": ("multitier", "hosts_used"),
    "fig9": ("multitier", "runtime_s"),
    "fig10": ("mesh", "reserved_bw_gbps"),
    "fig10rt": ("mesh", "runtime_s"),
    "fig11": ("mesh", "hosts_used"),
}


def cmd_sweep(args: argparse.Namespace) -> int:
    workload, metric = _FIGS[args.figure]
    heterogeneous = not args.hom
    scenario = (
        multitier_scenario(heterogeneous)
        if workload == "multitier"
        else mesh_scenario(heterogeneous)
    )
    sizes = args.sizes or sweep_sizes(workload, heterogeneous)
    rows = run_sweep(
        scenario,
        args.algorithms,
        sizes,
        seeds=tuple(range(args.seeds)),
        skip_infeasible=True,
        workers=args.workers,
    )
    regime = "heterogeneous" if heterogeneous else "homogeneous"
    title = f"{args.figure} ({workload}, {regime}): {metric}"
    print(format_series(rows, metric=metric, title=title))
    if args.chart:
        from repro.sim.plots import ascii_chart

        print()
        print(ascii_chart(rows, metric=metric, title=title))
    return 0


def cmd_replay(args: argparse.Namespace) -> int:
    from repro.sim.arrivals import (
        WorkloadTrace,
        default_app_factory,
        replay,
    )

    cloud = _build_cloud(args.dc)
    trace = WorkloadTrace.poisson(
        arrivals=args.arrivals,
        app_factory=default_app_factory,
        mean_interarrival_s=args.interarrival,
        mean_lifetime_s=args.lifetime,
        seed=args.seed,
    )
    print(
        f"replaying {args.arrivals} tenants "
        f"(1/{args.interarrival:.0f}s arrivals, {args.lifetime:.0f}s "
        f"lifetimes) on {cloud.num_hosts} hosts\n"
    )
    print(f"{'algorithm':>9}  {'accepted':>8}  {'rejected':>8}  "
          f"{'acceptance':>10}  {'peak cpu':>8}")
    if args.workers > 1:
        from repro.sim.parallel import parallel_replay

        reports = parallel_replay(
            trace, cloud, args.algorithms, workers=args.workers
        )
    else:
        reports = [
            replay(trace, cloud, algorithm=algorithm)
            for algorithm in args.algorithms
        ]
    for algorithm, report in zip(args.algorithms, reports):
        print(
            f"{algorithm:>9}  {report.accepted:8d}  {report.rejected:8d}  "
            f"{report.acceptance_rate:10.1%}  "
            f"{report.peak_cpu_used_frac:8.1%}"
        )
    return 0


def cmd_util(args: argparse.Namespace) -> int:
    from repro.datacenter.loadgen import apply_table_iv_load
    from repro.datacenter.state import DataCenterState
    from repro.sim.utilization import format_utilization, utilization_report

    cloud = _build_cloud(args.dc)
    state = DataCenterState(cloud)
    if args.load == "tableiv":
        apply_table_iv_load(state, seed=args.seed)
    print(format_utilization(utilization_report(state)))
    return 0


def cmd_tradeoff(args: argparse.Namespace) -> int:
    scenario = multitier_scenario(heterogeneous=True)
    print(f"Fig 6 tradeoff (multitier {args.size} VMs): deadline sweep")
    print("deadline_s  bandwidth_gbps  new_hosts  runtime_s")
    for deadline in args.deadlines:
        row = run_placement(
            "dba*", scenario, args.size, seed=args.seed, deadline_s=deadline
        )
        print(
            f"{deadline:10.2f}  {row.reserved_bw_gbps:14.2f}  "
            f"{row.new_active_hosts:9.0f}  {row.runtime_s:9.2f}"
        )
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import ServiceConfig, run_service
    from repro.sim.arrivals import WorkloadTrace, default_app_factory

    cloud = _build_cloud(args.dc)
    trace = WorkloadTrace.poisson_storm(
        arrivals=args.arrivals,
        app_factory=default_app_factory,
        mean_interarrival_s=args.interarrival,
        mean_lifetime_s=args.lifetime,
        seed=args.seed,
        burst_every_s=args.burst_every,
        burst_len_s=args.burst_len,
        burst_factor=args.burst_factor,
        priority_levels=args.priorities,
        update_fraction=args.updates,
        scale_every_s=args.scale_every,
    )
    defrag_config = _defrag_config_from_args(args)
    scaling_config = _scaling_config_from_args(args)
    if defrag_config is not None and args.serial_check:
        print(
            "error: --serial-check requires --defrag off (batched and "
            "serial runs legitimately diverge once background moves "
            "depend on the admission interleaving)",
            file=sys.stderr,
        )
        return 1
    config = ServiceConfig(
        algorithm=args.algorithm,
        horizon_s=args.horizon,
        max_batch=args.max_batch,
        deadline_s=args.deadline,
        audit_every=args.audit_every,
        defrag=defrag_config,
        scaling=scaling_config,
    )
    mode = "serial" if args.serial else f"batched(max={args.max_batch})"
    print(
        f"serving {args.arrivals} submissions on {cloud.num_hosts} hosts "
        f"({len(cloud.pods)} pods), horizon {args.horizon:.0f}s, {mode}, "
        f"algorithm {args.algorithm}"
    )
    report = run_service(trace, cloud, config, serial=args.serial)
    print(
        f"  admitted {report.admitted}/{report.requests} "
        f"(rejected {report.rejected}, expired {report.expired}, "
        f"cancelled {report.cancelled}), updates "
        f"{report.updates_applied}+{report.updates_failed} failed"
    )
    print(
        f"  batches: {report.batches}, escalations: "
        f"{report.escalations or '{}'}"
    )
    routes = ", ".join(
        f"{name}={count}"
        for name, count in sorted(report.shard_admissions.items())
    )
    print(f"  routes: {routes or 'none'}")
    print(
        f"  latency p50/p95/p99: {report.latency_p50_s:.1f}/"
        f"{report.latency_p95_s:.1f}/{report.latency_p99_s:.1f} s "
        f"(virtual); {report.placements_per_sec:.0f} placements/s "
        f"(wall {report.wall_s:.2f}s)"
    )
    if defrag_config is not None:
        print(
            f"  defrag: {report.defrag_passes} passes, "
            f"{report.defrag_moves} moves "
            f"({report.defrag_aborted_passes} aborted, "
            f"{report.defrag_replans} replans), "
            f"{report.defrag_move_seconds:.1f} VM-move-s, "
            f"frag recovered {report.frag_recovered:.4f}"
        )
    if scaling_config is not None:
        print(
            f"  scaling: {report.scale_outs} out / {report.scale_ins} in "
            f"({report.scale_evaluations} evaluations, "
            f"{report.scale_out_failures} failures), "
            f"+{report.vms_added}/-{report.vms_removed} VMs, "
            f"{report.scale_consolidation_moves} consolidation moves"
        )
    print(f"  fingerprint: {report.fingerprint}")
    rc = 0
    if report.audit_violations:
        for violation in report.audit_violations:
            print(f"LEAK: {violation}", file=sys.stderr)
        rc = 2
    if args.serial_check and not args.serial:
        reference = run_service(trace, cloud, config, serial=True)
        identical = reference.fingerprint == report.fingerprint
        print(
            f"  serial check: {'identical' if identical else 'MISMATCH'} "
            f"(serial fingerprint {reference.fingerprint})"
        )
        if reference.audit_violations:
            for violation in reference.audit_violations:
                print(f"LEAK: [serial] {violation}", file=sys.stderr)
            rc = 2
        if not identical:
            print(
                "error: batched admission diverged from the serial "
                "reference ordering",
                file=sys.stderr,
            )
            rc = 2
    return rc


def cmd_bench(args: argparse.Namespace) -> int:
    from repro import bench

    if args.service:
        payload = bench.service_benchmark()
        for path in bench.write_results([payload], args.out_dir):
            print(f"# wrote {path}", file=sys.stderr)
        print(
            f"service storm ({payload['arrivals']} submissions, "
            f"{payload['pods']} pods, {payload['hosts']} hosts): "
            f"{payload['placements_per_sec']:.0f} placements/s, "
            f"p99 {payload['latency_p99_s']:.1f}s (virtual), "
            f"fingerprints identical: {payload['fingerprints_identical']}, "
            f"audit violations: {payload['audit_violations']}"
        )
        ok = (
            payload["fingerprints_identical"]
            and payload["audit_violations"] == 0
        )
        return 0 if ok else 1
    if args.defrag:
        payload = bench.defrag_benchmark()
        for path in bench.write_results([payload], args.out_dir):
            print(f"# wrote {path}", file=sys.stderr)
        print(
            f"defrag chaos ({payload['apps']} apps, "
            f"{payload['hosts']} hosts, {payload['hosts_failed']} "
            f"crashes): frag recovered {payload['frag_recovered']:.4f} "
            f"in {payload['defrag_passes']} passes "
            f"({payload['defrag_moves']} moves, "
            f"{payload['defrag_move_seconds']:.1f} VM-move-s), "
            f"availability {payload['availability_defrag']:.2%} vs "
            f"{payload['availability_baseline']:.2%} baseline, "
            f"leaks: {payload['leaks']}, disabled-run fingerprint "
            f"identical: {payload['disabled_fingerprint_identical']}"
        )
        ok = (
            payload["frag_recovered"] > 0
            and payload["leaks"] == 0
            and payload["disabled_fingerprint_identical"]
        )
        return 0 if ok else 1
    if args.elastic:
        payload = bench.elastic_benchmark()
        for path in bench.write_results([payload], args.out_dir):
            print(f"# wrote {path}", file=sys.stderr)
        print(
            f"elastic storm ({payload['arrivals']} submissions over "
            f"{payload['trace_span_s'] / 86400.0:.1f} simulated days, "
            f"{payload['scale_events']} scale events, "
            f"{payload['hosts']} hosts): "
            f"{payload['scale_outs']} out / {payload['scale_ins']} in "
            f"({payload['vms_added']} VMs added, "
            f"{payload['vms_removed']} removed, "
            f"{payload['scale_consolidation_moves']} consolidation "
            f"moves), leaks: {payload['leaks']}, disabled-run "
            f"fingerprint identical: "
            f"{payload['disabled_fingerprint_identical']}, same-seed "
            f"scaled fingerprints identical: "
            f"{payload['scaled_fingerprints_identical']}"
        )
        ok = (
            payload["leaks"] == 0
            and payload["disabled_fingerprint_identical"]
            and payload["scaled_fingerprints_identical"]
        )
        return 0 if ok else 1
    if args.parallel_sweep:
        workers = args.workers if args.workers > 1 else 4
        payload = bench.parallel_sweep_benchmark(workers=workers)
        for path in bench.write_results([payload], args.out_dir):
            print(f"# wrote {path}", file=sys.stderr)
        print(
            f"parallel sweep ({payload['cells']} cells, "
            f"{payload['cpu_count']} cores): "
            f"serial {payload['serial_wall_s']:.2f}s, "
            f"workers={payload['workers']} "
            f"{payload['parallel_wall_s']:.2f}s, "
            f"speedup {payload['speedup']:.2f}x, "
            f"rows identical: {payload['rows_identical']}"
        )
        return 0 if payload["rows_identical"] else 1
    from repro.core import kernel as kernel_mod

    with kernel_mod.use_kernel(args.kernel or kernel_mod.get_kernel()):
        results = bench.run_suite(
            repeats=args.repeats,
            scenarios=args.scenarios or None,
            workers=args.workers,
            gap=args.gap,
            gap_time_limit_s=args.gap_time_limit,
        )
    for path in bench.write_results(results, args.out_dir):
        print(f"# wrote {path}", file=sys.stderr)
    for payload in results:
        bound = payload.get("lower_bound")
        for entry in payload["algorithms"]:
            line = (
                f"{payload['scenario']:>10}-{payload['size']:<3} "
                f"{entry['algorithm']:>5}  wall={entry['wall_s']:7.3f}s  "
                f"expanded={entry['paths_expanded']:6d}  "
                f"scored={entry['candidates_scored']:7d}  "
                f"hash={entry['placement_hash']}"
            )
            if bound is not None:
                gap = entry.get("optimality_gap")
                line += (
                    f"  score={entry['score']:.4f}"
                    f"  lb={bound['score_lower_bound']:.4f}"
                    + (f"  gap<={gap:.0%}" if gap is not None else "  gap=n/a")
                )
            print(line)
    if args.baseline:
        with open(args.baseline, encoding="utf-8") as fh:
            baseline = json.load(fh)
        failures = bench.compare_to_baseline(
            results, baseline, tolerance=args.tolerance
        )
        if failures:
            for failure in failures:
                print(f"REGRESSION: {failure}", file=sys.stderr)
            return 1
        print("# baseline check passed", file=sys.stderr)
    return 0


def _git_changed_files() -> Optional[List[str]]:
    """Python files touched in the working tree (staged, unstaged, or
    untracked), per ``git status``; None when git is unavailable."""
    import subprocess
    from pathlib import Path

    try:
        proc = subprocess.run(
            ["git", "status", "--porcelain", "--untracked-files=all"],
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    files = set()
    for line in proc.stdout.splitlines():
        if len(line) < 4:
            continue
        path = line[3:]
        if " -> " in path:  # rename: lint the new name
            path = path.split(" -> ", 1)[1]
        path = path.strip().strip('"')
        if path.endswith(".py") and Path(path).exists():
            files.add(path)
    return sorted(files)


def cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro import lint

    if args.list_rules:
        for rule in lint.every_rule():
            print(f"{rule.code}  {rule.name:<20} {rule.summary}")
        return 0
    paths = args.paths or ["src/repro"]
    analysis_paths = None
    if args.changed:
        changed = _git_changed_files()
        if changed is None:
            print(
                "error: --changed requires a git checkout",
                file=sys.stderr,
            )
            return 2
        # project rules still see the whole tree; only the report is
        # scoped to the touched files
        analysis_paths = paths
        paths = changed
        if not paths:
            print(lint.render_report([], 0, args.format))
            return 0
    cache = None
    if not args.no_cache:
        cache = lint.LintCache(Path(args.cache_path))
    try:
        diagnostics, files_checked = lint.lint_paths(
            paths, analysis_paths=analysis_paths, cache=cache
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.update_baseline:
        target = Path(args.baseline or lint.DEFAULT_BASELINE_PATH)
        lint.write_baseline(target, diagnostics)
        noun = "entry" if len(diagnostics) == 1 else "entries"
        print(
            f"wrote {len(diagnostics)} {noun} to {target}",
            file=sys.stderr,
        )
        return 0
    if args.baseline:
        try:
            entries = lint.load_baseline(Path(args.baseline))
        except (OSError, ValueError, KeyError, TypeError) as exc:
            print(f"error: bad baseline: {exc}", file=sys.stderr)
            return 2
        diagnostics, stale = lint.compare_baseline(diagnostics, entries)
        for path, code, message in stale:
            print(
                f"stale baseline entry: {path}: {code} {message}",
                file=sys.stderr,
            )
    print(lint.render_report(diagnostics, files_checked, args.format))
    return 1 if diagnostics else 0


def _add_defrag_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--defrag",
        action="store_true",
        help="run the bounded-disruption background defragmenter between "
        "steps (see docs/ROBUSTNESS.md, 'Continuous defragmentation')",
    )
    parser.add_argument(
        "--defrag-every",
        type=int,
        default=1,
        metavar="N",
        help="defrag cadence: consider a pass every N steps (default: "
        "%(default)s)",
    )
    parser.add_argument(
        "--defrag-moves",
        type=int,
        default=8,
        metavar="N",
        help="per-pass migration-step budget (default: %(default)s)",
    )
    parser.add_argument(
        "--defrag-margin",
        type=float,
        default=0.0,
        metavar="GAIN",
        help="minimum objective gain (net of migration cost) a pass must "
        "clear to execute (default: %(default)s)",
    )


def _defrag_config_from_args(args: argparse.Namespace):
    """Build a DefragConfig from the --defrag* flags (None when off)."""
    if not getattr(args, "defrag", False):
        return None
    from repro.defrag import DefragConfig

    return DefragConfig(
        cadence=args.defrag_every,
        max_moves_per_pass=args.defrag_moves,
        margin=args.defrag_margin,
    )


def _add_scaling_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scaling",
        action="store_true",
        help="evaluate trace scale events through the autoscaling loop "
        "(see docs/SERVICE.md, 'Elasticity lifecycle'); requires "
        "--scale-every > 0 to generate any scale events",
    )
    parser.add_argument(
        "--scale-every",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="emit a scale-evaluation event per tenant every N virtual "
        "seconds of its lifetime (default: %(default)s = none)",
    )
    parser.add_argument(
        "--scaling-policy",
        choices=("threshold", "ewma"),
        default="threshold",
        help="scaling policy (default: %(default)s)",
    )
    parser.add_argument(
        "--scale-out-at",
        type=float,
        default=0.75,
        metavar="FRAC",
        help="scale-out utilization threshold (default: %(default)s)",
    )
    parser.add_argument(
        "--scale-in-at",
        type=float,
        default=0.30,
        metavar="FRAC",
        help="scale-in utilization threshold (default: %(default)s)",
    )
    parser.add_argument(
        "--scale-cooldown",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="per-tier hold window after an applied action (default: "
        "%(default)s)",
    )
    parser.add_argument(
        "--scale-consolidate",
        action="store_true",
        help="run a targeted defrag pass over the survivors after every "
        "scale-in",
    )


def _scaling_config_from_args(args: argparse.Namespace):
    """Build a ScalingConfig from the --scaling* flags (None when off)."""
    if not getattr(args, "scaling", False):
        return None
    from repro.scaling import ScalingConfig

    return ScalingConfig(
        policy=args.scaling_policy,
        scale_out_at=args.scale_out_at,
        scale_in_at=args.scale_in_at,
        cooldown_s=args.scale_cooldown,
        seed=args.seed,
        consolidate=args.scale_consolidate,
    )


def _add_workers_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan work across N worker processes (default: 1 = serial; "
        "results are identical for any N, wall-clock aside)",
    )


def _add_telemetry_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help="enable telemetry and write the JSONL event stream here",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="FILE",
        help="enable telemetry and write Prometheus-style metrics here",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ostro (ICDCS 2015) reproduction: topology-aware placement",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    place = sub.add_parser("place", help="optimize a Heat template")
    place.add_argument("--template", required=True, help="template JSON path")
    place.add_argument("--dc", default="testbed", help="'testbed' or 'dc:<racks>'")
    place.add_argument("--algorithm", default="dba*")
    place.add_argument("--stack", default="stack")
    place.add_argument("--deadline", type=float, default=None)
    _add_telemetry_flags(place)
    place.set_defaults(func=cmd_place)

    experiment = sub.add_parser("experiment", help="rerun a paper experiment")
    experiment.add_argument(
        "name", choices=["table1", "table2", "online", "chaos"]
    )
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--size", type=int, default=50)
    experiment.add_argument(
        "--faults",
        default="hosts=2,links=1",
        metavar="SPEC",
        help="chaos only: comma-separated hosts=N,links=N,api=RATE,"
        "api-perm=RATE,recover=STEPS (default: %(default)s)",
    )
    experiment.add_argument(
        "--dc",
        default="dc:6",
        help="chaos only: data center spec, 'testbed' or 'dc:<racks>'",
    )
    experiment.add_argument(
        "--apps",
        type=int,
        default=8,
        help="chaos only: applications to deploy (= scenario steps)",
    )
    experiment.add_argument(
        "--app-vms",
        type=int,
        default=10,
        help="chaos only: VMs per application",
    )
    experiment.add_argument(
        "--algorithm",
        default="dba*",
        help="chaos only: starting algorithm rung",
    )
    experiment.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="chaos only: DBA* deadline in seconds",
    )
    experiment.add_argument(
        "--seeds",
        type=int,
        default=1,
        metavar="K",
        help="chaos only: run K consecutive seeds starting at --seed",
    )
    _add_defrag_flags(experiment)
    _add_workers_flag(experiment)
    _add_telemetry_flags(experiment)
    experiment.set_defaults(func=cmd_experiment)

    sweep_cmd = sub.add_parser("sweep", help="rerun a figure's size sweep")
    sweep_cmd.add_argument("figure", choices=sorted(_FIGS))
    sweep_cmd.add_argument("--hom", action="store_true")
    sweep_cmd.add_argument("--sizes", type=int, nargs="*", default=None)
    sweep_cmd.add_argument("--seeds", type=int, default=1)
    sweep_cmd.add_argument(
        "--algorithms", nargs="*", default=_SWEEP_ALGOS
    )
    sweep_cmd.add_argument(
        "--chart", action="store_true", help="also draw an ASCII chart"
    )
    _add_workers_flag(sweep_cmd)
    _add_telemetry_flags(sweep_cmd)
    sweep_cmd.set_defaults(func=cmd_sweep)

    replay_cmd = sub.add_parser(
        "replay", help="replay a tenant churn stream per algorithm"
    )
    replay_cmd.add_argument("--dc", default="dc:2")
    replay_cmd.add_argument("--arrivals", type=int, default=30)
    replay_cmd.add_argument("--interarrival", type=float, default=20.0)
    replay_cmd.add_argument("--lifetime", type=float, default=600.0)
    replay_cmd.add_argument("--seed", type=int, default=0)
    replay_cmd.add_argument(
        "--algorithms", nargs="*", default=["egc", "egbw", "eg"]
    )
    _add_workers_flag(replay_cmd)
    replay_cmd.set_defaults(func=cmd_replay)

    util = sub.add_parser("util", help="show cluster utilization")
    util.add_argument("--dc", default="dc:24")
    util.add_argument(
        "--load", choices=["none", "tableiv"], default="tableiv"
    )
    util.add_argument("--seed", type=int, default=0)
    util.set_defaults(func=cmd_util)

    tradeoff = sub.add_parser("tradeoff", help="Fig 6 deadline tradeoff")
    tradeoff.add_argument("--size", type=int, default=50)
    tradeoff.add_argument("--seed", type=int, default=0)
    tradeoff.add_argument(
        "--deadlines",
        type=float,
        nargs="*",
        default=[0.5, 1.0, 2.0, 4.0, 8.0],
    )
    tradeoff.set_defaults(func=cmd_tradeoff)

    bench_cmd = sub.add_parser(
        "bench",
        help="time the search hot path on the reference scenarios",
    )
    bench_cmd.add_argument("--repeats", type=int, default=3)
    bench_cmd.add_argument(
        "--scenarios",
        nargs="*",
        default=None,
        help="subset of scenarios (multitier, mesh, qfs); default all",
    )
    bench_cmd.add_argument(
        "--out-dir",
        default=".",
        help="directory for the BENCH_<scenario>.json files",
    )
    bench_cmd.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="compare against a committed baseline JSON and fail on "
        "regression (see benchmarks/perf/)",
    )
    bench_cmd.add_argument("--tolerance", type=float, default=0.25)
    bench_cmd.add_argument(
        "--parallel-sweep",
        action="store_true",
        help="run the serial-vs-parallel sweep acceptance benchmark "
        "instead of the reference suite (records speedup + row "
        "equality in BENCH_parallel_sweep.json)",
    )
    bench_cmd.add_argument(
        "--service",
        action="store_true",
        help="run the admission-service throughput benchmark instead of "
        "the reference suite (records placements/sec, p99 latency, and "
        "the serial-equivalence gate in BENCH_service.json)",
    )
    bench_cmd.add_argument(
        "--defrag",
        action="store_true",
        help="run the continuous-defragmentation acceptance benchmark "
        "instead of the reference suite (canned fragmented chaos "
        "scenario; records frag recovered, availability impact, and "
        "the defrag-off fingerprint gate in BENCH_defrag.json)",
    )
    bench_cmd.add_argument(
        "--elastic",
        action="store_true",
        help="run the long-horizon autoscaling benchmark instead of the "
        "reference suite (a simulated day of arrivals with scale "
        "events; records action counts, the scaling-off fingerprint "
        "gate, and same-seed reproducibility in BENCH_elastic.json)",
    )
    bench_cmd.add_argument(
        "--gap",
        action="store_true",
        help="also compute the MILP optimality-gap oracle per scenario "
        "and report each algorithm's gap against the certified lower "
        "bound (a relaxation: the gap over-states true suboptimality)",
    )
    bench_cmd.add_argument(
        "--gap-time-limit",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="HiGHS budget for the gap oracle; on timeout the solver's "
        "dual bound is used (default 60)",
    )
    bench_cmd.add_argument(
        "--kernel",
        choices=("python", "numpy", "crosscheck"),
        default=None,
        help="scoring kernel for the run (default: the process-wide "
        "kernel, numpy when available)",
    )
    _add_workers_flag(bench_cmd)
    bench_cmd.set_defaults(func=cmd_bench)

    serve = sub.add_parser(
        "serve",
        help="run an arrival storm through the batched, pod-sharded "
        "admission pipeline (see docs/SERVICE.md)",
    )
    serve.add_argument(
        "--dc",
        default="pods:4",
        help="data center spec; 'pods:<P>[x<R>x<H>]' builds a podded DC "
        "the service shards per pod (default: %(default)s)",
    )
    serve.add_argument("--arrivals", type=int, default=200)
    serve.add_argument("--interarrival", type=float, default=20.0)
    serve.add_argument("--lifetime", type=float, default=600.0)
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--algorithm", default="eg")
    serve.add_argument(
        "--horizon",
        type=float,
        default=30.0,
        help="virtual seconds between queue drains (default: %(default)s)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=16,
        help="largest joint admission batch (default: %(default)s)",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-request patience in virtual seconds (default: none)",
    )
    serve.add_argument(
        "--priorities",
        type=int,
        default=1,
        metavar="K",
        help="draw admission priorities from range(K) (default: 1 = all "
        "equal)",
    )
    serve.add_argument(
        "--updates",
        type=float,
        default=0.0,
        metavar="FRAC",
        help="fraction of tenants that grow mid-lifetime through the "
        "online-adaptation path (default: %(default)s)",
    )
    serve.add_argument("--burst-every", type=float, default=0.0)
    serve.add_argument("--burst-len", type=float, default=0.0)
    serve.add_argument("--burst-factor", type=float, default=4.0)
    serve.add_argument(
        "--audit-every",
        type=int,
        default=10,
        metavar="N",
        help="capacity-conservation audit every N drains (default: "
        "%(default)s; the final audit always runs)",
    )
    serve.add_argument(
        "--serial",
        action="store_true",
        help="force per-request admission (max-batch=1), the reference "
        "ordering",
    )
    serve.add_argument(
        "--serial-check",
        action="store_true",
        help="also run the serial reference and fail (exit 2) unless the "
        "batched fingerprint matches it bit-for-bit",
    )
    serve.add_argument(
        "--virtual-time",
        action="store_true",
        help="drive the horizon clock from the trace's virtual "
        "timestamps (always on; flag accepted for explicitness in "
        "scripts)",
    )
    _add_defrag_flags(serve)
    _add_scaling_flags(serve)
    serve.set_defaults(func=cmd_serve)

    lint_cmd = sub.add_parser(
        "lint",
        help="run ostrolint, the domain-aware static analysis (OST0xx)",
    )
    lint_cmd.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files or directories to lint (default: src/repro)",
    )
    lint_cmd.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (json and sarif are schema-stable; see docs)",
    )
    lint_cmd.add_argument(
        "--list-rules",
        action="store_true",
        help="list the registered rules and exit",
    )
    lint_cmd.add_argument(
        "--changed",
        action="store_true",
        help="report only findings in files touched per git status; the "
        "project-wide rules still analyze the full paths",
    )
    lint_cmd.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="subtract the baselined findings from the report "
        "(stale entries are listed on stderr)",
    )
    lint_cmd.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline (--baseline or "
        ".ostrolint-baseline.json) from the current findings and exit",
    )
    lint_cmd.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental cache (.ostrolint-cache.json)",
    )
    lint_cmd.add_argument(
        "--cache-path",
        default=".ostrolint-cache.json",
        metavar="FILE",
        help="incremental cache location (default: %(default)s)",
    )
    lint_cmd.set_defaults(func=cmd_lint)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    trace_out = getattr(args, "trace_out", None)
    metrics_out = getattr(args, "metrics_out", None)
    recorder = None
    if trace_out or metrics_out:
        recorder = obs.enable()
    rc = 1
    try:
        rc = args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        rc = 1
    finally:
        if recorder is not None:
            try:
                if trace_out:
                    lines = obs.write_events_jsonl(recorder, trace_out)
                    print(
                        f"# wrote {lines} events to {trace_out}",
                        file=sys.stderr,
                    )
                if metrics_out:
                    obs.write_metrics_file(recorder, metrics_out)
                    print(
                        f"# wrote metrics to {metrics_out}", file=sys.stderr
                    )
                print(recorder.summary(), file=sys.stderr)
            except OSError as exc:
                print(
                    f"error: cannot write telemetry: {exc}", file=sys.stderr
                )
                rc = 1
            finally:
                obs.disable()
    return rc


if __name__ == "__main__":
    sys.exit(main())
