"""repro: a full reproduction of Ostro (ICDCS 2015).

Ostro is a holistic, topology-aware cloud scheduler: it places a whole
application topology -- VMs, disk volumes, bandwidth-annotated links, and
diversity (anti-affinity) zones -- onto a hierarchical data center at once,
minimizing reserved network bandwidth and newly activated hosts subject to
capacity and placement-diversity constraints.

Quick start::

    from repro import ApplicationTopology, DiversityLevel, Ostro
    from repro.datacenter import build_testbed

    app = ApplicationTopology("hello")
    app.add_vm("web", vcpus=2, mem_gb=2)
    app.add_vm("db", vcpus=4, mem_gb=8)
    app.add_volume("data", size_gb=100)
    app.connect("web", "db", bw_mbps=100)
    app.connect("db", "data", bw_mbps=200)

    ostro = Ostro(build_testbed())
    result = ostro.place(app, algorithm="dba*", deadline_s=0.5)
    print(result.reserved_bw_mbps, result.new_active_hosts)

See DESIGN.md for the module map and EXPERIMENTS.md for the paper
reproduction results.
"""

from repro.core import (
    VM,
    ApplicationTopology,
    BAStar,
    DBAStar,
    DiversityLevel,
    DiversityZone,
    EG,
    EGBW,
    EGC,
    EstimatorConfig,
    GreedyConfig,
    Objective,
    Ostro,
    Placement,
    PlacementAlgorithm,
    PlacementResult,
    Volume,
    make_algorithm,
)
from repro.datacenter import (
    Cloud,
    DataCenterState,
    Level,
    build_cloud,
    build_datacenter,
    build_testbed,
)
from repro.errors import (
    CapacityError,
    DataCenterError,
    DeadlineError,
    PlacementError,
    ReproError,
    SchedulerError,
    TemplateError,
    TopologyError,
)

__version__ = "1.0.0"

__all__ = [
    "ApplicationTopology",
    "BAStar",
    "CapacityError",
    "Cloud",
    "DBAStar",
    "DataCenterError",
    "DataCenterState",
    "DeadlineError",
    "DiversityLevel",
    "DiversityZone",
    "EG",
    "EGBW",
    "EGC",
    "EstimatorConfig",
    "GreedyConfig",
    "Level",
    "Objective",
    "Ostro",
    "Placement",
    "PlacementAlgorithm",
    "PlacementError",
    "PlacementResult",
    "ReproError",
    "SchedulerError",
    "TemplateError",
    "TopologyError",
    "VM",
    "Volume",
    "build_cloud",
    "build_datacenter",
    "build_testbed",
    "make_algorithm",
    "__version__",
]
