"""The batch admission engine: joint placement with per-request fallback.

Requests drained from the :class:`~repro.service.queue.AdmissionQueue`
at a horizon boundary are grouped into *compatible* batches (same
algorithm/options -- the engine's own -- and no duplicate application
names) and placed **jointly**: one global-state snapshot opens the
transaction, each member is routed through the coordinator under the
shared scheduler context (memoized path resolver, shared estimate
caches, one batch span), and any member failure rolls the *whole* batch
back to the snapshot before a per-request fallback replays the members
individually -- so one infeasible request cannot reject its cohort, and
a fully feasible batch costs exactly one transactional boundary.

Because joint placement admits members sequentially in drain order, and
the fallback replays the same order on the restored snapshot, a batched
run is placement-for-placement identical to ``max_batch=1`` serial
admission -- the determinism guarantee the CI service gate pins (see
docs/SERVICE.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro import obs
from repro.core.base import PlacementResult
from repro.errors import DeadlineError, PlacementError
from repro.service.coordinator import ShardedCoordinator
from repro.service.queue import AdmissionRequest


@dataclass(frozen=True)
class BatchPolicy:
    """Knobs of the batch engine.

    Attributes:
        horizon_s: drain period in virtual seconds (the driver drains the
            queue at every multiple of the horizon).
        max_batch: largest joint batch; 1 degenerates to serial
            per-request admission (the reference ordering).
    """

    horizon_s: float = 30.0
    max_batch: int = 16


@dataclass
class AdmissionOutcome:
    """The decision reached for one request.

    Attributes:
        request: the originating queue entry.
        status: "admitted", "rejected", "expired", or "cancelled".
        route: shard name or "global" for admitted requests, else "".
        latency_s: virtual seconds from submission to the decision.
        batch: id of the batch that decided the request (-1 for
            expiries/cancellations decided outside a batch).
        mode: "joint" when the request was admitted inside an intact
            batch transaction, "fallback" after a batch rollback,
            "single" for one-request batches; "" when not admitted.
        error: diagnostic for rejected requests.
        result: the committed placement for admitted requests.
    """

    request: AdmissionRequest
    status: str
    route: str = ""
    latency_s: float = 0.0
    batch: int = -1
    mode: str = ""
    error: str = ""
    result: Optional[PlacementResult] = field(default=None, repr=False)


class BatchAdmissionEngine:
    """Drains request batches into a :class:`ShardedCoordinator`.

    Args:
        coordinator: the sharded admission backend (owns the one global
            state all batches commit into).
        policy: batching knobs.
        algorithm: placement algorithm for every member (None uses the
            coordinator's default).
        **options: algorithm options shared by every member -- the shared
            estimate context that makes batch members compatible.
    """

    def __init__(
        self,
        coordinator: ShardedCoordinator,
        policy: Optional[BatchPolicy] = None,
        algorithm: Optional[str] = None,
        **options: Any,
    ) -> None:
        self.coordinator = coordinator
        self.policy = policy or BatchPolicy()
        self.algorithm = algorithm
        self.options = options
        self.batches = 0
        self.joint_batches = 0
        self.fallback_batches = 0

    # ------------------------------------------------------------------
    # grouping
    # ------------------------------------------------------------------

    def group(
        self, requests: List[AdmissionRequest]
    ) -> List[List[AdmissionRequest]]:
        """Split a drained request list into compatible batches.

        Order-preserving greedy chunking: a batch closes at
        ``max_batch`` members or when the next request's application
        name collides with a member already in the batch (two requests
        for the same name are never jointly placeable -- the second must
        see the first's outcome, so it starts the next batch).
        """
        limit = max(1, self.policy.max_batch)
        batches: List[List[AdmissionRequest]] = []
        current: List[AdmissionRequest] = []
        names: set = set()
        for request in requests:
            if len(current) >= limit or request.app_name in names:
                batches.append(current)
                current, names = [], set()
            current.append(request)
            names.add(request.app_name)
        if current:
            batches.append(current)
        return batches

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------

    def admit_batch(
        self, requests: List[AdmissionRequest], now: float
    ) -> List[AdmissionOutcome]:
        """Decide every drained request; returns outcomes in drain order.

        ``now`` is the virtual time of the horizon boundary; admission
        latency is ``now - submit_time_s`` (a request admitted in the
        same horizon it arrived still waited for the boundary).
        """
        outcomes: List[AdmissionOutcome] = []
        for members in self.group(requests):
            outcomes.extend(self._admit_group(members, now))
        return outcomes

    def _admit_group(
        self, members: List[AdmissionRequest], now: float
    ) -> List[AdmissionOutcome]:
        batch_id = self.batches
        self.batches += 1
        rec = obs.get_recorder()
        if len(members) == 1:
            if rec.enabled:
                rec.inc("ostro_service_batches_total", mode="single")
                rec.event(
                    "batch_drained", batch=batch_id, size=1, mode="single"
                )
            return [self._admit_one(members[0], now, batch_id, "single")]

        snapshot = self.coordinator.state.snapshot()
        outcomes: List[AdmissionOutcome] = []
        admitted_names: List[str] = []
        failed: Optional[AdmissionRequest] = None
        reason = ""
        try:
            with rec.span(
                "service.batch", batch=batch_id, size=len(members)
            ):
                for request in members:
                    try:
                        result, route = self.coordinator.admit(
                            request.topology,
                            algorithm=self.algorithm,
                            **self.options,
                        )
                    except (PlacementError, DeadlineError) as exc:
                        failed, reason = request, str(exc)
                        break
                    admitted_names.append(request.app_name)
                    # telemetry deferred: if a later member aborts the
                    # batch, this admission is rolled back and must never
                    # have counted
                    outcomes.append(
                        self._admitted(
                            request, now, batch_id, "joint", route, result,
                            emit=False,
                        )
                    )
        except BaseException:
            # An unexpected error is not an admission verdict: undo the
            # members already placed before letting it propagate.
            self.coordinator.rollback_to(snapshot, admitted_names)
            raise
        if failed is None:
            self.joint_batches += 1
            for outcome in outcomes:
                self._emit_admitted(outcome)
            if rec.enabled:
                rec.inc("ostro_service_batches_total", mode="joint")
                rec.event(
                    "batch_drained",
                    batch=batch_id,
                    size=len(members),
                    mode="joint",
                )
            return outcomes

        # One member was infeasible: undo the whole transaction, then
        # replay per-request so the feasible members still get in.
        self.coordinator.rollback_to(snapshot, admitted_names)
        self.fallback_batches += 1
        if rec.enabled:
            rec.inc("ostro_service_batches_total", mode="fallback")
            rec.event(
                "batch_fallback",
                batch=batch_id,
                failed_app=failed.app_name,
                reason=reason,
            )
            rec.event(
                "batch_drained",
                batch=batch_id,
                size=len(members),
                mode="fallback",
            )
        return [
            self._admit_one(request, now, batch_id, "fallback")
            for request in members
        ]

    def _admit_one(
        self,
        request: AdmissionRequest,
        now: float,
        batch_id: int,
        mode: str,
    ) -> AdmissionOutcome:
        try:
            result, route = self.coordinator.admit(
                request.topology, algorithm=self.algorithm, **self.options
            )
        except (PlacementError, DeadlineError) as exc:
            rec = obs.get_recorder()
            if rec.enabled:
                rec.inc("ostro_service_requests_total", outcome="rejected")
                rec.event(
                    "request_rejected",
                    request=request.request_id,
                    app=request.app_name,
                    reason=str(exc),
                )
            return AdmissionOutcome(
                request=request,
                status="rejected",
                latency_s=now - request.submit_time_s,
                batch=batch_id,
                mode=mode,
                error=str(exc),
            )
        return self._admitted(request, now, batch_id, mode, route, result)

    def _admitted(
        self,
        request: AdmissionRequest,
        now: float,
        batch_id: int,
        mode: str,
        route: str,
        result: PlacementResult,
        emit: bool = True,
    ) -> AdmissionOutcome:
        outcome = AdmissionOutcome(
            request=request,
            status="admitted",
            route=route,
            latency_s=now - request.submit_time_s,
            batch=batch_id,
            mode=mode,
            result=result,
        )
        if emit:
            self._emit_admitted(outcome)
        return outcome

    @staticmethod
    def _emit_admitted(outcome: AdmissionOutcome) -> None:
        rec = obs.get_recorder()
        if not rec.enabled:
            return
        rec.inc("ostro_service_requests_total", outcome="admitted")
        rec.observe(
            "ostro_service_admission_latency_seconds", outcome.latency_s
        )
        rec.event(
            "request_admitted",
            request=outcome.request.request_id,
            app=outcome.request.app_name,
            route=outcome.route,
            latency_s=outcome.latency_s,
        )


def expire_outcomes(
    expired: List[AdmissionRequest], now: float
) -> List[AdmissionOutcome]:
    """Outcome records (and telemetry) for deadline-expired requests."""
    rec = obs.get_recorder()
    outcomes = []
    for request in expired:
        waited = now - request.submit_time_s
        if rec.enabled:
            rec.inc("ostro_service_requests_total", outcome="expired")
            rec.event(
                "request_expired",
                request=request.request_id,
                app=request.app_name,
                waited_s=waited,
            )
        outcomes.append(
            AdmissionOutcome(
                request=request, status="expired", latency_s=waited
            )
        )
    return outcomes
