"""Ostro-as-a-service: a long-running, batched admission pipeline.

The paper frames placement as one ``place()`` call that owns the whole
data center; a production scheduler instead runs as a *service*: stack
submissions arrive concurrently, are queued, drained in batches on a
horizon, and placed by per-pod scheduler shards behind a root
coordinator. This package provides the three layers:

* :mod:`repro.service.queue` -- the admission queue: deterministic
  virtual-time ordering, priorities, per-request deadlines.
* :mod:`repro.service.batch` -- the batch admission engine: drains the
  queue on a configurable horizon and places each batch jointly under one
  transactional boundary, falling back to per-request admission when a
  batch member is infeasible.
* :mod:`repro.service.shard` / :mod:`repro.service.coordinator` -- the
  pod-sharded scheduler: per-pod search domains behind a root coordinator
  that routes to the least-loaded feasible shard and escalates cross-pod
  or shard-infeasible placements to a global pass.

:mod:`repro.service.driver` wires the layers into a virtual-time arrival
storm (``repro serve``); see docs/SERVICE.md for the semantics and the
serial-equivalence determinism guarantee.
"""

from repro.service.batch import AdmissionOutcome, BatchAdmissionEngine, BatchPolicy
from repro.service.coordinator import ShardedCoordinator
from repro.service.driver import ServiceConfig, ServiceReport, run_service
from repro.service.queue import AdmissionQueue, AdmissionRequest, request_sort_key
from repro.service.shard import PodShard, build_shards

__all__ = [
    "AdmissionOutcome",
    "AdmissionQueue",
    "AdmissionRequest",
    "BatchAdmissionEngine",
    "BatchPolicy",
    "PodShard",
    "ServiceConfig",
    "ServiceReport",
    "ShardedCoordinator",
    "build_shards",
    "request_sort_key",
    "run_service",
]
