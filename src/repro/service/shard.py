"""Pod shards: per-pod search domains for the sharded coordinator.

A :class:`PodShard` wraps one pod's hosts (or one rack's, in pod-less
data centers, where each rack acts as its own implicit pod -- see
:mod:`repro.datacenter.model`) behind a private
:class:`~repro.core.scheduler.Ostro` whose state is a *masked view* of
the coordinator's global state: before every search the shard state is
restored from a global snapshot with every out-of-shard host's free CPU,
memory, and disk zeroed. The search algorithms only ever consult the
free arrays, so zeroing is enough to confine the search to the shard --
no algorithm changes, and no resource-array writes outside the sanctioned
writer modules (the masked snapshot is plain tuples fed to
:meth:`~repro.datacenter.state.DataCenterState.restore`).

Shards never commit: they return candidate placements that the
coordinator commits into the single global state (one source of truth,
one transactional boundary). Because placement algorithms never mutate
the state they search (:meth:`repro.core.base.PlacementAlgorithm.place`),
the shard scratch state must still equal its sync point after every
search; :meth:`PodShard.scratch_violations` audits exactly that across
the shard boundary.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.core.base import PlacementResult
from repro.core.greedy import GreedyConfig
from repro.core.scheduler import Ostro
from repro.core.topology import ApplicationTopology
from repro.datacenter.model import Cloud, Level
from repro.datacenter.state import DataCenterState

Snapshot = Tuple[Tuple[float, ...], ...]


class PodShard:
    """One pod-scoped search domain.

    Args:
        shard_id: dense shard index (tie-breaker in routing order).
        name: human-readable shard name (the pod or rack name).
        cloud: the shared physical structure.
        host_indices: global indices of the hosts this shard owns.
        theta_bw / theta_c / greedy_config: forwarded to the shard's
            private :class:`Ostro` so shard searches score exactly like
            global ones.
        best_effort_cpu_factor: CPU-policy factor of the global state,
            mirrored so reservation arithmetic matches.
    """

    def __init__(
        self,
        shard_id: int,
        name: str,
        cloud: Cloud,
        host_indices: Sequence[int],
        theta_bw: float = 0.6,
        theta_c: float = 0.4,
        greedy_config: Optional[GreedyConfig] = None,
        best_effort_cpu_factor: float = 0.5,
    ) -> None:
        self.shard_id = shard_id
        self.name = name
        self.cloud = cloud
        self.hosts: Tuple[int, ...] = tuple(sorted(host_indices))
        self._host_set = frozenset(self.hosts)
        self.disks: Tuple[int, ...] = tuple(
            disk.index for h in self.hosts for disk in cloud.hosts[h].disks
        )
        self._disk_set = frozenset(self.disks)
        self.racks: Tuple[int, ...] = tuple(
            sorted({cloud.hosts[h].rack.index for h in self.hosts})
        )
        self.nominal_cpu = sum(cloud.hosts[h].cpu_cores for h in self.hosts)
        self.state = DataCenterState(
            cloud, best_effort_cpu_factor=best_effort_cpu_factor
        )
        self.ostro = Ostro(
            cloud,
            state=self.state,
            theta_bw=theta_bw,
            theta_c=theta_c,
            greedy_config=greedy_config,
        )
        self.searches = 0
        self._last_sync: Optional[Snapshot] = None

    # ------------------------------------------------------------------
    # masked view
    # ------------------------------------------------------------------

    def masked_snapshot(self, snapshot: Snapshot) -> Snapshot:
        """A global state snapshot with out-of-shard capacity zeroed.

        Free CPU/memory of foreign hosts and free space of foreign disks
        drop to zero, so no search step can place there; bandwidth and
        unit counts keep their global values (a shard placement still
        reserves real uplink bandwidth, and host activity is a global
        fact the objective's u_c term must see).
        """
        cpu, mem, disk, bw, units = snapshot
        masked_cpu = tuple(
            v if i in self._host_set else 0.0 for i, v in enumerate(cpu)
        )
        masked_mem = tuple(
            v if i in self._host_set else 0.0 for i, v in enumerate(mem)
        )
        masked_disk = tuple(
            v if i in self._disk_set else 0.0 for i, v in enumerate(disk)
        )
        return (masked_cpu, masked_mem, masked_disk, bw, units)

    def sync(self, snapshot: Snapshot) -> None:
        """Refresh the shard's scratch state from a global snapshot."""
        masked = self.masked_snapshot(snapshot)
        self.state.restore(masked)
        self._last_sync = masked

    # ------------------------------------------------------------------
    # routing inputs
    # ------------------------------------------------------------------

    def owns_host(self, host: int) -> bool:
        """True when the given global host index belongs to this shard."""
        return host in self._host_set

    def load(self, global_state: DataCenterState) -> float:
        """Used-CPU fraction over the shard's hosts (routing metric)."""
        free = sum(global_state.free_cpu[h] for h in self.hosts)
        if self.nominal_cpu <= 0:
            return 1.0
        return 1.0 - free / self.nominal_cpu

    def screen(
        self, topology: ApplicationTopology, global_state: DataCenterState
    ) -> Optional[str]:
        """Cheap infeasibility screen; None means "worth searching here".

        Checks structural fit (diversity zones the shard cannot satisfy)
        and aggregate capacity. The screen is conservative: passing it
        does not guarantee a feasible placement (the search still
        decides), but a rejection is definite.
        """
        for zone in topology.zones:
            if zone.level >= Level.POD:
                return "needs_pod_separation"
            if zone.level == Level.RACK and len(zone.members) > len(self.racks):
                return "insufficient_racks"
            if zone.level == Level.HOST and len(zone.members) > len(self.hosts):
                return "insufficient_hosts"
        free_cpu = [global_state.free_cpu[h] for h in self.hosts]
        free_mem = [global_state.free_mem[h] for h in self.hosts]
        need_cpu = 0.0
        need_mem = 0.0
        widest: Optional[Tuple[float, float]] = None
        for node in topology.vms():
            vcpus = global_state.reserved_vcpus(node)
            need_cpu += vcpus
            need_mem += node.mem_gb
            if widest is None or vcpus > widest[0]:
                widest = (vcpus, node.mem_gb)
        if need_cpu > sum(free_cpu) or need_mem > sum(free_mem):
            return "insufficient_capacity"
        if widest is not None and not any(
            c >= widest[0] and m >= widest[1]
            for c, m in zip(free_cpu, free_mem)
        ):
            return "largest_vm_does_not_fit"
        volumes = topology.volumes()
        if volumes:
            free_disk = [global_state.free_disk[d] for d in self.disks]
            if sum(v.size_gb for v in volumes) > sum(free_disk):
                return "insufficient_disk"
            biggest = max(v.size_gb for v in volumes)
            if not any(f >= biggest for f in free_disk):
                return "largest_volume_does_not_fit"
        return None

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------

    def search(
        self,
        snapshot: Snapshot,
        topology: ApplicationTopology,
        algorithm: str = "eg",
        **options: Any,
    ) -> PlacementResult:
        """Search for a placement confined to this shard (no commit).

        The shard state is re-synced from ``snapshot`` first, so the
        search always sees the current global truth (masked to the
        shard). Raises :class:`~repro.errors.PlacementError` when the
        shard cannot host the topology.
        """
        self.sync(snapshot)
        self.searches += 1
        return self.ostro.place(
            topology, algorithm=algorithm, commit=False, **options
        )

    def scratch_violations(self) -> List[str]:
        """Audit the shard boundary: scratch state equals its sync point.

        Search algorithms must not mutate the state they were handed; a
        drifted scratch state means shard-local search work leaked across
        the boundary. Returns findings (empty = clean).
        """
        if self._last_sync is None:
            return []
        if self.state.snapshot() != self._last_sync:
            return [
                f"shard {self.name}: scratch state drifted from its "
                f"sync point after {self.searches} searches"
            ]
        return []


def build_shards(
    cloud: Cloud,
    theta_bw: float = 0.6,
    theta_c: float = 0.4,
    greedy_config: Optional[GreedyConfig] = None,
    best_effort_cpu_factor: float = 0.5,
) -> List[PodShard]:
    """Partition a cloud into pod shards.

    Podded data centers get one shard per pod; pod-less data centers get
    one shard per rack (each rack is its own implicit pod, matching
    :meth:`repro.datacenter.model.Cloud.distance`). Mixed clouds get
    both. Shard ids follow pod/rack indexing order, so the partition is
    deterministic for a given cloud spec.
    """
    domains: List[Tuple[str, List[int]]] = []
    for pod in cloud.pods:
        hosts = [h.index for rack in pod.racks for h in rack.hosts]
        domains.append((pod.name, hosts))
    for dc in cloud.datacenters:
        for rack in dc.racks:  # pod-less racks attach straight to the root
            domains.append((rack.name, [h.index for h in rack.hosts]))
    shards: List[PodShard] = []
    for shard_id, (name, hosts) in enumerate(domains):
        shards.append(
            PodShard(
                shard_id,
                name,
                cloud,
                hosts,
                theta_bw=theta_bw,
                theta_c=theta_c,
                greedy_config=greedy_config,
                best_effort_cpu_factor=best_effort_cpu_factor,
            )
        )
    return shards

