"""The admission queue: deterministic ordering of concurrent submissions.

Requests carry a *virtual* submission time (simulated seconds, exactly
like :class:`repro.sim.arrivals.TraceEvent` timestamps), an integer
priority (lower = more urgent), and an optional per-request deadline.
Draining follows the same discipline as
:func:`repro.sim.arrivals.event_sort_key`: a total, tie-broken order so
any two runs over the same submissions admit in the same sequence --
this is what makes batched admission reproducible against the serial
baseline (see docs/SERVICE.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.core.topology import ApplicationTopology
from repro.errors import ReproError


@dataclass(frozen=True)
class AdmissionRequest:
    """One queued stack submission.

    Attributes:
        request_id: unique, monotonically increasing id within the queue.
        topology: the application to admit (its name identifies the app).
        submit_time_s: virtual submission timestamp.
        priority: admission priority; *lower* numbers drain first
            (priority 0 preempts priority 1 within the same drain).
        deadline_s: optional patience budget; a request still queued more
            than this many virtual seconds after submission expires
            instead of being admitted.
    """

    request_id: int
    topology: ApplicationTopology
    submit_time_s: float
    priority: int = 0
    deadline_s: Optional[float] = None

    @property
    def app_name(self) -> str:
        return self.topology.name

    def expired(self, now: float) -> bool:
        """True when the request's patience ran out at virtual time now."""
        if self.deadline_s is None:
            return False
        return now > self.submit_time_s + self.deadline_s


def request_sort_key(request: AdmissionRequest) -> Tuple[int, float, int]:
    """Canonical drain order: priority, then virtual time, then id.

    Mirrors the :func:`repro.sim.arrivals.event_sort_key` discipline --
    every comparison ends at a unique integer (the request id), so the
    order is total and two drains over the same pending set are
    bit-identical.
    """
    return (request.priority, request.submit_time_s, request.request_id)


class AdmissionQueue:
    """FIFO-with-priorities buffer of pending admission requests.

    Submissions accumulate between horizon boundaries; :meth:`drain`
    returns everything submitted up to (and including) the boundary in
    :func:`request_sort_key` order, separating requests whose deadline
    already passed.
    """

    def __init__(self) -> None:
        self._pending: Dict[int, AdmissionRequest] = {}
        self._next_id = 0

    def __len__(self) -> int:
        return len(self._pending)

    def submit(
        self,
        topology: ApplicationTopology,
        submit_time_s: float,
        priority: int = 0,
        deadline_s: Optional[float] = None,
    ) -> AdmissionRequest:
        """Enqueue one submission and return its request record."""
        request = AdmissionRequest(
            request_id=self._next_id,
            topology=topology,
            submit_time_s=submit_time_s,
            priority=priority,
            deadline_s=deadline_s,
        )
        self._next_id += 1
        self._pending[request.request_id] = request
        rec = obs.get_recorder()
        if rec.enabled:
            rec.event(
                "request_enqueued",
                request=request.request_id,
                app=request.app_name,
                priority=priority,
            )
        return request

    def cancel(self, request_id: int) -> AdmissionRequest:
        """Withdraw a still-pending request (e.g. the tenant departed)."""
        request = self._pending.pop(request_id, None)
        if request is None:
            raise ReproError(f"unknown or already drained request {request_id}")
        rec = obs.get_recorder()
        if rec.enabled:
            rec.event(
                "request_cancelled",
                request=request.request_id,
                app=request.app_name,
            )
        return request

    def pending_ids(self) -> List[int]:
        """Ids of all pending requests, ascending."""
        return sorted(self._pending)

    def drain(
        self, now: float
    ) -> Tuple[List[AdmissionRequest], List[AdmissionRequest]]:
        """Remove everything submitted by virtual time ``now``.

        Returns ``(ready, expired)``: both in :func:`request_sort_key`
        order, with ``expired`` holding the requests whose per-request
        deadline passed while they waited. Requests submitted after
        ``now`` stay queued for a later drain.
        """
        due = sorted(
            (
                r
                for r in self._pending.values()
                if r.submit_time_s <= now
            ),
            key=request_sort_key,
        )
        ready: List[AdmissionRequest] = []
        expired: List[AdmissionRequest] = []
        for request in due:
            del self._pending[request.request_id]
            (expired if request.expired(now) else ready).append(request)
        rec = obs.get_recorder()
        if rec.enabled:
            rec.set_gauge("ostro_service_queue_depth", float(len(self._pending)))
        return ready, expired
