"""The service driver: a virtual-time arrival storm through the pipeline.

:func:`run_service` replays a :class:`~repro.sim.arrivals.WorkloadTrace`
(typically a :meth:`~repro.sim.arrivals.WorkloadTrace.poisson_storm`)
against the full admission pipeline: arrivals enqueue, the queue drains
at every horizon boundary into the batch engine, the engine places
batches through the pod-sharded coordinator, departures release live
applications or cancel still-queued requests, and "update" events grow a
live application's first tier through the online-adaptation path
(:func:`repro.core.online.update_application`).

Time is *virtual* -- the trace's simulated seconds drive the horizon
clock, so a run is a pure function of (trace, cloud, config) and the
serial/batched fingerprint gate is meaningful. Wall-clock is measured
only as throughput instrumentation (placements per second), which is why
this module lives outside the wall-clock-banned core packages.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import obs
from repro.core.online import add_vms_to_tier, remove_vms_from_tier
from repro.datacenter.model import Cloud
from repro.defrag import (
    DefragConfig,
    DefragExecutor,
    DefragPlanner,
    DefragStats,
    run_defrag_tick,
)
from repro.errors import PlacementError, ReproError
from repro.scaling import (
    ACTION_IN,
    ACTION_OUT,
    AutoScaler,
    ScalingConfig,
    consolidation_config,
)
from repro.service.batch import (
    AdmissionOutcome,
    BatchAdmissionEngine,
    BatchPolicy,
    expire_outcomes,
)
from repro.service.coordinator import ShardedCoordinator
from repro.service.queue import AdmissionQueue
from repro.sim.arrivals import WorkloadTrace
from repro.sim.chaos import placement_fingerprint
from repro.sim.metrics import nearest_rank_percentile


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of one service run.

    Attributes:
        algorithm: placement algorithm for every admission.
        horizon_s: virtual seconds between queue drains.
        max_batch: largest joint batch (1 = serial reference mode).
        deadline_s: per-request patience; None = requests never expire.
        update_fraction: tier-growth factor applied on "update" events
            (fraction of the first tier's size, see
            :func:`repro.core.online.add_vms_to_tier`).
        audit_every: run the coordinator's capacity-conservation audit
            every N drains (0 = only the final audit).
        theta_bw / theta_c: objective weights, forwarded everywhere.
        defrag: optional background-defragmenter configuration; ticks as
            the lowest-priority action of every drain. Note that with
            defrag on, batched and serial runs legitimately diverge (a
            different admission interleaving yields different
            fragmentation, hence different background moves), so the
            serial-equivalence gate only applies with defrag off.
        scaling: optional autoscaling configuration
            (:class:`repro.scaling.ScalingConfig`). Trace "scale" events
            evaluate live applications through the configured policy;
            scale-out goes through the coordinator's update path,
            scale-in through :func:`repro.core.online.
            remove_vms_from_tier`. ``None`` (or ``enabled=False``)
            ignores scale events entirely, leaving the run bit-identical
            to a scaling-free baseline.
    """

    algorithm: str = "eg"
    horizon_s: float = 30.0
    max_batch: int = 16
    deadline_s: Optional[float] = None
    update_fraction: float = 0.2
    audit_every: int = 10
    theta_bw: float = 0.6
    theta_c: float = 0.4
    defrag: Optional[DefragConfig] = None
    scaling: Optional[ScalingConfig] = None


@dataclass
class ServiceReport:
    """What one service run did, end to end.

    Attributes:
        requests: total submissions seen.
        admitted / rejected / expired / cancelled: decision counts
            (the four sum to ``requests`` once the run finishes).
        updates_applied / updates_failed: online-adaptation outcomes.
        drains: horizon boundaries processed.
        batches: batch counts by mode ("single" / "joint" / "fallback").
        escalations: escalation counts by reason.
        shard_admissions: admitted count per route (shard name or
            "global").
        latency_p50_s / latency_p95_s / latency_p99_s: virtual admission
            latency percentiles over admitted requests.
        placements_per_sec: admitted placements per wall-clock second.
        wall_s: wall-clock duration of the run.
        peak_queue_depth: most requests ever waiting at a drain.
        fingerprint: digest of the *whole decision trajectory* -- every
            admitted placement's assignments (in
            :func:`~repro.sim.chaos.placement_fingerprint` line format),
            every rejection/expiry/cancellation, every update outcome,
            in decision order, with the final committed state's
            fingerprint mixed in. The serial-equivalence gate compares
            these across runs; hashing only the final state would go
            vacuous whenever every tenant departs before the trace ends.
        audit_violations: findings from every capacity audit (empty =
            conservation held throughout).
        outcomes: every per-request decision, in decision order.
        defrag_passes / defrag_aborted_passes / defrag_replans /
            defrag_moves / defrag_move_seconds / frag_recovered:
            background-defragmentation accounting (all 0 with the
            defragmenter off); see :mod:`repro.defrag`.
        scale_evaluations / scale_outs / scale_ins /
            scale_out_failures / vms_added / vms_removed /
            scale_consolidation_moves: autoscaling accounting (all 0
            with scaling off); see :mod:`repro.scaling`.
    """

    requests: int = 0
    admitted: int = 0
    rejected: int = 0
    expired: int = 0
    cancelled: int = 0
    updates_applied: int = 0
    updates_failed: int = 0
    drains: int = 0
    batches: Dict[str, int] = field(default_factory=dict)
    escalations: Dict[str, int] = field(default_factory=dict)
    shard_admissions: Dict[str, int] = field(default_factory=dict)
    latency_p50_s: float = 0.0
    latency_p95_s: float = 0.0
    latency_p99_s: float = 0.0
    placements_per_sec: float = 0.0
    wall_s: float = 0.0
    peak_queue_depth: int = 0
    fingerprint: str = ""
    audit_violations: List[str] = field(default_factory=list)
    outcomes: List[AdmissionOutcome] = field(default_factory=list, repr=False)
    defrag_passes: int = 0
    defrag_aborted_passes: int = 0
    defrag_replans: int = 0
    defrag_moves: int = 0
    defrag_move_seconds: float = 0.0
    frag_recovered: float = 0.0
    scale_evaluations: int = 0
    scale_outs: int = 0
    scale_ins: int = 0
    scale_out_failures: int = 0
    vms_added: int = 0
    vms_removed: int = 0
    scale_consolidation_moves: int = 0


def _feed_outcome(digest: "hashlib._Hash", outcome: AdmissionOutcome) -> None:
    """Hash one decision into the trajectory digest."""
    app = outcome.request.app_name
    if outcome.status == "admitted" and outcome.result is not None:
        assignments = outcome.result.placement.assignments
        for node in sorted(assignments):
            a = assignments[node]
            digest.update(f"{app}/{node}@{a.host}:{a.disk}\n".encode("utf-8"))
    else:
        digest.update(f"{app}:{outcome.status}\n".encode("utf-8"))


def run_service(
    trace: WorkloadTrace,
    cloud: Cloud,
    config: Optional[ServiceConfig] = None,
    serial: bool = False,
) -> ServiceReport:
    """Run one arrival storm through the full admission pipeline.

    Args:
        trace: the workload (its events drive the virtual clock).
        cloud: the physical structure to admit into.
        config: pipeline knobs.
        serial: force ``max_batch=1`` -- the per-request reference
            ordering whose fingerprint batched runs must reproduce.

    Returns a :class:`ServiceReport`; ``report.fingerprint`` digests the
    final committed placements for the serial-equivalence gate.
    """
    cfg = config or ServiceConfig()
    coordinator = ShardedCoordinator(
        cloud,
        algorithm=cfg.algorithm,
        theta_bw=cfg.theta_bw,
        theta_c=cfg.theta_c,
    )
    policy = BatchPolicy(
        horizon_s=cfg.horizon_s,
        max_batch=1 if serial else cfg.max_batch,
    )
    engine = BatchAdmissionEngine(coordinator, policy)
    queue = AdmissionQueue()
    report = ServiceReport()
    rec = obs.get_recorder()

    planner: Optional[DefragPlanner] = None
    executor: Optional[DefragExecutor] = None
    defrag_stats: Optional[DefragStats] = None
    if cfg.defrag is not None and cfg.defrag.enabled:
        planner = DefragPlanner(cfg.defrag)
        executor = DefragExecutor(coordinator.ostro, cfg.defrag)
        defrag_stats = DefragStats()

    scaler: Optional[AutoScaler] = None
    consolidate: Optional[DefragConfig] = None
    scale_defrag_stats: Optional[DefragStats] = None
    if cfg.scaling is not None and cfg.scaling.enabled:
        scaler = AutoScaler(cfg.scaling)
        consolidate = consolidation_config(cfg.scaling, cfg.algorithm)
        scale_defrag_stats = DefragStats()

    #: app_id -> pending request id (still queued)
    queued: Dict[int, int] = {}
    #: app_id -> live topology (admitted and not yet departed)
    live: Dict[int, object] = {}
    latencies: List[float] = []
    digest = hashlib.sha256()
    wall_start = time.perf_counter()

    def drain(now: float) -> None:
        report.peak_queue_depth = max(report.peak_queue_depth, len(queue))
        ready, timed_out = queue.drain(now)
        if not ready and not timed_out:
            return
        report.drains += 1
        outcomes = expire_outcomes(timed_out, now)
        outcomes.extend(engine.admit_batch(ready, now))
        for outcome in outcomes:
            app_id = int(outcome.request.app_name.split("-", 1)[1])
            queued.pop(app_id, None)
            if outcome.status == "admitted":
                report.admitted += 1
                latencies.append(outcome.latency_s)
                route = outcome.route
                report.shard_admissions[route] = (
                    report.shard_admissions.get(route, 0) + 1
                )
                live[app_id] = outcome.request.topology
                if scaler is not None:
                    scaler.register(
                        outcome.request.app_name, outcome.request.topology
                    )
            elif outcome.status == "rejected":
                report.rejected += 1
            elif outcome.status == "expired":
                report.expired += 1
            _feed_outcome(digest, outcome)
        report.outcomes.extend(outcomes)
        if cfg.audit_every > 0 and report.drains % cfg.audit_every == 0:
            report.audit_violations.extend(coordinator.verify_state())
        # background defrag runs last, after every admission decision of
        # the drain has been made (lowest priority)
        if (
            planner is not None
            and executor is not None
            and defrag_stats is not None
        ):
            run_defrag_tick(coordinator.ostro, planner, executor, defrag_stats)

    horizon = max(cfg.horizon_s, 1e-9)
    boundary = horizon
    for event in trace.events:
        while event.time > boundary:
            drain(boundary)
            boundary += horizon
        if event.kind == "arrive":
            report.requests += 1
            request = queue.submit(
                trace.topologies[event.app_id],
                submit_time_s=event.time,
                priority=trace.priorities.get(event.app_id, 0),
                deadline_s=cfg.deadline_s,
            )
            queued[event.app_id] = request.request_id
        elif event.kind == "depart":
            if event.app_id in live:
                coordinator.remove(f"app-{event.app_id}")
                del live[event.app_id]
                if scaler is not None:
                    scaler.forget(f"app-{event.app_id}")
            elif event.app_id in queued:
                # Pop the bookkeeping entry first, then cancel. The queue
                # may have already expired or drained this request within
                # the same horizon (the stale map entry is cleared lazily
                # at the next drain) -- a duplicate departure or a
                # departure racing an expiry must neither raise nor
                # double-count ``report.cancelled``.
                request_id = queued.pop(event.app_id)
                try:
                    request = queue.cancel(request_id)
                except ReproError:
                    continue
                report.cancelled += 1
                if rec.enabled:
                    rec.inc(
                        "ostro_service_requests_total", outcome="cancelled"
                    )
                cancelled = AdmissionOutcome(
                    request=request,
                    status="cancelled",
                    latency_s=event.time - request.submit_time_s,
                )
                _feed_outcome(digest, cancelled)
                report.outcomes.append(cancelled)
            # rejected / expired apps: their departure is a no-op
        elif event.kind == "update":
            if event.app_id not in live:
                continue
            name = f"app-{event.app_id}"
            current = coordinator.ostro.deployed(name).topology
            grown = add_vms_to_tier(current, "vm", cfg.update_fraction)
            try:
                coordinator.update(grown)
            except PlacementError:
                report.updates_failed += 1
                digest.update(f"{name}:update-failed\n".encode("utf-8"))
            else:
                report.updates_applied += 1
                live[event.app_id] = grown
                assignments = coordinator.ostro.deployed(name).placement.assignments
                for node in sorted(assignments):
                    a = assignments[node]
                    digest.update(
                        f"{name}/{node}~{a.host}:{a.disk}\n".encode("utf-8")
                    )
        elif event.kind == "scale":
            # ignored entirely with scaling off: no evaluation, no digest
            # input, so scaling-free runs stay bit-identical to baseline
            if scaler is None or event.app_id not in live:
                continue
            name = f"app-{event.app_id}"
            prefix = scaler.config.tier_prefix
            current = coordinator.ostro.deployed(name).topology
            decision = scaler.evaluate(name, current, event.time)
            if decision.action == ACTION_OUT:
                grown = add_vms_to_tier(
                    current, prefix, 0.0, count=decision.delta
                )
                try:
                    coordinator.update(grown)
                except PlacementError:
                    scaler.failed(name, ACTION_OUT)
                    digest.update(
                        f"{name}:scale-out-failed\n".encode("utf-8")
                    )
                else:
                    scaler.applied(
                        name, event.time, ACTION_OUT, decision.delta
                    )
                    live[event.app_id] = grown
                    assignments = coordinator.ostro.deployed(
                        name
                    ).placement.assignments
                    for node in sorted(assignments):
                        a = assignments[node]
                        digest.update(
                            f"{name}/{node}+{a.host}:{a.disk}\n".encode(
                                "utf-8"
                            )
                        )
            elif decision.action == ACTION_IN:
                try:
                    shrink = remove_vms_from_tier(
                        coordinator.ostro,
                        name,
                        prefix,
                        count=decision.delta,
                        min_members=scaler.config.min_members,
                        consolidate=consolidate,
                        defrag_stats=scale_defrag_stats,
                    )
                except ReproError:
                    scaler.failed(name, ACTION_IN)
                    digest.update(
                        f"{name}:scale-in-failed\n".encode("utf-8")
                    )
                else:
                    if shrink.removed:
                        scaler.applied(
                            name, event.time, ACTION_IN, len(shrink.removed)
                        )
                        scaler.stats.consolidation_moves += (
                            shrink.consolidation_moves
                        )
                        live[event.app_id] = coordinator.ostro.deployed(
                            name
                        ).topology
                        for node in shrink.removed:
                            digest.update(
                                f"{name}/{node}-\n".encode("utf-8")
                            )
                        if shrink.consolidated:
                            assignments = coordinator.ostro.deployed(
                                name
                            ).placement.assignments
                            for node in sorted(assignments):
                                a = assignments[node]
                                digest.update(
                                    f"{name}/{node}~{a.host}:{a.disk}\n"
                                    .encode("utf-8")
                                )

    # the trace is exhausted; drain whatever is still queued
    while len(queue):
        drain(boundary)
        boundary += horizon

    report.wall_s = time.perf_counter() - wall_start
    if defrag_stats is not None:
        report.defrag_passes = defrag_stats.passes
        report.defrag_aborted_passes = defrag_stats.aborted_passes
        report.defrag_replans = defrag_stats.replans
        report.defrag_moves = defrag_stats.moves + defrag_stats.bounces
        report.defrag_move_seconds = defrag_stats.move_seconds
        report.frag_recovered = defrag_stats.frag_recovered
    if scaler is not None:
        report.scale_evaluations = scaler.stats.evaluations
        report.scale_outs = scaler.stats.scale_outs
        report.scale_ins = scaler.stats.scale_ins
        report.scale_out_failures = scaler.stats.scale_out_failures
        report.vms_added = scaler.stats.vms_added
        report.vms_removed = scaler.stats.vms_removed
        report.scale_consolidation_moves = scaler.stats.consolidation_moves
    report.audit_violations.extend(coordinator.verify_state())
    report.batches = {
        "single": engine.batches - engine.joint_batches - engine.fallback_batches,
        "joint": engine.joint_batches,
        "fallback": engine.fallback_batches,
    }
    report.escalations = dict(coordinator.escalations)
    report.latency_p50_s = nearest_rank_percentile(latencies, 0.50)
    report.latency_p95_s = nearest_rank_percentile(latencies, 0.95)
    report.latency_p99_s = nearest_rank_percentile(latencies, 0.99)
    if report.wall_s > 0:
        report.placements_per_sec = report.admitted / report.wall_s
    digest.update(placement_fingerprint(coordinator.ostro).encode("utf-8"))
    report.fingerprint = digest.hexdigest()
    return report
