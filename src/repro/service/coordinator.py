"""The root coordinator: shard routing, escalation, and the global truth.

:class:`ShardedCoordinator` owns the *single* live
:class:`~repro.datacenter.state.DataCenterState` (through one global
:class:`~repro.core.scheduler.Ostro`) that every commit flows through --
shard-routed and escalated placements alike. Shards are pure search
domains over masked views of that state (:mod:`repro.service.shard`);
they propose, the coordinator commits, so PR 4's transactional
snapshot/rollback machinery keeps capacity conserved no matter which
path admitted an application.

Routing: feasible shards are tried in (load, shard id) order --
least-loaded first, deterministically tie-broken. A placement escalates
to a full-cloud global pass only when a topology demands pod-or-coarser
separation (``cross_pod``), no shard passes the feasibility screen
(``no_feasible_shard``), or every screened shard's search fails
(``shard_infeasible``) -- the escalation taxonomy of the docs/SERVICE.md
contract.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.core.base import PlacementResult
from repro.core.greedy import GreedyConfig
from repro.core.online import UpdateResult
from repro.core.scheduler import Ostro
from repro.core.topology import ApplicationTopology
from repro.datacenter.model import Cloud, Level
from repro.datacenter.state import DataCenterState
from repro.errors import PlacementError
from repro.service.shard import PodShard, Snapshot, build_shards


class ShardedCoordinator:
    """Routes admissions across pod shards; owns the global state.

    Args:
        cloud: the physical structure.
        state: live availability; pristine when omitted.
        algorithm: default placement algorithm for shard and global passes.
        theta_bw / theta_c / greedy_config: scoring knobs, shared by the
            global scheduler and every shard so both passes rank
            placements identically.
        **options: default algorithm options forwarded to every search.
    """

    def __init__(
        self,
        cloud: Cloud,
        state: Optional[DataCenterState] = None,
        algorithm: str = "eg",
        theta_bw: float = 0.6,
        theta_c: float = 0.4,
        greedy_config: Optional[GreedyConfig] = None,
        **options: Any,
    ) -> None:
        self.cloud = cloud
        self.ostro = Ostro(
            cloud,
            state=state,
            theta_bw=theta_bw,
            theta_c=theta_c,
            greedy_config=greedy_config,
        )
        self.algorithm = algorithm
        self.options = options
        self.shards: List[PodShard] = build_shards(
            cloud,
            theta_bw=theta_bw,
            theta_c=theta_c,
            greedy_config=greedy_config,
            best_effort_cpu_factor=self.ostro.state.best_effort_cpu_factor,
        )
        #: app name -> shard name or "global" (route of the live commit)
        self.routes: Dict[str, str] = {}
        #: escalation reason -> count, over the coordinator's lifetime
        self.escalations: Dict[str, int] = {}

    @property
    def state(self) -> DataCenterState:
        """The single live global state (all commits land here)."""
        return self.ostro.state

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------

    def admit(
        self,
        topology: ApplicationTopology,
        algorithm: Optional[str] = None,
        **options: Any,
    ) -> Tuple[PlacementResult, str]:
        """Admit one application; returns (result, route).

        ``route`` is the shard name that hosted the placement, or
        ``"global"`` for an escalated one. Raises
        :class:`~repro.errors.PlacementError` when even the global pass
        cannot place the topology (nothing is committed then).
        """
        if topology.name in self.ostro.applications:
            raise PlacementError(
                f"application {topology.name!r} is already deployed"
            )
        algo = algorithm if algorithm is not None else self.algorithm
        opts = {**self.options, **options}
        rec = obs.get_recorder()

        if _needs_pod_separation(topology):
            return self._escalate(topology, algo, "cross_pod", opts)

        snapshot = self.state.snapshot()
        candidates = self._routing_order(topology)
        if not candidates:
            return self._escalate(topology, algo, "no_feasible_shard", opts)
        for load, shard in candidates:
            try:
                result = shard.search(snapshot, topology, algorithm=algo, **opts)
            except PlacementError:
                continue
            self.ostro.commit(topology, result.placement)
            self.routes[topology.name] = shard.name
            if rec.enabled:
                rec.event(
                    "shard_routed",
                    app=topology.name,
                    shard=shard.name,
                    load=round(load, 6),
                )
            return result, shard.name
        return self._escalate(topology, algo, "shard_infeasible", opts)

    def _routing_order(
        self, topology: ApplicationTopology
    ) -> List[Tuple[float, PodShard]]:
        """Screened shards in least-loaded-first, id-tie-broken order."""
        ranked = []
        for shard in self.shards:
            if shard.screen(topology, self.state) is None:
                ranked.append((shard.load(self.state), shard))
        ranked.sort(key=lambda pair: (pair[0], pair[1].shard_id))
        return ranked

    def _escalate(
        self,
        topology: ApplicationTopology,
        algorithm: str,
        reason: str,
        options: Dict[str, Any],
    ) -> Tuple[PlacementResult, str]:
        """Global pass: full-cloud search and commit on the global Ostro."""
        self.escalations[reason] = self.escalations.get(reason, 0) + 1
        rec = obs.get_recorder()
        if rec.enabled:
            rec.inc("ostro_service_escalations_total", reason=reason)
            rec.event("escalated", app=topology.name, reason=reason)
        result = self.ostro.place(
            topology, algorithm=algorithm, commit=True, **options
        )
        self.routes[topology.name] = "global"
        return result, "global"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def remove(self, app_name: str) -> None:
        """Release an admitted application's reservations."""
        self.ostro.remove(app_name)
        self.routes.pop(app_name, None)

    def update(
        self, new_topology: ApplicationTopology, **kwargs: Any
    ) -> UpdateResult:
        """Online adaptation of an admitted application.

        Updates always run on the global scheduler: the incremental
        search pins the surviving nodes wherever they are, and
        progressive unpinning may legitimately spread an application
        beyond its original shard. The route is re-labelled ``"global"``
        when that happens.
        """
        kwargs.setdefault("algorithm", self.algorithm)
        update = self.ostro.update(new_topology, **{**self.options, **kwargs})
        if update.moved:
            route = self.routes.get(new_topology.name)
            if route is not None and route != "global":
                placement = self.ostro.deployed(new_topology.name).placement
                shard = next(
                    (s for s in self.shards if s.name == route), None
                )
                still_inside = shard is not None and all(
                    shard.owns_host(a.host)
                    for a in placement.assignments.values()
                )
                if not still_inside:
                    self.routes[new_topology.name] = "global"
        return update

    def rollback_to(self, snapshot: Snapshot, app_names: List[str]) -> None:
        """Undo a multi-admission transaction (the batch engine's lever).

        Restores the global state to ``snapshot`` bit-exactly and forgets
        the listed applications. The apps' reservations are part of what
        the restore discards, so this must *not* go through
        :meth:`remove` (that would release them a second time).
        """
        self.state.restore(snapshot)
        for name in app_names:
            self.ostro.applications.pop(name, None)
            self.routes.pop(name, None)

    # ------------------------------------------------------------------
    # audits
    # ------------------------------------------------------------------

    def verify_state(self) -> List[str]:
        """Capacity-conservation audit across the shard boundary.

        Combines the global scheduler's own audit (state invariants plus
        conservation against its baseline -- every commit and removal,
        shard-routed or escalated, must net out) with each shard's
        scratch-state check and a registry consistency check between the
        route table and the committed applications. Empty list = clean.
        """
        violations = list(self.ostro.verify_state())
        for shard in self.shards:
            violations.extend(shard.scratch_violations())
        routed = set(self.routes)
        committed = set(self.ostro.applications)
        for name in sorted(routed - committed):
            violations.append(
                f"route table lists {name!r} but it is not committed"
            )
        for name in sorted(committed - routed):
            violations.append(
                f"application {name!r} committed without a recorded route"
            )
        return violations


def _needs_pod_separation(topology: ApplicationTopology) -> bool:
    """True when a zone demands pod-or-coarser separation.

    Such a topology structurally exceeds every single shard (a shard is
    at most one pod), so routing would only burn searches: escalate to
    the global pass straight away.
    """
    return any(zone.level >= Level.POD for zone in topology.zones)
