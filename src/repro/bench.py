"""Reproducible benchmark harness for the search hot path.

``repro bench`` (and the CI wrapper ``benchmarks/perf/run.py``) times the
reference algorithms on the reference scenarios and emits machine-readable
``BENCH_<scenario>.json`` files. Two kinds of measurements are recorded:

* **Deterministic work counters** -- candidates scored, paths expanded, EG
  bound runs (from :class:`~repro.core.base.SearchStats`), plus the
  telemetry counters of the :mod:`repro.obs` registry harvested from one
  instrumented run (estimates, prunes, expansions). These are exactly
  reproducible for EG and BA*, so a regression gate can compare them
  bit-for-bit across commits.
* **Wall-clock timings** -- best-of-N seconds per algorithm, plus the same
  number normalized by an in-process *calibration unit* (a fixed
  pure-Python loop timed in the same run). The normalized cost is stable
  across machines of different speeds, which is what the CI smoke gate
  compares against the committed baseline (within a tolerance), following
  the deterministic-bound pattern of ``tests/obs/test_overhead.py``.

The placement itself is also fingerprinted (a SHA-256 over the sorted
assignment list), so a baseline comparison doubles as a behavioral
regression check: a placement change shows up as a hash mismatch, not just
a timing delta.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.base import PlacementResult
from repro.core.scheduler import make_algorithm
from repro.sim.scenarios import (
    Scenario,
    mesh_scenario,
    multitier_scenario,
    qfs_testbed_scenario,
)

#: registry counters harvested from the instrumented run
_REGISTRY_COUNTERS = (
    "ostro_estimates_total",
    "ostro_candidates_scored_total",
    "ostro_nodes_expanded_total",
    "ostro_eg_bound_runs_total",
)


@dataclass(frozen=True)
class BenchCase:
    """One benchmark scenario: a workload plus the algorithms timed on it.

    Attributes:
        name: scenario key, used in the ``BENCH_<name>.json`` filename.
        scenario_factory: zero-argument callable building the scenario.
        size: workload size passed to the scenario's topology builder.
        algorithms: (label, algorithm name, extra options, gated) tuples.
            ``gated`` algorithms are deterministic (EG, expansion-capped
            BA*) and participate in baseline regression checks; ungated
            ones (deadline-driven DBA*) are reported but not compared.
    """

    name: str
    scenario_factory: Callable[[], Scenario]
    size: int
    algorithms: Tuple[Tuple[str, str, Tuple[Tuple[str, object], ...], bool], ...]


#: The reference suite: the paper's three workload families at sizes small
#: enough for CI but large enough that the search hot path dominates.
REFERENCE_CASES: Tuple[BenchCase, ...] = (
    BenchCase(
        name="multitier",
        scenario_factory=lambda: multitier_scenario(heterogeneous=True),
        size=40,
        algorithms=(
            ("eg", "eg", (), True),
            ("ba*", "ba*", (("max_expansions", 100),), True),
            ("dba*", "dba*", (("deadline_s", 1.0), ("seed", 0)), False),
        ),
    ),
    BenchCase(
        name="mesh",
        scenario_factory=lambda: mesh_scenario(heterogeneous=True),
        size=25,
        algorithms=(
            ("eg", "eg", (), True),
            ("ba*", "ba*", (("max_expansions", 100),), True),
        ),
    ),
    BenchCase(
        name="qfs",
        scenario_factory=lambda: qfs_testbed_scenario(),
        size=12,
        algorithms=(
            ("eg", "eg", (), True),
            ("ba*", "ba*", (("max_expansions", 1000),), True),
        ),
    ),
)


def placement_fingerprint(result: PlacementResult) -> str:
    """Stable hash of the assignment set (behavioral regression check)."""
    blob = json.dumps(
        sorted(
            (a.node, a.host, a.disk)
            for a in result.placement.assignments.values()
        )
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def calibration_unit_s(repeats: int = 3) -> float:
    """Seconds for a fixed pure-Python workload on this interpreter.

    The loop exercises the same primitives the search hot path spends its
    time on (dict get/set, float adds, integer masking), so dividing a
    benchmark's wall time by this unit yields a machine-independent cost
    that a CI gate can compare across hosts of different speeds.
    """
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        ledger: Dict[int, float] = {}
        acc = 0.0
        for i in range(200_000):
            key = i & 1023
            ledger[key] = ledger.get(key, 0.0) + 1.5
            acc += ledger[key]
        best = min(best, time.perf_counter() - started)
    assert acc > 0.0
    return best


def _run_once(case: BenchCase, algorithm: str, options: Dict) -> Tuple[
    PlacementResult, float
]:
    scenario = case.scenario_factory()
    cloud = scenario.build_cloud()
    state = scenario.build_state(cloud, 0)
    topology = scenario.build_topology(case.size, 0)
    objective = scenario.objective(topology, cloud)
    opts = dict(options)
    opts.setdefault("greedy_config", scenario.greedy_config)
    algo = make_algorithm(algorithm, **opts)
    started = time.perf_counter()
    result = algo.place(topology, cloud, state, objective)
    return result, time.perf_counter() - started


def run_case(
    case: BenchCase,
    repeats: int = 3,
    calibration_s: Optional[float] = None,
    gap: bool = False,
    gap_time_limit_s: float = 60.0,
) -> Dict:
    """Benchmark one scenario; returns the ``BENCH_<name>.json`` payload.

    With ``gap=True`` the payload also carries the optimality-gap
    oracle's certified lower bound (``lower_bound`` key) and each
    algorithm entry gains ``score`` (the objective value it achieved)
    and ``optimality_gap`` (``(score - lb) / lb``; ``None`` when the
    bound is zero or the oracle could not certify one). The bound comes
    from a relaxation, so the reported gap is an *upper* bound on the
    true distance from optimal.
    """
    if calibration_s is None:
        calibration_s = calibration_unit_s()
    bound = None
    objective = None
    if gap:
        from repro.core.oracle import lower_bound

        scenario = case.scenario_factory()
        cloud = scenario.build_cloud()
        state = scenario.build_state(cloud, 0)
        topology = scenario.build_topology(case.size, 0)
        objective = scenario.objective(topology, cloud)
        bound = lower_bound(
            topology, cloud, state, objective,
            time_limit_s=gap_time_limit_s,
        )
    entries: List[Dict] = []
    for label, algorithm, opt_items, gated in case.algorithms:
        options = dict(opt_items)
        best_wall = float("inf")
        result: Optional[PlacementResult] = None
        for _ in range(max(1, repeats)):
            result, wall = _run_once(case, algorithm, options)
            best_wall = min(best_wall, wall)
        assert result is not None
        # One extra instrumented run reuses the repro.obs registry so the
        # emitted counters match what live telemetry would report.
        recorder = obs.TelemetryRecorder(record_span_events=False)
        with obs.use(recorder):
            counted, _ = _run_once(case, algorithm, options)
        registry_counters = {}
        for counter_name in _REGISTRY_COUNTERS:
            metric = recorder.registry.get(counter_name)
            total = 0.0
            if metric is not None:
                total = sum(value for _, _, value in metric.samples())
            registry_counters[counter_name] = total
        entries.append(
            {
                "algorithm": label,
                "gated": gated,
                "wall_s": best_wall,
                "normalized_cost": best_wall / calibration_s,
                "paths_expanded": result.stats.paths_expanded,
                "candidates_scored": result.stats.candidates_scored,
                "eg_bound_runs": result.stats.eg_bound_runs,
                "placement_hash": placement_fingerprint(result),
                "reserved_bw_mbps": result.reserved_bw_mbps,
                "new_active_hosts": result.new_active_hosts,
                "counted_placement_hash": placement_fingerprint(counted),
                "registry_counters": registry_counters,
            }
        )
        if bound is not None and objective is not None:
            score = objective.score(
                result.reserved_bw_mbps, result.new_active_hosts
            )
            entries[-1]["score"] = score
            lb = bound.score
            entries[-1]["optimality_gap"] = (
                (score - lb) / lb
                if lb > 0 and math.isfinite(lb)
                else None
            )
    payload = {
        "scenario": case.name,
        "size": case.size,
        "repeats": repeats,
        "calibration_unit_s": calibration_s,
        "algorithms": entries,
    }
    if bound is not None:
        from repro.core.oracle import gap_payload

        payload["lower_bound"] = gap_payload(bound)
    return payload


def _run_case_payload(
    payload: Tuple[str, int, float, bool, float]
) -> Dict:
    """Worker entry for a pooled suite run: look the case up by name.

    BenchCase factories are lambdas and cannot pickle; the name can, and
    the reference suite is import-time state every worker shares.
    """
    name, repeats, calibration_s, gap, gap_time_limit_s = payload
    case = next(c for c in REFERENCE_CASES if c.name == name)
    return run_case(
        case,
        repeats=repeats,
        calibration_s=calibration_s,
        gap=gap,
        gap_time_limit_s=gap_time_limit_s,
    )


def run_suite(
    cases: Optional[Sequence[BenchCase]] = None,
    repeats: int = 3,
    scenarios: Optional[Sequence[str]] = None,
    workers: int = 1,
    gap: bool = False,
    gap_time_limit_s: float = 60.0,
) -> List[Dict]:
    """Run the suite (optionally filtered by scenario name).

    ``workers > 1`` fans the *reference* cases across worker processes
    (custom ``cases`` run serially -- their factories do not pickle).
    Deterministic counters and placement hashes are unaffected; wall
    times can inflate when workers outnumber idle cores, so keep pooled
    runs for smoke checks, not for updating timing baselines.
    """
    selected = list(cases if cases is not None else REFERENCE_CASES)
    if scenarios:
        wanted = set(scenarios)
        unknown = wanted - {c.name for c in selected}
        if unknown:
            raise ValueError(f"unknown bench scenarios: {sorted(unknown)}")
        selected = [c for c in selected if c.name in wanted]
    calibration_s = calibration_unit_s()
    if workers > 1 and cases is None:
        from repro.sim.parallel import merge_outcomes, run_tasks

        payloads = [
            (c.name, repeats, calibration_s, gap, gap_time_limit_s)
            for c in selected
        ]
        outcomes = run_tasks(_run_case_payload, payloads, workers=workers)
        return merge_outcomes(outcomes)
    return [
        run_case(
            case,
            repeats=repeats,
            calibration_s=calibration_s,
            gap=gap,
            gap_time_limit_s=gap_time_limit_s,
        )
        for case in selected
    ]


def parallel_sweep_benchmark(
    workers: int = 4,
    sizes: Sequence[int] = (10, 20, 30, 40, 50),
    algorithms: Sequence[str] = ("egc", "egbw", "eg"),
    seeds: Sequence[int] = (0, 1, 2, 3),
    deadline_s: Optional[float] = None,
) -> Dict:
    """Serial-vs-parallel acceptance bench for the process-pool layer.

    Runs the same multitier sweep (5 sizes x 3 algorithms x 4 seeds by
    default) with ``workers=1`` and ``workers=N``, then reports both wall
    clocks, the speedup, and whether the aggregated rows are byte-
    identical (wall-clock ``runtime_s`` excluded via
    :func:`~repro.sim.metrics.rows_fingerprint`). The payload lands in
    ``BENCH_parallel_sweep.json``; ``cpu_count`` records how many cores
    the speedup had to work with.

    The default algorithm trio is fully deterministic under any machine
    load. DBA* is excluded on purpose: how much search fits before a
    *binding* wall-clock deadline depends on machine speed and
    contention, so two runs -- serial or parallel alike -- can return
    different incumbents. That is a property of deadline-bounded search,
    not of the pool.
    """
    from repro.sim.metrics import rows_fingerprint
    from repro.sim.runner import sweep
    from repro.sim.scenarios import multitier_scenario

    scenario = multitier_scenario(heterogeneous=True)
    walls: Dict[int, float] = {}
    fingerprints: Dict[int, str] = {}
    row_counts: Dict[int, int] = {}
    for n in (1, workers):
        started = time.perf_counter()
        rows = sweep(
            scenario,
            algorithms,
            sizes,
            seeds=seeds,
            aggregate=True,
            deadline_s=deadline_s,
            workers=n,
        )
        walls[n] = time.perf_counter() - started
        fingerprints[n] = rows_fingerprint(rows)
        row_counts[n] = len(rows)
    return {
        "scenario": "parallel_sweep",
        "workload": "multitier",
        "sizes": list(sizes),
        "algorithms": list(algorithms),
        "seeds": list(seeds),
        "deadline_s": deadline_s,
        "cells": len(sizes) * len(algorithms) * len(seeds),
        "cpu_count": os.cpu_count(),
        "workers": workers,
        "serial_wall_s": walls[1],
        "parallel_wall_s": walls[workers],
        "speedup": walls[1] / max(walls[workers], 1e-9),
        "rows": row_counts[1],
        "rows_identical": fingerprints[1] == fingerprints[workers],
        "rows_fingerprint_serial": fingerprints[1],
        "rows_fingerprint_parallel": fingerprints[workers],
    }


def service_benchmark(
    arrivals: int = 500,
    pods: int = 4,
    racks_per_pod: int = 2,
    hosts_per_rack: int = 8,
    mean_interarrival_s: float = 12.0,
    mean_lifetime_s: float = 400.0,
    horizon_s: float = 30.0,
    max_batch: int = 16,
    deadline_s: float = 180.0,
    update_fraction: float = 0.2,
    algorithm: str = "eg",
    seed: int = 0,
) -> Dict:
    """Throughput + determinism bench for the admission service.

    Runs one Poisson arrival storm (bursty, prioritized, with online
    tier-growth churn) through the batched pod-sharded pipeline twice --
    serial reference ordering and batched -- and reports sustained
    placements/sec, the virtual p99 admission latency, and the
    serial-equivalence gate (the two runs' decision-trajectory
    fingerprints must match byte for byte). The payload lands in
    ``BENCH_service.json``; ``audit_violations`` counts capacity-
    conservation findings across both runs (must be zero).
    """
    from repro.datacenter.builder import build_cloud
    from repro.service import ServiceConfig, run_service
    from repro.sim.arrivals import WorkloadTrace, default_app_factory

    cloud = build_cloud(
        num_datacenters=1,
        pods_per_dc=pods,
        racks_per_pod=racks_per_pod,
        hosts_per_rack=hosts_per_rack,
    )
    trace = WorkloadTrace.poisson_storm(
        arrivals,
        default_app_factory,
        mean_interarrival_s=mean_interarrival_s,
        mean_lifetime_s=mean_lifetime_s,
        seed=seed,
        burst_every_s=20 * mean_interarrival_s,
        burst_len_s=4 * mean_interarrival_s,
        burst_factor=4.0,
        priority_levels=3,
        update_fraction=update_fraction,
    )
    config = ServiceConfig(
        algorithm=algorithm,
        horizon_s=horizon_s,
        max_batch=max_batch,
        deadline_s=deadline_s,
    )
    serial = run_service(trace, cloud, config, serial=True)
    batched = run_service(trace, cloud, config)
    return {
        "scenario": "service",
        "arrivals": arrivals,
        "pods": pods,
        "hosts": cloud.num_hosts,
        "algorithm": algorithm,
        "horizon_s": horizon_s,
        "max_batch": max_batch,
        "deadline_s": deadline_s,
        "seed": seed,
        "admitted": batched.admitted,
        "rejected": batched.rejected,
        "expired": batched.expired,
        "cancelled": batched.cancelled,
        "updates_applied": batched.updates_applied,
        "updates_failed": batched.updates_failed,
        "batches": batched.batches,
        "escalations": batched.escalations,
        "shard_admissions": batched.shard_admissions,
        "peak_queue_depth": batched.peak_queue_depth,
        "latency_p50_s": batched.latency_p50_s,
        "latency_p95_s": batched.latency_p95_s,
        "latency_p99_s": batched.latency_p99_s,
        "placements_per_sec": batched.placements_per_sec,
        "serial_placements_per_sec": serial.placements_per_sec,
        "batched_wall_s": batched.wall_s,
        "serial_wall_s": serial.wall_s,
        "fingerprint_serial": serial.fingerprint,
        "fingerprint_batched": batched.fingerprint,
        "fingerprints_identical": serial.fingerprint == batched.fingerprint,
        "audit_violations": len(serial.audit_violations)
        + len(batched.audit_violations),
    }


def defrag_chaos_case(seed: int = 0) -> Dict:
    """Canned fragmented chaos scenario shared by the defrag gates.

    Host crashes with quick repairs scatter applications: each crash
    evacuates its tenants onto whatever hosts still have room, and the
    repaired host comes back empty -- survivors end up dispersed over
    long paths while revived capacity idles, exactly the fragmentation
    the background defragmenter exists to recover. No API faults are
    injected, so the defrag-off run is fully deterministic and the
    defrag-on run exercises planning and execution rather than retries.

    Returns :func:`~repro.sim.chaos.run_chaos` keyword arguments.
    """
    from repro.datacenter.builder import build_datacenter
    from repro.sim.scenarios import make_fault_plan

    cloud = build_datacenter(num_racks=2)
    plan = make_fault_plan(
        cloud, seed=seed, hosts=6, steps=24, recover_after_steps=2
    )
    return {
        "plan": plan,
        "cloud": cloud,
        "apps": 24,
        "app_vms": 10,
        "algorithm": "eg",
    }


def defrag_case_config() -> "object":
    """The canned scenario's defragmenter knobs.

    The move budget is sized so one whole 10-VM application fits in a
    single pass (the default budget of 8 rejects every 10-step plan).
    """
    from repro.defrag import DefragConfig

    return DefragConfig(algorithm="eg", max_moves_per_pass=16)


def defrag_benchmark(seed: int = 0) -> Dict:
    """Acceptance bench for the continuous defragmenter.

    Runs the canned fragmented chaos scenario three ways -- no defrag,
    defrag constructed but disabled, and defrag on -- and reports the
    fragmentation recovered, the disruption charged for it (moves and
    virtual VM-move-seconds), availability under both regimes, and the
    determinism gate: the disabled run's placement fingerprint must be
    bit-identical to the no-defrag baseline. The payload lands in
    ``BENCH_defrag.json``; ``leaks`` counts capacity-conservation
    findings across all three runs (must be zero).
    """
    from repro.defrag import DefragConfig
    from repro.sim.chaos import run_chaos

    case = defrag_chaos_case(seed)
    started = time.perf_counter()
    baseline = run_chaos(**case)
    baseline_wall_s = time.perf_counter() - started
    config = defrag_case_config()
    disabled = run_chaos(
        **case, defrag=DefragConfig(enabled=False, algorithm="eg")
    )
    started = time.perf_counter()
    defragged = run_chaos(**case, defrag=config)
    defrag_wall_s = time.perf_counter() - started
    leaks = (
        len(baseline.invariant_violations)
        + len(disabled.invariant_violations)
        + len(defragged.invariant_violations)
    )
    return {
        "scenario": "defrag",
        "seed": seed,
        "apps": case["apps"],
        "app_vms": case["app_vms"],
        "hosts": case["cloud"].num_hosts,
        "hosts_failed": defragged.hosts_failed,
        "algorithm": case["algorithm"],
        "frag_recovered": defragged.frag_recovered,
        "defrag_passes": defragged.defrag_passes,
        "defrag_aborted_passes": defragged.defrag_aborted_passes,
        "defrag_replans": defragged.defrag_replans,
        "defrag_moves": defragged.defrag_moves,
        "defrag_move_seconds": defragged.defrag_move_seconds,
        "availability_baseline": baseline.availability,
        "availability_defrag": defragged.availability,
        "baseline_wall_s": baseline_wall_s,
        "defrag_wall_s": defrag_wall_s,
        "fingerprint_baseline": baseline.fingerprint,
        "fingerprint_disabled": disabled.fingerprint,
        "fingerprint_defrag": defragged.fingerprint,
        "disabled_fingerprint_identical": (
            disabled.fingerprint == baseline.fingerprint
        ),
        "leaks": leaks,
    }


def elastic_benchmark(
    arrivals: int = 1000,
    pods: int = 4,
    racks_per_pod: int = 2,
    hosts_per_rack: int = 8,
    mean_interarrival_s: float = 90.0,
    mean_lifetime_s: float = 7200.0,
    scale_every_s: float = 900.0,
    horizon_s: float = 60.0,
    max_batch: int = 16,
    algorithm: str = "eg",
    seed: int = 0,
) -> Dict:
    """Long-horizon elasticity bench for the autoscaling loop.

    Generates one arrival storm spanning at least a simulated day
    (``arrivals * mean_interarrival_s`` virtual seconds) in which every
    tenant emits a scale-evaluation event each ``scale_every_s`` seconds
    of its lifetime, then runs it through the service pipeline four ways:
    a scaling-free baseline, scaling constructed but ``enabled=False``
    (must be bit-identical to the baseline), and the same scaled
    configuration twice (the two fingerprints must be bit-identical to
    each other). The payload lands in ``BENCH_elastic.json``; ``leaks``
    counts capacity-conservation findings across all four runs (must be
    zero).
    """
    from repro.datacenter.builder import build_cloud
    from repro.scaling import ScalingConfig
    from repro.service import ServiceConfig, run_service
    from repro.sim.arrivals import WorkloadTrace, default_app_factory

    cloud = build_cloud(
        num_datacenters=1,
        pods_per_dc=pods,
        racks_per_pod=racks_per_pod,
        hosts_per_rack=hosts_per_rack,
    )
    trace = WorkloadTrace.poisson_storm(
        arrivals,
        default_app_factory,
        mean_interarrival_s=mean_interarrival_s,
        mean_lifetime_s=mean_lifetime_s,
        seed=seed,
        priority_levels=3,
        update_fraction=0.1,
        scale_every_s=scale_every_s,
    )
    scale_events = sum(1 for e in trace.events if e.kind == "scale")
    span_s = trace.events[-1].time if trace.events else 0.0
    base_config = ServiceConfig(
        algorithm=algorithm, horizon_s=horizon_s, max_batch=max_batch
    )
    scaled_config = ServiceConfig(
        algorithm=algorithm,
        horizon_s=horizon_s,
        max_batch=max_batch,
        scaling=ScalingConfig(
            policy="threshold",
            tier_prefix="vm",
            scale_out_at=0.70,
            scale_in_at=0.35,
            step_fraction=0.34,
            cooldown_s=scale_every_s,
            seed=seed,
            consolidate=True,
        ),
    )
    disabled_config = ServiceConfig(
        algorithm=algorithm,
        horizon_s=horizon_s,
        max_batch=max_batch,
        scaling=ScalingConfig(enabled=False),
    )
    started = time.perf_counter()
    baseline = run_service(trace, cloud, base_config)
    baseline_wall_s = time.perf_counter() - started
    disabled = run_service(trace, cloud, disabled_config)
    started = time.perf_counter()
    scaled = run_service(trace, cloud, scaled_config)
    scaled_wall_s = time.perf_counter() - started
    repeat = run_service(trace, cloud, scaled_config)
    leaks = (
        len(baseline.audit_violations)
        + len(disabled.audit_violations)
        + len(scaled.audit_violations)
        + len(repeat.audit_violations)
    )
    return {
        "scenario": "elastic",
        "seed": seed,
        "arrivals": arrivals,
        "hosts": cloud.num_hosts,
        "algorithm": algorithm,
        "trace_span_s": span_s,
        "scale_events": scale_events,
        "scale_every_s": scale_every_s,
        "admitted": scaled.admitted,
        "rejected": scaled.rejected,
        "scale_evaluations": scaled.scale_evaluations,
        "scale_outs": scaled.scale_outs,
        "scale_ins": scaled.scale_ins,
        "scale_out_failures": scaled.scale_out_failures,
        "vms_added": scaled.vms_added,
        "vms_removed": scaled.vms_removed,
        "scale_consolidation_moves": scaled.scale_consolidation_moves,
        "baseline_wall_s": baseline_wall_s,
        "scaled_wall_s": scaled_wall_s,
        "fingerprint_baseline": baseline.fingerprint,
        "fingerprint_disabled": disabled.fingerprint,
        "fingerprint_scaled": scaled.fingerprint,
        "fingerprint_repeat": repeat.fingerprint,
        "disabled_fingerprint_identical": (
            disabled.fingerprint == baseline.fingerprint
        ),
        "scaled_fingerprints_identical": (
            scaled.fingerprint == repeat.fingerprint
        ),
        "leaks": leaks,
    }


def write_results(results: Sequence[Dict], out_dir: str) -> List[str]:
    """Write one ``BENCH_<scenario>.json`` per result; returns the paths."""
    os.makedirs(out_dir, exist_ok=True)
    paths = []
    for payload in results:
        path = os.path.join(out_dir, f"BENCH_{payload['scenario']}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        paths.append(path)
    return paths


#: per-algorithm fields that must match the baseline exactly (deterministic)
_EXACT_FIELDS = (
    "paths_expanded",
    "candidates_scored",
    "eg_bound_runs",
    "placement_hash",
    "reserved_bw_mbps",
    "new_active_hosts",
)


def compare_to_baseline(
    results: Sequence[Dict],
    baseline: Dict,
    tolerance: float = 0.25,
) -> List[str]:
    """Regression check against a committed baseline; returns failures.

    Gated algorithms must reproduce the baseline's deterministic work
    counters and placement fingerprint exactly, and their normalized cost
    (wall seconds / in-process calibration unit) may exceed the baseline's
    by at most ``tolerance`` (e.g. 0.25 = +25%).
    """
    failures: List[str] = []
    baseline_by_scenario = {
        entry["scenario"]: entry for entry in baseline.get("scenarios", [])
    }
    for payload in results:
        scenario = payload["scenario"]
        base = baseline_by_scenario.get(scenario)
        if base is None:
            failures.append(f"{scenario}: missing from baseline")
            continue
        base_algos = {e["algorithm"]: e for e in base["algorithms"]}
        for entry in payload["algorithms"]:
            if not entry["gated"]:
                continue
            label = f"{scenario}/{entry['algorithm']}"
            base_entry = base_algos.get(entry["algorithm"])
            if base_entry is None:
                failures.append(f"{label}: missing from baseline")
                continue
            for fieldname in _EXACT_FIELDS:
                if entry[fieldname] != base_entry[fieldname]:
                    failures.append(
                        f"{label}: {fieldname} changed "
                        f"{base_entry[fieldname]!r} -> {entry[fieldname]!r}"
                    )
            allowed = base_entry["normalized_cost"] * (1.0 + tolerance)
            if entry["normalized_cost"] > allowed:
                failures.append(
                    f"{label}: normalized cost {entry['normalized_cost']:.1f} "
                    f"exceeds baseline {base_entry['normalized_cost']:.1f} "
                    f"by more than {tolerance:.0%}"
                )
    return failures


def baseline_payload(results: Sequence[Dict]) -> Dict:
    """The committed-baseline document for a suite run."""
    return {
        "tolerance_hint": 0.25,
        "scenarios": [
            {
                "scenario": payload["scenario"],
                "size": payload["size"],
                "algorithms": [
                    {
                        key: entry[key]
                        for key in ("algorithm", "normalized_cost")
                        + _EXACT_FIELDS
                    }
                    for entry in payload["algorithms"]
                    if entry["gated"]
                ],
            }
            for payload in results
        ],
    }
