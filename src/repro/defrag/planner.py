"""Bounded-disruption defragmentation planning.

Long-lived fleets fragment: tenants churn, hosts crash, evacuations
scatter surviving VMs wherever capacity happens to be. The paper argues
placement must keep working "at runtime if the infrastructure is being
managed adaptively" (Section I); :class:`DefragPlanner` is that control
loop's planning half. Each *pass* it

1. measures fragmentation (:func:`repro.sim.utilization.fragmentation_report`)
   and only proceeds past the configured threshold;
2. ranks committed applications by dispersion (most-scattered first,
   name-ordered ties -- fully deterministic);
3. re-places each candidate from scratch on a **cloned** state with the
   candidate's reservations released (planning makes no surrogate API
   calls and never touches the live state);
4. derives a feasibility-checked :class:`~repro.core.migration.MigrationPlan`
   and charges the migration itself into the decision: a candidate is
   accepted only when ``objective gain - move_cost_weight * GB moved``
   clears the configured margin *and* its steps fit the remaining
   per-pass move budget.

The pass is deadlined through DBA*'s own machinery: with
``algorithm="dba*"`` each candidate search consumes the pass's remaining
``deadline_s`` (decremented by the search's reported runtime), and a
:class:`~repro.errors.DeadlineError` aborts the pass cleanly -- the
fleet keeps running, the planner simply returns what it accepted so far.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.core.migration import MigrationPlan, plan_migration
from repro.core.objective import Objective
from repro.core.placement import Placement
from repro.core.scheduler import make_algorithm
from repro.core.topology import ApplicationTopology
from repro.datacenter.network import PathResolver
from repro.datacenter.state import DataCenterState
from repro.errors import DeadlineError, PlacementError
from repro.sim.utilization import fragmentation_report, placement_spread

if TYPE_CHECKING:  # pragma: no cover - avoids circular imports
    from repro.core.scheduler import Ostro


@dataclass(frozen=True)
class DefragConfig:
    """Knobs of the background re-optimizer (hashable and picklable, so
    it rides inside :class:`~repro.sim.chaos.ChaosCell` options).

    Attributes:
        enabled: master switch; disabled ticks are free and leave every
            run bit-identical to a no-defrag baseline.
        algorithm: search rung for candidate re-placements. The default
            "eg" is fully deterministic; "dba*" engages the deadline
            machinery below.
        cadence: run a pass every N ticks (a tick is one scenario step /
            service drain).
        frag_threshold: skip the pass while the fragmentation index is
            below this value.
        max_apps_per_pass: candidates examined per pass (disruption
            scope bound).
        max_moves_per_pass: total migration steps allowed per pass
            (disruption budget; also the max concurrent in-flight moves
            a pass may schedule).
        margin: required net objective gain -- a candidate is accepted
            only when ``gain - move_cost > margin``.
        move_cost_weight: objective charge per GB migrated (VM memory /
            volume size), modelling the migration's own bandwidth cost.
        move_seconds_per_gb: virtual seconds of VM unavailability per GB
            moved; accumulates into the availability-impact accounting.
        max_bounces: cycle-breaking budget per candidate migration plan.
        deadline_s: per-pass search budget consumed across candidate
            searches (only enforced via DBA*'s deadline machinery).
        max_replans: after a fault aborts an executing pass, how many
            times to replan against the new state within the same tick.
    """

    enabled: bool = True
    algorithm: str = "eg"
    cadence: int = 1
    frag_threshold: float = 0.0
    max_apps_per_pass: int = 2
    max_moves_per_pass: int = 8
    margin: float = 0.0
    move_cost_weight: float = 1e-4
    move_seconds_per_gb: float = 0.1
    max_bounces: int = 4
    deadline_s: Optional[float] = None
    max_replans: int = 2


@dataclass
class AppMigration:
    """One accepted candidate: where an application is and where it goes."""

    app_name: str
    topology: ApplicationTopology
    old_placement: Placement
    new_placement: Placement
    plan: MigrationPlan
    gain: float
    move_cost: float
    moved_gb: float


@dataclass
class DefragPassPlan:
    """Everything one planning pass decided.

    Attributes:
        migrations: accepted candidates, in execution order.
        aborted: True when the pass deadline fired during planning; the
            accepted prefix is still valid and executable.
        fragmentation_before: fragmentation index measured at pass start.
    """

    migrations: List[AppMigration] = field(default_factory=list)
    aborted: bool = False
    fragmentation_before: float = 0.0

    @property
    def moves(self) -> int:
        return sum(len(m.plan.steps) for m in self.migrations)


def _release_placement(
    state: DataCenterState,
    resolver: PathResolver,
    topology: ApplicationTopology,
    placement: Placement,
) -> None:
    """Release one application's reservations on a scratch state (the
    exact inverse of :meth:`repro.core.scheduler.Ostro.commit`)."""
    for link in topology.links:
        path = resolver.path(
            placement.host_of(link.a), placement.host_of(link.b)
        )
        state.release_path(path, link.bw_mbps)
    for name in sorted(topology.nodes):
        node = topology.node(name)
        assignment = placement.assignments[name]
        if node.is_vm:
            state.unplace_vm(
                assignment.host, state.reserved_vcpus(node), node.mem_gb
            )
        else:
            state.unplace_volume(assignment.disk, node.size_gb)


def _placement_value(
    ostro: "Ostro",
    topology: ApplicationTopology,
    placement: Placement,
    objective: Objective,
    scratch: DataCenterState,
) -> float:
    """Objective value of keeping an existing placement put.

    Scored against ``scratch`` -- the cloned state with this
    application's reservations released -- which is exactly the
    reference the fresh search scores its candidate against: u_bw from
    the resolver's current paths, u_c counting the placement's hosts
    that are idle on ``scratch`` (hosts only this application keeps
    active). Using the same reference on both sides makes keep-vs-move a
    like-for-like comparison; in particular, re-deriving the identical
    placement yields a gain of exactly zero.
    """
    ubw = 0.0
    for link in topology.links:
        path = ostro.resolver.path(
            placement.host_of(link.a), placement.host_of(link.b)
        )
        ubw += link.bw_mbps * len(path)
    hosts = {a.host for a in placement.assignments.values()}
    activated = sum(1 for host in hosts if not scratch.host_is_active(host))
    return objective.score(ubw, activated)


def _plan_moved_gb(topology: ApplicationTopology, plan: MigrationPlan) -> float:
    total = 0.0
    for step in plan.steps:
        record = topology.node(step.node)
        total += record.mem_gb if record.is_vm else record.size_gb
    return total


class DefragPlanner:
    """Periodic planner of bounded-disruption migration passes."""

    def __init__(self, config: DefragConfig) -> None:
        self.config = config
        self._ticks = 0

    def fragmentation(self, ostro: "Ostro") -> float:
        """Current fragmentation index of the scheduler's state."""
        return fragmentation_report(
            ostro.state,
            (d.placement for d in ostro.applications.values()),
        ).fragmentation_index

    def should_run(self, ostro: "Ostro") -> bool:
        """Advance the tick counter; True when a pass is due this tick."""
        self._ticks += 1
        if not self.config.enabled:
            return False
        if (self._ticks - 1) % max(1, self.config.cadence) != 0:
            return False
        return self.fragmentation(ostro) >= self.config.frag_threshold

    def _candidates(self, ostro: "Ostro") -> List[Tuple[float, str]]:
        """Committed applications ranked most-dispersed first (by
        :func:`~repro.sim.utilization.placement_spread`, the same
        rack-aware measure the fragmentation index aggregates).

        Applications with any node on a down host are skipped: crashed
        hosts belong to evacuation
        (:func:`repro.core.online.evacuate_host`), not to background
        optimization.
        """
        ranked: List[Tuple[float, str]] = []
        for app_name in sorted(ostro.applications):
            placement = ostro.applications[app_name].placement
            assignments = placement.assignments
            if not assignments:
                continue
            if any(
                ostro.state.host_is_down(a.host)
                for a in assignments.values()
            ):
                continue
            spread = placement_spread(ostro.cloud, placement)
            ranked.append((spread, app_name))
        ranked.sort(key=lambda item: (-item[0], item[1]))
        return ranked

    def plan_pass(self, ostro: "Ostro") -> DefragPassPlan:
        """Plan one pass against the current state (read-only)."""
        cfg = self.config
        pass_plan = DefragPassPlan(
            fragmentation_before=self.fragmentation(ostro)
        )
        budget = cfg.max_moves_per_pass
        deadline_left = cfg.deadline_s
        for _spread, app_name in self._candidates(ostro)[
            : cfg.max_apps_per_pass
        ]:
            if budget <= 0:
                break
            budget, deadline_left = self._consider(
                ostro, app_name, budget, deadline_left, pass_plan
            )
            if pass_plan.aborted:
                break
        return pass_plan

    def plan_app(
        self,
        ostro: "Ostro",
        app_name: str,
        budget: Optional[int] = None,
    ) -> DefragPassPlan:
        """Plan a targeted pass for a single application (read-only).

        The scale-in path's consolidation hook
        (:func:`repro.core.online.remove_vms_from_tier`): one application
        has just shed members, so only its own placement is re-derived --
        no fleet-wide candidate ranking, no fragmentation threshold, no
        cadence tick. Acceptance uses the exact same gain / consolidation
        / move-budget rules as a full pass.

        Applications with any node on a down host yield an empty plan
        (crashed hosts belong to evacuation, as in :meth:`_candidates`).
        """
        pass_plan = DefragPassPlan(
            fragmentation_before=self.fragmentation(ostro)
        )
        deployed = ostro.applications.get(app_name)
        if deployed is None or not deployed.placement.assignments:
            return pass_plan
        if any(
            ostro.state.host_is_down(a.host)
            for a in deployed.placement.assignments.values()
        ):
            return pass_plan
        self._consider(
            ostro,
            app_name,
            budget if budget is not None else self.config.max_moves_per_pass,
            self.config.deadline_s,
            pass_plan,
        )
        return pass_plan

    def _consider(
        self,
        ostro: "Ostro",
        app_name: str,
        budget: int,
        deadline_left: Optional[float],
        pass_plan: DefragPassPlan,
    ) -> Tuple[int, Optional[float]]:
        """Evaluate one candidate, appending to ``pass_plan`` when it is
        accepted; returns the remaining (move budget, deadline)."""
        cfg = self.config
        deployed = ostro.deployed(app_name)
        topology, old = deployed.topology, deployed.placement
        scratch = ostro.state.clone()
        _release_placement(scratch, ostro.resolver, topology, old)
        objective = Objective.for_topology(
            topology, ostro.cloud, ostro.theta_bw, ostro.theta_c
        )
        try:
            # construction validates the deadline too: an exhausted
            # (or zero) budget aborts the pass, never the fleet
            algo = make_algorithm(
                cfg.algorithm,
                greedy_config=ostro.greedy_config,
                **(
                    {"deadline_s": deadline_left}
                    if deadline_left is not None
                    else {}
                ),
            )
            result = algo.place(topology, ostro.cloud, scratch, objective)
        except DeadlineError:
            pass_plan.aborted = True
            return budget, deadline_left
        except PlacementError:
            return budget, deadline_left
        if deadline_left is not None:
            deadline_left -= result.runtime_s
            if deadline_left <= 0:
                pass_plan.aborted = True
        current_value = _placement_value(
            ostro, topology, old, objective, scratch
        )
        gain = current_value - result.objective_value
        # This is a DEfragmenter: only consolidating moves qualify.
        # A pure-bandwidth win that spreads the application wider
        # (more hosts, or the same hosts across more racks) would
        # raise the dispersion index -- leave those to the
        # foreground reoptimize path.
        spreads_wider = placement_spread(
            ostro.cloud, result.placement
        ) > placement_spread(ostro.cloud, old)
        if gain <= 0 or spreads_wider:
            return budget, deadline_left
        try:
            plan = plan_migration(
                topology,
                ostro.state,
                old,
                result.placement,
                max_bounces=cfg.max_bounces,
            )
        except PlacementError:
            return budget, deadline_left
        moved_gb = _plan_moved_gb(topology, plan)
        move_cost = cfg.move_cost_weight * moved_gb
        if (
            len(plan.steps) == 0
            or len(plan.steps) > budget
            or gain - move_cost <= cfg.margin
        ):
            return budget, deadline_left
        pass_plan.migrations.append(
            AppMigration(
                app_name=app_name,
                topology=topology,
                old_placement=old,
                new_placement=result.placement,
                plan=plan,
                gain=gain,
                move_cost=move_cost,
                moved_gb=moved_gb,
            )
        )
        return budget - len(plan.steps), deadline_left
