"""Continuous defragmentation: a bounded-disruption background
re-optimizer that runs interleaved with arrivals, departures, and fault
events.

* :class:`~repro.defrag.planner.DefragPlanner` periodically plans
  migration passes whose benefit (objective gain) must clear the cost of
  the moves themselves, under explicit disruption budgets.
* :class:`~repro.defrag.executor.DefragExecutor` applies plans
  transactionally under faults: every step gates through the injector's
  API boundary, rolls back bit-exactly on any fault, and keeps the
  scheduler's recorded placements synchronized so leak audits stay exact
  mid-plan.
* :func:`~repro.defrag.executor.run_defrag_tick` is the lowest-priority
  background tick wired into :func:`repro.sim.chaos.run_chaos` and
  :func:`repro.service.driver.run_service`.

See docs/ROBUSTNESS.md, "Continuous defragmentation".
"""

from repro.defrag.executor import (
    DefragExecutor,
    DefragStats,
    StepHook,
    run_defrag_tick,
)
from repro.defrag.planner import (
    AppMigration,
    DefragConfig,
    DefragPassPlan,
    DefragPlanner,
)

__all__ = [
    "AppMigration",
    "DefragConfig",
    "DefragExecutor",
    "DefragPassPlan",
    "DefragPlanner",
    "DefragStats",
    "StepHook",
    "run_defrag_tick",
]
