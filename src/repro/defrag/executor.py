"""Transactional execution of defragmentation passes under faults.

:class:`DefragExecutor` applies a planned pass one
:class:`~repro.core.migration.MigrationStep` at a time, treating every
step like any other surrogate API call:

* the step is gated through the fault injector's ``before_api_call``
  (service ``"defrag"``, method ``"migrate"``) and, when the scheduler
  carries a :class:`~repro.faults.retry.RetryPolicy`, retried under it
  -- transient faults back off and retry, permanent faults abort;
* the availability state is snapshotted immediately before the step and
  restored bit-exactly if *anything* goes wrong mid-step, so a fault can
  never leak a half-moved VM;
* a source or target host that crashed since planning aborts the step
  *before* any capacity is touched (crashed hosts belong to evacuation,
  and releasing capacity on a down host would absorb into the
  down-element record, which snapshots do not cover -- see
  docs/ROBUSTNESS.md, "the rollback protocol");
* after every successful step the application's *recorded* placement is
  updated to the node's actual position (bounce parking spots included),
  so :meth:`repro.core.scheduler.Ostro.verify_state` leak audits stay
  exact at every intermediate configuration.

An aborted pass leaves a consistent, audited state behind;
:func:`run_defrag_tick` then replans against the new state (bounded by
``max_replans``) so the optimizer adapts to the fault instead of
fighting it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from repro import obs
from repro.core.migration import MigrationStep, _Simulator
from repro.core.placement import Assignment
from repro.core.scheduler import DeployedApplication
from repro.defrag.planner import (
    AppMigration,
    DefragConfig,
    DefragPassPlan,
    DefragPlanner,
)
from repro.errors import PlacementError, ReproError
from repro.faults.retry import retry_call

if TYPE_CHECKING:  # pragma: no cover - avoids circular imports
    from repro.core.scheduler import Ostro

#: hook called before each step: (app_name, step_index, step). Tests use
#: it to inject faults at exact plan positions.
StepHook = Callable[[str, int, MigrationStep], None]


@dataclass
class DefragStats:
    """Disruption/benefit accounting of one run's defrag activity.

    Attributes:
        passes: passes that reached execution (>= 1 planned migration).
        aborted_passes: passes aborted mid-flight (fault, stale plan, or
            planning deadline).
        replans: fresh planning rounds triggered by an aborted pass.
        moves: final-destination migration steps executed.
        bounces: cycle-breaking intermediate steps executed.
        moved_gb: gigabytes (VM memory + volume size) relocated.
        move_seconds: virtual VM move-seconds of unavailability charged
            (``moved_gb * move_seconds_per_gb``).
        frag_recovered: cumulative drop of the fragmentation index
            across executed passes (negative if defrag made it worse).
    """

    passes: int = 0
    aborted_passes: int = 0
    replans: int = 0
    moves: int = 0
    bounces: int = 0
    moved_gb: float = 0.0
    move_seconds: float = 0.0
    frag_recovered: float = 0.0


class DefragExecutor:
    """Applies :class:`~repro.defrag.planner.DefragPassPlan` objects
    transactionally against a live scheduler."""

    def __init__(
        self,
        ostro: "Ostro",
        config: DefragConfig,
        step_hook: Optional[StepHook] = None,
    ) -> None:
        self.ostro = ostro
        self.config = config
        self.step_hook = step_hook

    def execute(self, pass_plan: DefragPassPlan, stats: DefragStats) -> bool:
        """Execute a pass; True when every migration completed, False
        when a fault/stale step aborted it (state stays consistent)."""
        for migration in pass_plan.migrations:
            if not self._execute_app(migration, stats):
                return False
        return True

    # ------------------------------------------------------------------
    # one application
    # ------------------------------------------------------------------

    def _execute_app(
        self, migration: AppMigration, stats: DefragStats
    ) -> bool:
        ostro = self.ostro
        deployed = ostro.applications.get(migration.app_name)
        if (
            deployed is None
            or deployed.placement.assignments
            != migration.old_placement.assignments
        ):
            # the app departed or moved (evacuation) since planning
            self._abort(migration.app_name, "stale plan")
            return False
        topology = migration.topology
        state = ostro.state
        sim = _Simulator(topology, state, ostro.resolver, deployed.placement)
        rec = obs.get_recorder()
        for index, step in enumerate(migration.plan.steps):
            if self.step_hook is not None:
                self.step_hook(migration.app_name, index, step)
            if self._endpoint_down(sim, step):
                self._abort(migration.app_name, "endpoint host down")
                return False
            before = state.snapshot()
            try:
                self._gated_move(sim, step)
            except ReproError as exc:
                state.restore(before)
                if rec.enabled:
                    rec.inc("ostro_defrag_rollbacks_total")
                    rec.event(
                        "defrag_step_rolled_back",
                        app=migration.app_name,
                        node=step.node,
                        reason=str(exc),
                    )
                self._abort(migration.app_name, str(exc))
                return False
            record = topology.node(step.node)
            moved_gb = record.mem_gb if record.is_vm else record.size_gb
            deployed.placement.assignments[step.node] = Assignment(
                node=step.node, host=step.to_host, disk=step.to_disk
            )
            if step.bounce:
                stats.bounces += 1
            else:
                stats.moves += 1
            stats.moved_gb += moved_gb
            stats.move_seconds += moved_gb * self.config.move_seconds_per_gb
            if rec.enabled:
                rec.inc(
                    "ostro_defrag_moves_total",
                    kind="bounce" if step.bounce else "move",
                )
                rec.inc("ostro_defrag_moved_gb_total", moved_gb)
                rec.event(
                    "migration_step",
                    node=step.node,
                    to_host=step.to_host,
                    to_disk=step.to_disk,
                    bounce=step.bounce,
                    moved_gb=moved_gb,
                    app=migration.app_name,
                    background=True,
                )
        # every step landed: record the clean new placement (assignments
        # already match it; this restores exact aggregate accounting)
        ostro.applications[migration.app_name] = DeployedApplication(
            topology=topology, placement=migration.new_placement
        )
        return True

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------

    def _endpoint_down(self, sim: _Simulator, step: MigrationStep) -> bool:
        """True when the step's source or target host has crashed."""
        state = self.ostro.state
        cloud = state.cloud
        record = sim.topology.node(step.node)
        from_host, from_disk = sim.location[step.node]
        if record.is_vm:
            source = from_host
            target = step.to_host
        else:
            source = cloud.disks[from_disk].host.index
            target = (
                cloud.disks[step.to_disk].host.index
                if step.to_disk is not None
                else step.to_host
            )
        return state.host_is_down(source) or state.host_is_down(target)

    def _gated_move(self, sim: _Simulator, step: MigrationStep) -> None:
        ostro = self.ostro

        def attempt() -> None:
            if ostro.injector is not None:
                ostro.injector.before_api_call("defrag", "migrate")
            if not sim.try_move(step.node, step.to_host, step.to_disk):
                raise PlacementError(
                    f"defrag step for {step.node!r} no longer fits; "
                    "re-plan against the current state"
                )

        if ostro.retry_policy is not None:
            retry_call(
                ostro.retry_policy,
                attempt,
                service="defrag",
                method="migrate",
            )
        else:
            attempt()

    def _abort(self, app_name: str, reason: str) -> None:
        rec = obs.get_recorder()
        if rec.enabled:
            rec.inc("ostro_defrag_passes_total", outcome="aborted")
            rec.event("defrag_pass_aborted", app=app_name, reason=reason)


def run_defrag_tick(
    ostro: "Ostro",
    planner: DefragPlanner,
    executor: DefragExecutor,
    stats: DefragStats,
) -> None:
    """One lowest-priority background tick: plan, execute, replan.

    Runs at most ``1 + max_replans`` plan/execute rounds; every abort is
    followed by a fresh plan against the post-fault state. Ticks where
    the planner finds nothing beneficial execute no move and leave the
    state (and every fingerprint) untouched.
    """
    if not planner.should_run(ostro):
        return
    rec = obs.get_recorder()
    attempts = 0
    while True:
        pass_plan = planner.plan_pass(ostro)
        if pass_plan.aborted and not pass_plan.migrations:
            stats.aborted_passes += 1
            break
        if not pass_plan.migrations:
            break
        stats.passes += 1
        completed = executor.execute(pass_plan, stats)
        frag_after = planner.fragmentation(ostro)
        stats.frag_recovered += pass_plan.fragmentation_before - frag_after
        if rec.enabled:
            rec.set_gauge("ostro_defrag_fragmentation_index", frag_after)
        if completed:
            if pass_plan.aborted:
                # planning deadline fired; the executed prefix stands
                stats.aborted_passes += 1
            if rec.enabled:
                rec.inc("ostro_defrag_passes_total", outcome="completed")
                rec.event(
                    "defrag_pass",
                    apps=len(pass_plan.migrations),
                    moves=pass_plan.moves,
                    gain=sum(m.gain for m in pass_plan.migrations),
                )
            break
        stats.aborted_passes += 1
        attempts += 1
        if attempts > executor.config.max_replans:
            break
        stats.replans += 1
        if rec.enabled:
            rec.inc("ostro_defrag_replans_total")
            rec.event("defrag_replan", attempt=attempts)
