"""Hierarchical data-center substrate (Fig. 3 of the paper).

This subpackage models the physical side of the placement problem:

* :mod:`repro.datacenter.resources` -- resource vectors (vCPU / memory / disk).
* :mod:`repro.datacenter.model` -- the static structure: disks, hosts, racks,
  pods, data centers, and a :class:`~repro.datacenter.model.Cloud` root.
* :mod:`repro.datacenter.network` -- network paths between hosts and the
  hop-count / separation-level arithmetic used by the objective function.
* :mod:`repro.datacenter.state` -- the mutable availability state
  (free CPU/memory/disk/bandwidth) with cheap cloning for search.
* :mod:`repro.datacenter.builder` -- constructors for the paper's testbed and
  simulated large-scale data centers.
* :mod:`repro.datacenter.loadgen` -- background load generators reproducing
  the paper's non-uniform resource-availability configurations.
"""

from repro.datacenter.builder import (
    build_cloud,
    build_datacenter,
    build_testbed,
)
from repro.datacenter.model import Cloud, DataCenter, Disk, Host, Level, Pod, Rack
from repro.datacenter.network import PathResolver
from repro.datacenter.resources import ResourceVector
from repro.datacenter.serialize import (
    cloud_from_dict,
    cloud_to_dict,
    load_cloud,
    save_cloud,
)
from repro.datacenter.state import DataCenterState

__all__ = [
    "Cloud",
    "DataCenter",
    "DataCenterState",
    "Disk",
    "Host",
    "Level",
    "PathResolver",
    "Pod",
    "Rack",
    "ResourceVector",
    "build_cloud",
    "build_datacenter",
    "build_testbed",
    "cloud_from_dict",
    "cloud_to_dict",
    "load_cloud",
    "save_cloud",
]
