"""Static structure of a hierarchical data center (paper Fig. 3).

The physical hierarchy is::

    Cloud (root / WAN interconnect)
      DataCenter (root switch)
        [Pod (pod switch)]      -- optional layer; the paper's simulation
          Rack (ToR switch)     --   omits pods "for simplicity"
            Host
              Disk(s)

Each element that carries network traffic owns an *uplink*: hosts have a NIC
link to their ToR switch, racks an uplink to the pod switch (or directly to
the data-center root when pods are absent), pods an uplink to the root, and
data centers an uplink into the cloud interconnect. Every such link gets a
global integer index so the mutable availability state
(:mod:`repro.datacenter.state`) can track free bandwidth in a flat array.

Separation levels
-----------------

:class:`Level` enumerates the diversity-zone levels of the paper (host,
rack, pod, data center). The *distance* between two hosts is the first level
at which their ancestor chains diverge (0 = same host, 1 = same rack but
different hosts, 2 = same pod different racks, 3 = same data center
different pods, 4 = different data centers). In a pod-less data center each
rack connects straight to the root, so two hosts in different racks are
already separated at the pod level: each rack acts as its own implicit pod.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import DataCenterError


class Level(IntEnum):
    """Diversity-zone / separation levels, ordered from finest to coarsest."""

    HOST = 0
    RACK = 1
    POD = 2
    DATACENTER = 3

    @staticmethod
    def parse(name: str) -> "Level":
        """Parse a case-insensitive level name ('host', 'rack', ...)."""
        try:
            return Level[name.strip().upper()]
        except KeyError:
            raise DataCenterError(f"unknown diversity level: {name!r}") from None


@dataclass
class Disk:
    """A disk attached to a host, on which volumes are placed.

    Attributes:
        name: globally unique disk name.
        capacity_gb: raw capacity in gigabytes.
        index: global disk index, assigned by :class:`Cloud`.
        host: back-reference to the owning host.
    """

    name: str
    capacity_gb: float
    index: int = -1
    host: "Host" = field(default=None, repr=False)  # type: ignore[assignment]


@dataclass
class Host:
    """A physical host server.

    Attributes:
        name: globally unique host name.
        cpu_cores: total vCPU capacity.
        mem_gb: total memory in GB.
        disks: locally attached disks.
        nic_bw_mbps: capacity of the link between this host and its ToR
            switch, in Mbps.
        index: global host index, assigned by :class:`Cloud`.
        link_index: global link index of the host<->ToR link.
        rack: back-reference to the owning rack.
    """

    name: str
    cpu_cores: float
    mem_gb: float
    disks: List[Disk] = field(default_factory=list)
    nic_bw_mbps: float = 10_000.0
    index: int = -1
    link_index: int = -1
    rack: "Rack" = field(default=None, repr=False)  # type: ignore[assignment]

    def total_disk_gb(self) -> float:
        """Sum of the capacities of all locally attached disks."""
        return sum(disk.capacity_gb for disk in self.disks)


@dataclass
class Rack:
    """A rack of hosts under one ToR switch.

    Attributes:
        name: globally unique rack name.
        hosts: hosts in the rack.
        uplink_bw_mbps: capacity of the ToR uplink (to the pod switch, or to
            the data-center root when the data center has no pods).
        index: global rack index.
        link_index: global link index of the ToR uplink.
        pod: owning pod, or None when racks attach directly to the root.
        datacenter: owning data center.
    """

    name: str
    hosts: List[Host] = field(default_factory=list)
    uplink_bw_mbps: float = 100_000.0
    index: int = -1
    link_index: int = -1
    pod: Optional["Pod"] = field(default=None, repr=False)
    datacenter: "DataCenter" = field(default=None, repr=False)  # type: ignore[assignment]


@dataclass
class Pod:
    """A pod of racks under one pod switch.

    Attributes:
        name: globally unique pod name.
        racks: racks in the pod.
        uplink_bw_mbps: capacity of the pod switch's uplink to the root.
        index: global pod index.
        link_index: global link index of the pod uplink.
        datacenter: owning data center.
    """

    name: str
    racks: List[Rack] = field(default_factory=list)
    uplink_bw_mbps: float = 400_000.0
    index: int = -1
    link_index: int = -1
    datacenter: "DataCenter" = field(default=None, repr=False)  # type: ignore[assignment]


@dataclass
class DataCenter:
    """A data center: a root switch over pods and/or pod-less racks.

    Attributes:
        name: globally unique data-center name.
        pods: pods under the root switch.
        racks: racks attached directly to the root switch (pod-less).
        uplink_bw_mbps: capacity of the data center's WAN uplink, used only
            when the cloud contains several data centers.
        index: global data-center index.
        link_index: global link index of the WAN uplink (-1 if single-DC).
    """

    name: str
    pods: List[Pod] = field(default_factory=list)
    racks: List[Rack] = field(default_factory=list)
    uplink_bw_mbps: float = 1_000_000.0
    index: int = -1
    link_index: int = -1

    def all_racks(self) -> Iterator[Rack]:
        """Iterate every rack, whether under a pod or directly attached."""
        for pod in self.pods:
            yield from pod.racks
        yield from self.racks


class Cloud:
    """The root container: one or more data centers plus global indexing.

    Construction walks the hierarchy once, assigns dense integer indices to
    hosts, disks, racks, pods, data centers and network links, and wires up
    back-references. All placement algorithms address elements by these
    indices; names are for humans and templates.
    """

    def __init__(self, datacenters: Sequence[DataCenter]) -> None:
        if not datacenters:
            raise DataCenterError("a cloud must contain at least one data center")
        self.datacenters: List[DataCenter] = list(datacenters)
        self.hosts: List[Host] = []
        self.disks: List[Disk] = []
        self.racks: List[Rack] = []
        self.pods: List[Pod] = []
        #: capacity (Mbps) of each indexed network link
        self.link_capacity_mbps: List[float] = []
        #: human-readable description of each link, same indexing
        self.link_names: List[str] = []
        self._hosts_by_name: Dict[str, Host] = {}
        self._disks_by_name: Dict[str, Disk] = {}
        # Per-host uplink chain: tuple of (link_index, switch_key) pairs from
        # the host NIC up to the cloud root. switch_key identifies the switch
        # reached after traversing that link.
        self._chains: List[Tuple[Tuple[int, Tuple[str, int]], ...]] = []
        # Per-host ancestor keys for distance computation:
        # (rack_index, implicit_pod_key, dc_index)
        self._ancestors: List[Tuple[int, Tuple[str, int], int]] = []
        self._index()
        # Link-only view of each chain, precomputed once: uplink_chain()
        # sits inside the candidate-signature hot loop.
        self._uplink_chains: List[Tuple[int, ...]] = [
            tuple(link for link, _ in chain) for chain in self._chains
        ]

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------

    def _new_link(self, capacity_mbps: float, name: str) -> int:
        self.link_capacity_mbps.append(capacity_mbps)
        self.link_names.append(name)
        return len(self.link_capacity_mbps) - 1

    def _index(self) -> None:
        multi_dc = len(self.datacenters) > 1
        for dc_i, dc in enumerate(self.datacenters):
            dc.index = dc_i
            if multi_dc:
                dc.link_index = self._new_link(
                    dc.uplink_bw_mbps, f"wan:{dc.name}"
                )
            for pod in dc.pods:
                pod.datacenter = dc
                pod.index = len(self.pods)
                self.pods.append(pod)
                pod.link_index = self._new_link(
                    pod.uplink_bw_mbps, f"pod-uplink:{pod.name}"
                )
                for rack in pod.racks:
                    self._index_rack(rack, dc, pod)
            for rack in dc.racks:
                self._index_rack(rack, dc, None)
        if not self.hosts:
            raise DataCenterError("cloud contains no hosts")

    def _index_rack(self, rack: Rack, dc: DataCenter, pod: Optional[Pod]) -> None:
        rack.datacenter = dc
        rack.pod = pod
        rack.index = len(self.racks)
        self.racks.append(rack)
        rack.link_index = self._new_link(
            rack.uplink_bw_mbps, f"tor-uplink:{rack.name}"
        )
        for host in rack.hosts:
            self._index_host(host, rack, dc, pod)

    def _index_host(
        self, host: Host, rack: Rack, dc: DataCenter, pod: Optional[Pod]
    ) -> None:
        if host.name in self._hosts_by_name:
            raise DataCenterError(f"duplicate host name: {host.name!r}")
        host.rack = rack
        host.index = len(self.hosts)
        self.hosts.append(host)
        self._hosts_by_name[host.name] = host
        host.link_index = self._new_link(host.nic_bw_mbps, f"nic:{host.name}")
        for disk in host.disks:
            if disk.name in self._disks_by_name:
                raise DataCenterError(f"duplicate disk name: {disk.name!r}")
            disk.host = host
            disk.index = len(self.disks)
            self.disks.append(disk)
            self._disks_by_name[disk.name] = disk
        # Uplink chain: NIC -> ToR, ToR uplink -> pod switch or DC root,
        # [pod uplink -> DC root], [WAN uplink -> cloud root].
        chain: List[Tuple[int, Tuple[str, int]]] = [
            (host.link_index, ("rack", rack.index))
        ]
        if pod is not None:
            chain.append((rack.link_index, ("pod", pod.index)))
            chain.append((pod.link_index, ("dcroot", dc.index)))
            implicit_pod_key = ("pod", pod.index)
        else:
            chain.append((rack.link_index, ("dcroot", dc.index)))
            # A pod-less rack acts as its own implicit pod.
            implicit_pod_key = ("rack-as-pod", rack.index)
        if dc.link_index >= 0:
            chain.append((dc.link_index, ("cloudroot", 0)))
        self._chains.append(tuple(chain))
        self._ancestors.append((rack.index, implicit_pod_key, dc.index))

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def host_by_name(self, name: str) -> Host:
        """Look up a host by name, raising DataCenterError if unknown."""
        try:
            return self._hosts_by_name[name]
        except KeyError:
            raise DataCenterError(f"unknown host: {name!r}") from None

    def disk_by_name(self, name: str) -> Disk:
        """Look up a disk by name, raising DataCenterError if unknown."""
        try:
            return self._disks_by_name[name]
        except KeyError:
            raise DataCenterError(f"unknown disk: {name!r}") from None

    @property
    def num_hosts(self) -> int:
        """Number of hosts in the cloud."""
        return len(self.hosts)

    @property
    def num_links(self) -> int:
        """Number of indexed network links in the cloud."""
        return len(self.link_capacity_mbps)

    # ------------------------------------------------------------------
    # topology arithmetic (used heavily by the algorithms)
    # ------------------------------------------------------------------

    def distance(self, host_a: int, host_b: int) -> int:
        """Separation distance between two hosts (by index).

        Returns 0 for the same host, 1 for same rack, 2 for same pod but
        different racks, 3 for same data center but different pods, and 4
        for different data centers. In pod-less data centers different racks
        yield distance 3 (each rack is its own implicit pod).
        """
        if host_a == host_b:
            return 0
        rack_a, pod_a, dc_a = self._ancestors[host_a]
        rack_b, pod_b, dc_b = self._ancestors[host_b]
        if dc_a != dc_b:
            return 4
        if pod_a != pod_b:
            return 3
        if rack_a != rack_b:
            return 2
        return 1

    def separated_at(self, host_a: int, host_b: int, level: Level) -> bool:
        """True if two hosts satisfy a diversity requirement at ``level``."""
        return self.distance(host_a, host_b) > int(level)

    def path(self, host_a: int, host_b: int) -> Tuple[int, ...]:
        """Network links traversed by traffic between two hosts.

        Returns a tuple of global link indices; empty when both endpoints
        are the same host (intra-host traffic never touches the network).
        """
        if host_a == host_b:
            return ()
        chain_a = self._chains[host_a]
        chain_b = self._chains[host_b]
        # Find the lowest common switch reached by both chains.
        reach_b = {switch: steps for steps, (_, switch) in enumerate(chain_b)}
        for steps_a, (_, switch) in enumerate(chain_a):
            if switch in reach_b:
                steps_b = reach_b[switch]
                links = [link for link, _ in chain_a[: steps_a + 1]]
                links.extend(link for link, _ in chain_b[: steps_b + 1])
                return tuple(links)
        raise DataCenterError(
            f"no network path between hosts {host_a} and {host_b}"
        )

    def hop_count(self, host_a: int, host_b: int) -> int:
        """Number of links on the path between two hosts."""
        return len(self.path(host_a, host_b))

    def uplink_chain(self, host: int) -> Tuple[int, ...]:
        """Link indices from a host's NIC up to the top of the hierarchy.

        The first entry is always the host<->ToR link; later entries are
        the ToR uplink, the pod uplink (when pods exist), and the WAN
        uplink (when the cloud spans several data centers).
        """
        return self._uplink_chains[host]

    def max_hop_count(self) -> int:
        """Longest possible path length between any two hosts.

        Used to normalize the bandwidth term of the objective function: the
        worst-case placement routes every flow through the top of the
        hierarchy, consuming both endpoints' full uplink chains.
        """
        longest = max(len(chain) for chain in self._chains)
        return 2 * longest

    def min_hops_for_distance(self, dist: int) -> int:
        """Optimistic (minimal) hop count for a given separation distance.

        Used by the admissible heuristic: two nodes that *must* be separated
        at a given level consume at least this many link traversals. The
        value is computed over the actual cloud structure, so pod-less data
        centers report 4 hops for distance 3 (host NIC + ToR uplink on both
        sides) while podded ones report 6.
        """
        if dist <= 0:
            return 0
        best: Optional[int] = None
        for chain in self._chains:
            # steps needed on one side to reach a switch at/above `dist`
            steps = self._steps_for_distance(chain, dist)
            if steps is not None and (best is None or steps < best):
                best = steps
        if best is None:
            raise DataCenterError(
                f"cloud cannot separate hosts at distance {dist}"
            )
        return 2 * best

    @staticmethod
    def _steps_for_distance(
        chain: Tuple[Tuple[int, Tuple[str, int]], ...], dist: int
    ) -> Optional[int]:
        # Distance d requires meeting at a switch whose scope covers d:
        # rack switch covers distance 1, pod switch 2..3 (implicit pods make
        # rack==pod), dc root 3, cloud root 4.
        scope_needed = {1: "rack", 2: "pod", 3: "dcroot", 4: "cloudroot"}[dist]
        order = ["rack", "pod", "dcroot", "cloudroot"]
        min_rank = order.index(scope_needed)
        for steps, (_, (kind, _key)) in enumerate(chain):
            rank = order.index("pod" if kind == "rack-as-pod" else kind)
            if rank >= min_rank:
                return steps + 1
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cloud(datacenters={len(self.datacenters)}, racks={len(self.racks)},"
            f" hosts={len(self.hosts)}, disks={len(self.disks)},"
            f" links={self.num_links})"
        )
