"""Serialize data-center descriptions to and from JSON-compatible dicts.

Operators describe their fabric once (hosts, racks, pods, data centers,
link capacities) and load it wherever a :class:`~repro.datacenter.model
.Cloud` is needed; round-tripping is exact. The format mirrors the model
hierarchy::

    {
      "datacenters": [
        {"name": "dc1",
         "uplink_bw_mbps": 1000000,
         "pods": [ {"name": "p1", "uplink_bw_mbps": 400000,
                    "racks": [ ... ]} ],
         "racks": [                       # pod-less racks
            {"name": "r1", "uplink_bw_mbps": 100000,
             "hosts": [
                {"name": "h1", "cpu_cores": 16, "mem_gb": 32,
                 "nic_bw_mbps": 10000,
                 "disks": [{"name": "h1-d0", "capacity_gb": 1000}]}
             ]}
         ]}
      ]
    }
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.datacenter.model import Cloud, DataCenter, Disk, Host, Pod, Rack
from repro.errors import DataCenterError


def cloud_to_dict(cloud: Cloud) -> Dict[str, Any]:
    """Serialize a cloud's static structure (capacities, not state)."""

    def host_dict(host: Host) -> Dict[str, Any]:
        return {
            "name": host.name,
            "cpu_cores": host.cpu_cores,
            "mem_gb": host.mem_gb,
            "nic_bw_mbps": host.nic_bw_mbps,
            "disks": [
                {"name": d.name, "capacity_gb": d.capacity_gb}
                for d in host.disks
            ],
        }

    def rack_dict(rack: Rack) -> Dict[str, Any]:
        return {
            "name": rack.name,
            "uplink_bw_mbps": rack.uplink_bw_mbps,
            "hosts": [host_dict(h) for h in rack.hosts],
        }

    datacenters: List[Dict[str, Any]] = []
    for dc in cloud.datacenters:
        datacenters.append(
            {
                "name": dc.name,
                "uplink_bw_mbps": dc.uplink_bw_mbps,
                "pods": [
                    {
                        "name": pod.name,
                        "uplink_bw_mbps": pod.uplink_bw_mbps,
                        "racks": [rack_dict(r) for r in pod.racks],
                    }
                    for pod in dc.pods
                ],
                "racks": [rack_dict(r) for r in dc.racks],
            }
        )
    return {"datacenters": datacenters}


def cloud_from_dict(data: Dict[str, Any]) -> Cloud:
    """Build a cloud from a description produced by :func:`cloud_to_dict`
    (or written by hand)."""

    def parse_host(entry: Dict[str, Any]) -> Host:
        try:
            return Host(
                name=entry["name"],
                cpu_cores=float(entry["cpu_cores"]),
                mem_gb=float(entry["mem_gb"]),
                nic_bw_mbps=float(entry.get("nic_bw_mbps", 10_000.0)),
                disks=[
                    Disk(name=d["name"], capacity_gb=float(d["capacity_gb"]))
                    for d in entry.get("disks", [])
                ],
            )
        except KeyError as exc:
            raise DataCenterError(f"host entry missing {exc}") from exc

    def parse_rack(entry: Dict[str, Any]) -> Rack:
        try:
            return Rack(
                name=entry["name"],
                uplink_bw_mbps=float(entry.get("uplink_bw_mbps", 100_000.0)),
                hosts=[parse_host(h) for h in entry.get("hosts", [])],
            )
        except KeyError as exc:
            raise DataCenterError(f"rack entry missing {exc}") from exc

    datacenters = []
    for dc_entry in data.get("datacenters", []):
        try:
            name = dc_entry["name"]
        except KeyError as exc:
            raise DataCenterError("data center entry missing name") from exc
        pods = [
            Pod(
                name=p["name"],
                uplink_bw_mbps=float(p.get("uplink_bw_mbps", 400_000.0)),
                racks=[parse_rack(r) for r in p.get("racks", [])],
            )
            for p in dc_entry.get("pods", [])
        ]
        racks = [parse_rack(r) for r in dc_entry.get("racks", [])]
        datacenters.append(
            DataCenter(
                name=name,
                pods=pods,
                racks=racks,
                uplink_bw_mbps=float(
                    dc_entry.get("uplink_bw_mbps", 1_000_000.0)
                ),
            )
        )
    return Cloud(datacenters)


def save_cloud(cloud: Cloud, path: str) -> None:
    """Write a cloud description to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(cloud_to_dict(cloud), handle, indent=2)


def load_cloud(path: str) -> Cloud:
    """Load a cloud description from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        return cloud_from_dict(json.load(handle))
