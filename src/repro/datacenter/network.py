"""Network path resolution and bandwidth tallying.

The structural path computation lives on :class:`repro.datacenter.model.Cloud`
(it is pure topology); this module adds the pieces the placement algorithms
need on top of it:

* :class:`PathResolver` -- a memoizing facade over ``Cloud.path`` /
  ``Cloud.distance``; path lookups are hot inside the search loops.
* :func:`tally_flows` -- aggregate the per-link bandwidth demand of a set of
  flows, correctly summing flows that share links.
"""

from __future__ import annotations

import weakref
from typing import Dict, Iterable, List, Tuple

from repro.datacenter.model import Cloud


class PathResolver:
    """Memoizing path / distance / hop-count lookups over a cloud.

    The cache key is the unordered host pair, since paths are symmetric.
    For the scales in the paper (hundreds of placed nodes) the cache stays
    small: only pairs that the search actually inspects are stored.

    One resolver can (and should) be shared by everything operating on the
    same cloud -- candidate generation, the lower-bound estimator, the
    scheduler, and placement validation all hit the same pairs, so a shared
    cache turns repeated structural work into dict lookups. Use
    :meth:`for_cloud` to get the per-cloud shared instance.
    """

    #: per-cloud shared resolvers; weak keys so dropping a cloud drops its
    #: caches with it
    _shared: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

    def __init__(self, cloud: Cloud) -> None:
        self.cloud = cloud
        self._paths: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        self._distances: Dict[Tuple[int, int], int] = {}
        self._hops: Dict[Tuple[int, int], int] = {}
        # host -> list of distances to every other host, built lazily
        self._distance_rows: Dict[int, List[int]] = {}

    @classmethod
    def for_cloud(cls, cloud: Cloud) -> "PathResolver":
        """The shared memoizing resolver for a cloud (created on demand)."""
        resolver = cls._shared.get(cloud)
        if resolver is None:
            resolver = cls(cloud)
            cls._shared[cloud] = resolver
        return resolver

    def path(self, host_a: int, host_b: int) -> Tuple[int, ...]:
        """Links traversed between two hosts (empty if the same host)."""
        key = (host_a, host_b) if host_a <= host_b else (host_b, host_a)
        cached = self._paths.get(key)
        if cached is None:
            cached = self.cloud.path(key[0], key[1])
            self._paths[key] = cached
        return cached

    def distance(self, host_a: int, host_b: int) -> int:
        """Separation distance between two hosts (0..4)."""
        key = (host_a, host_b) if host_a <= host_b else (host_b, host_a)
        cached = self._distances.get(key)
        if cached is None:
            cached = self.cloud.distance(key[0], key[1])
            self._distances[key] = cached
        return cached

    def distance_row(self, host: int) -> List[int]:
        """Distances from one host to every host, as an indexable row.

        Built once per host and cached; candidate deduplication reads the
        distance to every placed host for every feasible host, and a plain
        list index beats a per-pair function call there. Treat the returned
        row as read-only.
        """
        row = self._distance_rows.get(host)
        if row is None:
            cloud = self.cloud
            row = [cloud.distance(host, other) for other in range(cloud.num_hosts)]
            self._distance_rows[host] = row
        return row

    def hop_count(self, host_a: int, host_b: int) -> int:
        """Number of links between two hosts (memoized separately from
        :meth:`path` so the hot estimator loop is one dict hit)."""
        key = (host_a, host_b) if host_a <= host_b else (host_b, host_a)
        cached = self._hops.get(key)
        if cached is None:
            cached = len(self.path(key[0], key[1]))
            self._hops[key] = cached
        return cached


def tally_flows(
    resolver: PathResolver,
    flows: Iterable[Tuple[int, int, float]],
) -> Dict[int, float]:
    """Aggregate per-link bandwidth demand of ``(host_a, host_b, mbps)`` flows.

    Flows between the same host pair, or distinct pairs whose paths share
    links (for example two flows leaving the same rack), are summed on the
    shared links -- this is what makes cumulative feasibility checks correct
    when one node has several already-placed neighbors.
    """
    demand: Dict[int, float] = {}
    for host_a, host_b, mbps in flows:
        if mbps <= 0:
            continue
        for link in resolver.path(host_a, host_b):
            demand[link] = demand.get(link, 0.0) + mbps
    return demand


def total_reserved_bandwidth(
    resolver: PathResolver,
    flows: Iterable[Tuple[int, int, float]],
) -> float:
    """Total bandwidth reserved across all links for the given flows.

    This is the paper's ``u_bw``: each flow contributes its bandwidth once
    per link it traverses, so widely separated endpoints cost more.
    """
    return sum(
        mbps * len(resolver.path(host_a, host_b))
        for host_a, host_b, mbps in flows
        if mbps > 0
    )
