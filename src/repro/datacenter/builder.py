"""Constructors for the data-center configurations used in the paper.

* :func:`build_testbed` -- the 16-host, single-rack experimental cluster of
  Section IV-A (16 cores / 32 GB / 1 TB per host, 3200 Mbps host links).
* :func:`build_datacenter` -- the simulated large-scale data center of
  Section IV-C (150 racks x 16 hosts, 10 Gbps host links, 100 Gbps ToR
  uplinks, no pod switches), with every dimension parameterizable.
* :func:`build_cloud` -- multiple (optionally podded) data centers under a
  WAN interconnect, for the "multiple connected data centers" case the
  paper's model supports (Fig. 3).
"""

from __future__ import annotations

from typing import Optional

from repro.datacenter.model import Cloud, DataCenter, Disk, Host, Pod, Rack
from repro.errors import DataCenterError
from repro.units import gbps, tb


def cloud_from_spec(spec: str) -> Cloud:
    """Build a cloud from a CLI-style spec string.

    ``"testbed"`` builds the 16-host experimental cluster,
    ``"dc:<racks>"`` a simulated data center with that many 16-host
    racks, and ``"pods:<P>"`` (or ``"pods:<P>x<R>x<H>"``) a single
    podded data center with P pods of R racks of H hosts (R and H
    default to 2 and 8 -- the shape the sharded admission service
    partitions). The spec is plain data, so parallel workers can rebuild
    the same cloud deterministically instead of pickling a Cloud object.
    """
    if spec == "testbed":
        return build_testbed()
    if spec.startswith("dc:"):
        try:
            racks = int(spec.split(":", 1)[1])
        except ValueError:
            raise DataCenterError(
                f"bad rack count in data center spec {spec!r}"
            ) from None
        return build_datacenter(num_racks=racks)
    if spec.startswith("pods:"):
        dims = spec.split(":", 1)[1].split("x")
        try:
            pods = int(dims[0])
            racks_per_pod = int(dims[1]) if len(dims) > 1 else 2
            hosts_per_rack = int(dims[2]) if len(dims) > 2 else 8
        except (ValueError, IndexError):
            raise DataCenterError(
                f"bad pod spec {spec!r}; use 'pods:<P>' or 'pods:<P>x<R>x<H>'"
            ) from None
        return build_cloud(
            num_datacenters=1,
            pods_per_dc=pods,
            racks_per_pod=racks_per_pod,
            hosts_per_rack=hosts_per_rack,
        )
    raise DataCenterError(
        f"unknown data center spec {spec!r}; use 'testbed', 'dc:<racks>', "
        "or 'pods:<P>[x<R>x<H>]'"
    )


def _make_host(
    name: str,
    cpu_cores: float,
    mem_gb: float,
    disk_gb: float,
    nic_bw_mbps: float,
    disks_per_host: int = 1,
) -> Host:
    disks = [
        Disk(name=f"{name}-disk{d}", capacity_gb=disk_gb / disks_per_host)
        for d in range(disks_per_host)
    ]
    return Host(
        name=name,
        cpu_cores=cpu_cores,
        mem_gb=mem_gb,
        disks=disks,
        nic_bw_mbps=nic_bw_mbps,
    )


def build_testbed(
    num_hosts: int = 16,
    cpu_cores: float = 16,
    mem_gb: float = 32,
    disk_gb: float = tb(1),
    host_bw_mbps: float = 3200.0,
    tor_uplink_mbps: float = gbps(40),
) -> Cloud:
    """Build the paper's 16-host experimental cluster (Section IV-A).

    A single rack under one ToR switch; each host has dual Xeons modeled as
    16 cores, 32 GB memory, and a 1 TB disk; the host-to-ToR bandwidth is
    3200 Mbps. The ToR uplink is irrelevant for a single-rack cluster but is
    given a generous default so multi-rack variants of the testbed work too.
    """
    hosts = [
        _make_host(f"host{i + 1}", cpu_cores, mem_gb, disk_gb, host_bw_mbps)
        for i in range(num_hosts)
    ]
    rack = Rack(name="rack1", hosts=hosts, uplink_bw_mbps=tor_uplink_mbps)
    return Cloud([DataCenter(name="testbed", racks=[rack])])


def build_datacenter(
    num_racks: int = 150,
    hosts_per_rack: int = 16,
    cpu_cores: float = 16,
    mem_gb: float = 32,
    disk_gb: float = tb(1),
    host_bw_mbps: float = gbps(10),
    tor_uplink_mbps: float = gbps(100),
    name: str = "dc1",
) -> Cloud:
    """Build the simulated large-scale data center of Section IV-C.

    Defaults match the paper: 2400 hosts in 150 racks of 16, 10 Gbps host
    links, 100 Gbps ToR-to-root links, and no pod switches ("for
    simplicity"). Reduced-scale variants simply pass smaller ``num_racks``.
    """
    racks = []
    for r in range(num_racks):
        hosts = [
            _make_host(
                f"{name}-r{r + 1}-h{h + 1}",
                cpu_cores,
                mem_gb,
                disk_gb,
                host_bw_mbps,
            )
            for h in range(hosts_per_rack)
        ]
        racks.append(
            Rack(
                name=f"{name}-rack{r + 1}",
                hosts=hosts,
                uplink_bw_mbps=tor_uplink_mbps,
            )
        )
    return Cloud([DataCenter(name=name, racks=racks)])


def build_cloud(
    num_datacenters: int = 3,
    pods_per_dc: int = 2,
    racks_per_pod: int = 4,
    hosts_per_rack: int = 16,
    cpu_cores: float = 16,
    mem_gb: float = 32,
    disk_gb: float = tb(1),
    host_bw_mbps: float = gbps(10),
    tor_uplink_mbps: float = gbps(40),
    pod_uplink_mbps: float = gbps(100),
    dc_uplink_mbps: Optional[float] = gbps(100),
) -> Cloud:
    """Build a multi-data-center cloud with the full Fig. 3 hierarchy.

    Hosts sit in racks under ToR switches, racks group under pod switches,
    pods connect to each data center's root, and roots interconnect over a
    WAN link. This exercises every separation level (host, rack, pod, data
    center) and is used by the diversity-zone and multi-DC tests.
    """
    datacenters = []
    for d in range(num_datacenters):
        pods = []
        for p in range(pods_per_dc):
            racks = []
            for r in range(racks_per_pod):
                hosts = [
                    _make_host(
                        f"dc{d + 1}-p{p + 1}-r{r + 1}-h{h + 1}",
                        cpu_cores,
                        mem_gb,
                        disk_gb,
                        host_bw_mbps,
                    )
                    for h in range(hosts_per_rack)
                ]
                racks.append(
                    Rack(
                        name=f"dc{d + 1}-p{p + 1}-rack{r + 1}",
                        hosts=hosts,
                        uplink_bw_mbps=tor_uplink_mbps,
                    )
                )
            pods.append(
                Pod(
                    name=f"dc{d + 1}-pod{p + 1}",
                    racks=racks,
                    uplink_bw_mbps=pod_uplink_mbps,
                )
            )
        datacenters.append(
            DataCenter(
                name=f"dc{d + 1}",
                pods=pods,
                uplink_bw_mbps=dc_uplink_mbps or gbps(100),
            )
        )
    return Cloud(datacenters)
