"""Mutable availability state of a data center.

A :class:`DataCenterState` tracks, in flat parallel lists indexed by the
global indices assigned in :class:`repro.datacenter.model.Cloud`:

* free vCPUs and memory per host,
* free capacity per disk,
* free bandwidth per network link,
* the number of placed units (VMs or volumes) per host, which defines
  whether a host is *active* (the paper's ``u_c`` counts newly activated
  hosts).

The search algorithms clone states when branching (``clone`` is a handful of
``list.copy`` calls) and use reserve/release pairs when walking a single
search path. All mutating operations validate capacity and raise
:class:`repro.errors.CapacityError` on violation, leaving the state
unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Sequence, Tuple

from repro.datacenter.model import Cloud

if TYPE_CHECKING:  # pragma: no cover - layering: core imports datacenter
    from repro.core.topology import VM
from repro.datacenter.resources import EPSILON
from repro.errors import CapacityError, DataCenterError


class _DownHost:
    """Capacity absorbed by a failed host (see :meth:`DataCenterState.fail_host`).

    While a host is down its live free arrays read zero; the capacity that
    *would* be free had the host been up accumulates here instead, so
    :meth:`DataCenterState.restore_host` can reconstruct
    ``nominal - still-placed`` exactly.
    """

    __slots__ = ("free_vcpus", "free_mem_gb", "free_disk_gb", "nic_failed")

    def __init__(
        self,
        free_vcpus: float,
        free_mem_gb: float,
        free_disk_gb: Dict[int, float],
        nic_failed: bool,
    ) -> None:
        self.free_vcpus = free_vcpus
        self.free_mem_gb = free_mem_gb
        self.free_disk_gb = free_disk_gb
        self.nic_failed = nic_failed

    def copy(self) -> "_DownHost":
        return _DownHost(
            self.free_vcpus,
            self.free_mem_gb,
            dict(self.free_disk_gb),
            self.nic_failed,
        )


class DataCenterState:
    """Free-capacity bookkeeping for one cloud.

    Args:
        cloud: the static structure this state tracks.
    """

    def __init__(
        self, cloud: Cloud, best_effort_cpu_factor: float = 0.5
    ) -> None:
        self.cloud = cloud
        self.free_cpu: List[float] = [h.cpu_cores for h in cloud.hosts]
        self.free_mem: List[float] = [h.mem_gb for h in cloud.hosts]
        self.free_disk: List[float] = [d.capacity_gb for d in cloud.disks]
        self.free_bw: List[float] = list(cloud.link_capacity_mbps)
        self.host_units: List[int] = [0] * len(cloud.hosts)
        #: monotonically bumped on every mutation; lets array mirrors
        #: (repro.core.kernel.StateView) refresh only when stale
        self.version: int = 0
        #: fraction of its nominal vCPUs a best-effort VM reserves
        #: (Section VI's guaranteed-vs-best-effort CPU reservations)
        self.best_effort_cpu_factor = best_effort_cpu_factor
        # Fault model (repro.faults): capacity absorbed by down elements.
        # Both dicts stay empty in fault-free runs, so the hot-path guards
        # below reduce to one falsy check.
        self._down_hosts: Dict[int, _DownHost] = {}
        self._down_links: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # cloning / snapshots
    # ------------------------------------------------------------------

    def clone(self) -> "DataCenterState":
        """Return an independent copy sharing only the immutable cloud."""
        copy = DataCenterState.__new__(DataCenterState)
        copy.cloud = self.cloud
        copy.free_cpu = self.free_cpu.copy()
        copy.free_mem = self.free_mem.copy()
        copy.free_disk = self.free_disk.copy()
        copy.free_bw = self.free_bw.copy()
        copy.host_units = self.host_units.copy()
        copy.version = 0
        copy.best_effort_cpu_factor = self.best_effort_cpu_factor
        if self._down_hosts:
            copy._down_hosts = {
                h: rec.copy() for h, rec in self._down_hosts.items()
            }
        else:
            copy._down_hosts = {}
        copy._down_links = dict(self._down_links)
        return copy

    def reserved_vcpus(self, node: "VM") -> float:
        """vCPUs a VM node reserves under its CPU policy."""
        return node.effective_vcpus(self.best_effort_cpu_factor)

    def snapshot(self) -> Tuple[Tuple[float, ...], ...]:
        """An immutable snapshot, useful for equality checks in tests."""
        return (
            tuple(self.free_cpu),
            tuple(self.free_mem),
            tuple(self.free_disk),
            tuple(self.free_bw),
            tuple(float(u) for u in self.host_units),
        )

    def restore(self, snapshot: Tuple[Tuple[float, ...], ...]) -> None:
        """Restore the free arrays from a :meth:`snapshot`, bit-exactly.

        The transactional rollback primitive: a caller snapshots before a
        multi-step mutation and restores on failure, guaranteeing the
        pre-transaction state byte for byte (arithmetic undo can drift in
        the last float bit; slot restore cannot). The snapshot does *not*
        capture down-element bookkeeping, so a transaction must not span a
        :meth:`fail_host` / :meth:`restore_host` boundary.
        """
        cpu, mem, disk, bw, units = snapshot
        self.free_cpu[:] = cpu
        self.free_mem[:] = mem
        self.free_disk[:] = disk
        self.free_bw[:] = bw
        self.host_units[:] = [int(u) for u in units]
        self.version += 1

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def host_is_active(self, host: int) -> bool:
        """True if the host already runs at least one VM or volume."""
        return self.host_units[host] > 0

    def active_host_indices(self) -> List[int]:
        """Indices of all currently active hosts."""
        return [i for i, units in enumerate(self.host_units) if units > 0]

    def vm_fits(self, host: int, vcpus: float, mem_gb: float) -> bool:
        """True if a VM of the given size fits on the host right now."""
        return (
            vcpus <= self.free_cpu[host] + EPSILON
            and mem_gb <= self.free_mem[host] + EPSILON
        )

    def volume_fits(self, disk: int, size_gb: float) -> bool:
        """True if a volume of the given size fits on the disk right now."""
        return size_gb <= self.free_disk[disk] + EPSILON

    def path_bandwidth_free(self, path: Sequence[int]) -> float:
        """Smallest free bandwidth along a path (inf for the empty path)."""
        if not path:
            return float("inf")
        return min(self.free_bw[link] for link in path)

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------

    def place_vm(self, host: int, vcpus: float, mem_gb: float) -> None:
        """Reserve CPU and memory for a VM on a host."""
        if self._down_hosts and host in self._down_hosts:
            raise CapacityError(
                f"host {self.cloud.hosts[host].name} is down"
            )
        if not self.vm_fits(host, vcpus, mem_gb):
            raise CapacityError(
                f"VM ({vcpus} vCPU, {mem_gb} GB) does not fit on host "
                f"{self.cloud.hosts[host].name}: free "
                f"({self.free_cpu[host]:.2f} vCPU, {self.free_mem[host]:.2f} GB)"
            )
        self.free_cpu[host] -= vcpus
        self.free_mem[host] -= mem_gb
        self.host_units[host] += 1
        self.version += 1

    def unplace_vm(self, host: int, vcpus: float, mem_gb: float) -> None:
        """Release a VM reservation made with :meth:`place_vm`.

        Releasing on a *down* host absorbs the capacity into the host's
        down record instead of the live free arrays: the capacity died
        with the host and must not become placeable until
        :meth:`restore_host`.
        """
        if self._down_hosts:
            rec = self._down_hosts.get(host)
            if rec is not None:
                rec.free_vcpus += vcpus
                rec.free_mem_gb += mem_gb
                self.host_units[host] -= 1
                self.version += 1
                if self.host_units[host] < 0:
                    raise CapacityError(
                        "unbalanced unplace_vm on down host "
                        f"{self.cloud.hosts[host].name}"
                    )
                return
        self.free_cpu[host] += vcpus
        self.free_mem[host] += mem_gb
        self.host_units[host] -= 1
        self.version += 1
        if self.host_units[host] < 0:
            raise CapacityError(
                f"unbalanced unplace_vm on host {self.cloud.hosts[host].name}"
            )

    def place_volume(self, disk: int, size_gb: float) -> None:
        """Reserve disk space for a volume, activating the owning host."""
        if (
            self._down_hosts
            and self.cloud.disks[disk].host.index in self._down_hosts
        ):
            raise CapacityError(
                f"disk {self.cloud.disks[disk].name}: owning host is down"
            )
        if not self.volume_fits(disk, size_gb):
            raise CapacityError(
                f"volume ({size_gb} GB) does not fit on disk "
                f"{self.cloud.disks[disk].name}: free {self.free_disk[disk]:.2f} GB"
            )
        self.free_disk[disk] -= size_gb
        self.host_units[self.cloud.disks[disk].host.index] += 1
        self.version += 1

    def unplace_volume(self, disk: int, size_gb: float) -> None:
        """Release a volume reservation made with :meth:`place_volume`.

        As with :meth:`unplace_vm`, releases on a down host are absorbed
        into the down record rather than returned to the live free space.
        """
        if self._down_hosts:
            owner = self.cloud.disks[disk].host.index
            rec = self._down_hosts.get(owner)
            if rec is not None:
                rec.free_disk_gb[disk] += size_gb
                self.host_units[owner] -= 1
                self.version += 1
                if self.host_units[owner] < 0:
                    raise CapacityError(
                        "unbalanced unplace_volume on down host "
                        f"{self.cloud.hosts[owner].name}"
                    )
                return
        self.free_disk[disk] += size_gb
        host = self.cloud.disks[disk].host.index
        self.host_units[host] -= 1
        self.version += 1
        if self.host_units[host] < 0:
            raise CapacityError(
                f"unbalanced unplace_volume on disk {self.cloud.disks[disk].name}"
            )

    def reserve_path(self, path: Iterable[int], mbps: float) -> None:
        """Reserve bandwidth on every link of a path (all-or-nothing)."""
        if mbps <= 0:
            return
        links = list(path)
        for link in links:
            if self.free_bw[link] + EPSILON < mbps:
                raise CapacityError(
                    f"insufficient bandwidth on {self.cloud.link_names[link]}: "
                    f"need {mbps} Mbps, free {self.free_bw[link]:.2f} Mbps"
                )
        for link in links:
            self.free_bw[link] -= mbps
        self.version += 1

    def release_path(self, path: Iterable[int], mbps: float) -> None:
        """Release bandwidth reserved with :meth:`reserve_path`.

        Bandwidth released on a *down* link (failed switch uplink or a
        crashed host's NIC) is absorbed into the link's down record; it
        becomes free again only on :meth:`restore_link`.
        """
        if mbps <= 0:
            return
        if self._down_links:
            for link in path:
                absorbed = self._down_links.get(link)
                if absorbed is None:
                    self.free_bw[link] += mbps
                else:
                    self._down_links[link] = absorbed + mbps
            self.version += 1
            return
        for link in path:
            self.free_bw[link] += mbps
        self.version += 1

    def can_reserve(self, demand_per_link: dict) -> bool:
        """True if all per-link demands fit simultaneously."""
        return all(
            needed <= self.free_bw[link] + EPSILON
            for link, needed in demand_per_link.items()
        )

    # ------------------------------------------------------------------
    # fault model (used by repro.faults)
    # ------------------------------------------------------------------

    def host_is_down(self, host: int) -> bool:
        """True if the host is currently failed (see :meth:`fail_host`)."""
        return host in self._down_hosts

    def down_hosts(self) -> List[int]:
        """Indices of currently failed hosts, ascending."""
        return sorted(self._down_hosts)

    def down_links(self) -> List[int]:
        """Indices of currently failed links, ascending."""
        return sorted(self._down_links)

    def effective_free_cpu(self, host: int) -> float:
        """Free vCPUs the host has -- or would have, were it not down."""
        rec = self._down_hosts.get(host)
        return self.free_cpu[host] if rec is None else rec.free_vcpus

    def effective_free_mem(self, host: int) -> float:
        """Free memory (GB) the host has, counting absorbed-while-down."""
        rec = self._down_hosts.get(host)
        return self.free_mem[host] if rec is None else rec.free_mem_gb

    def effective_free_disk(self, disk: int) -> float:
        """Free space (GB) of a disk, counting absorbed-while-down."""
        rec = self._down_hosts.get(self.cloud.disks[disk].host.index)
        if rec is None:
            return self.free_disk[disk]
        return rec.free_disk_gb.get(disk, 0.0)

    def effective_free_bw(self, link: int) -> float:
        """Free bandwidth (Mbps) of a link, counting absorbed-while-down."""
        absorbed = self._down_links.get(link)
        return self.free_bw[link] if absorbed is None else absorbed

    def fail_host(self, host: int) -> None:
        """Crash a host.

        Its free CPU/memory and the free space of its local disks drop to
        zero (absorbed into a down record), and its NIC link is failed, so
        every placement path — all of which check the free arrays — avoids
        the host with no algorithm changes. VMs/volumes already placed on
        the host remain recorded; evacuating them is the caller's job
        (see :func:`repro.core.online.evacuate_host`).
        """
        if host in self._down_hosts:
            raise DataCenterError(
                f"host {self.cloud.hosts[host].name} is already down"
            )
        host_obj = self.cloud.hosts[host]
        free_disk_gb: Dict[int, float] = {}
        for d in host_obj.disks:
            free_disk_gb[d.index] = self.free_disk[d.index]
            self.free_disk[d.index] = 0.0
        # Fail the NIC only if it is not already down (e.g. via an explicit
        # fail_link), and remember which, so restore_host undoes exactly
        # what fail_host did.
        nic_failed = host_obj.link_index not in self._down_links
        record = _DownHost(
            self.free_cpu[host], self.free_mem[host], free_disk_gb, nic_failed
        )
        self.free_cpu[host] = 0.0
        self.free_mem[host] = 0.0
        if nic_failed:
            self.fail_link(host_obj.link_index)
        self._down_hosts[host] = record
        self.version += 1

    def restore_host(self, host: int) -> None:
        """Bring a failed host back, bit-exactly.

        The free values recorded at :meth:`fail_host`, plus anything
        absorbed by releases while down, are assigned back into the live
        arrays (slot assignment, not arithmetic, so a fail/restore pair is
        a bit-exact no-op on an otherwise untouched state).
        """
        record = self._down_hosts.pop(host, None)
        if record is None:
            raise DataCenterError(
                f"host {self.cloud.hosts[host].name} is not down"
            )
        self.free_cpu[host] = record.free_vcpus
        self.free_mem[host] = record.free_mem_gb
        for disk, free in record.free_disk_gb.items():
            self.free_disk[disk] = free
        if record.nic_failed:
            self.restore_link(self.cloud.hosts[host].link_index)
        self.version += 1

    def fail_link(self, link: int) -> None:
        """Fail a network link: its free bandwidth drops to zero.

        Failing a ToR uplink or pod uplink cuts all cross-subtree traffic
        through that switch, since every path crossing it reserves on this
        link index. Existing reservations remain accounted; releases while
        down are absorbed (:meth:`release_path`).
        """
        if link in self._down_links:
            raise DataCenterError(
                f"link {self.cloud.link_names[link]} is already down"
            )
        self._down_links[link] = self.free_bw[link]
        self.free_bw[link] = 0.0
        self.version += 1

    def restore_link(self, link: int) -> None:
        """Bring a failed link back with its absorbed free bandwidth."""
        absorbed = self._down_links.pop(link, None)
        if absorbed is None:
            raise DataCenterError(
                f"link {self.cloud.link_names[link]} is not down"
            )
        self.free_bw[link] = absorbed
        self.version += 1

    def capacity_invariants(self) -> List[str]:
        """Check conservation invariants; return violations (empty = OK).

        Catches capacity leaks: free values outside ``[0, nominal]``
        (beyond :data:`EPSILON`), negative unit counts, and down elements
        whose live free capacity was resurrected while they were down.
        Called by :func:`repro.core.validate.state_invariant_violations`
        and after every event in chaos runs.
        """
        problems: List[str] = []
        cloud = self.cloud
        for i, host in enumerate(cloud.hosts):
            rec = self._down_hosts.get(i)
            if rec is not None:
                if self.free_cpu[i] != 0.0 or self.free_mem[i] != 0.0:
                    problems.append(
                        f"down host {host.name} has non-zero live free "
                        f"cpu/mem ({self.free_cpu[i]}, {self.free_mem[i]})"
                    )
                if rec.free_vcpus > host.cpu_cores + EPSILON:
                    problems.append(
                        f"down host {host.name}: absorbed free cpu "
                        f"{rec.free_vcpus:.4f} exceeds nominal {host.cpu_cores}"
                    )
                if rec.free_mem_gb > host.mem_gb + EPSILON:
                    problems.append(
                        f"down host {host.name}: absorbed free mem "
                        f"{rec.free_mem_gb:.4f} exceeds nominal {host.mem_gb}"
                    )
                if rec.free_vcpus < -EPSILON or rec.free_mem_gb < -EPSILON:
                    problems.append(
                        f"down host {host.name}: negative absorbed free "
                        f"({rec.free_vcpus:.4f} vCPU, {rec.free_mem_gb:.4f} GB)"
                    )
            else:
                if self.free_cpu[i] < -EPSILON:
                    problems.append(
                        f"host {host.name}: negative free cpu "
                        f"{self.free_cpu[i]:.4f}"
                    )
                if self.free_cpu[i] > host.cpu_cores + EPSILON:
                    problems.append(
                        f"host {host.name}: free cpu {self.free_cpu[i]:.4f} "
                        f"exceeds nominal {host.cpu_cores}"
                    )
                if self.free_mem[i] < -EPSILON:
                    problems.append(
                        f"host {host.name}: negative free mem "
                        f"{self.free_mem[i]:.4f}"
                    )
                if self.free_mem[i] > host.mem_gb + EPSILON:
                    problems.append(
                        f"host {host.name}: free mem {self.free_mem[i]:.4f} "
                        f"exceeds nominal {host.mem_gb}"
                    )
            if self.host_units[i] < 0:
                problems.append(
                    f"host {host.name}: negative unit count "
                    f"{self.host_units[i]}"
                )
        for j, disk in enumerate(cloud.disks):
            owner_rec = self._down_hosts.get(disk.host.index)
            if owner_rec is not None:
                if self.free_disk[j] != 0.0:
                    problems.append(
                        f"disk {disk.name} on down host has non-zero live "
                        f"free space {self.free_disk[j]}"
                    )
                absorbed = owner_rec.free_disk_gb.get(j, 0.0)
                if absorbed < -EPSILON or absorbed > disk.capacity_gb + EPSILON:
                    problems.append(
                        f"disk {disk.name}: absorbed free {absorbed:.4f} GB "
                        f"outside [0, {disk.capacity_gb}]"
                    )
            else:
                if self.free_disk[j] < -EPSILON:
                    problems.append(
                        f"disk {disk.name}: negative free space "
                        f"{self.free_disk[j]:.4f}"
                    )
                if self.free_disk[j] > disk.capacity_gb + EPSILON:
                    problems.append(
                        f"disk {disk.name}: free space {self.free_disk[j]:.4f} "
                        f"exceeds nominal {disk.capacity_gb}"
                    )
        for k, nominal in enumerate(cloud.link_capacity_mbps):
            absorbed_bw = self._down_links.get(k)
            if absorbed_bw is not None:
                if self.free_bw[k] != 0.0:
                    problems.append(
                        f"down link {cloud.link_names[k]} has non-zero live "
                        f"free bandwidth {self.free_bw[k]}"
                    )
                if absorbed_bw < -EPSILON or absorbed_bw > nominal + EPSILON:
                    problems.append(
                        f"down link {cloud.link_names[k]}: absorbed free "
                        f"{absorbed_bw:.4f} Mbps outside [0, {nominal}]"
                    )
            else:
                if self.free_bw[k] < -EPSILON:
                    problems.append(
                        f"link {cloud.link_names[k]}: negative free "
                        f"bandwidth {self.free_bw[k]:.4f}"
                    )
                if self.free_bw[k] > nominal + EPSILON:
                    problems.append(
                        f"link {cloud.link_names[k]}: free bandwidth "
                        f"{self.free_bw[k]:.4f} exceeds nominal {nominal}"
                    )
        return problems

    # ------------------------------------------------------------------
    # background load (used by loadgen and tests)
    # ------------------------------------------------------------------

    def consume_background(
        self,
        host: int,
        vcpus: float = 0.0,
        mem_gb: float = 0.0,
        nic_mbps: float = 0.0,
        count_as_unit: bool = True,
    ) -> None:
        """Install synthetic pre-existing load on a host.

        Used to reproduce the paper's non-uniform availability scenarios.
        The load reserves host resources and NIC bandwidth, and (by default)
        marks the host active, exactly as a previously placed tenant would.
        """
        host_obj = self.cloud.hosts[host]
        if vcpus or mem_gb:
            self.place_vm(host, vcpus, mem_gb)
            if not count_as_unit:
                self.host_units[host] -= 1
        if nic_mbps:
            self.reserve_path((host_obj.link_index,), nic_mbps)
