"""Mutable availability state of a data center.

A :class:`DataCenterState` tracks, in flat parallel lists indexed by the
global indices assigned in :class:`repro.datacenter.model.Cloud`:

* free vCPUs and memory per host,
* free capacity per disk,
* free bandwidth per network link,
* the number of placed units (VMs or volumes) per host, which defines
  whether a host is *active* (the paper's ``u_c`` counts newly activated
  hosts).

The search algorithms clone states when branching (``clone`` is a handful of
``list.copy`` calls) and use reserve/release pairs when walking a single
search path. All mutating operations validate capacity and raise
:class:`repro.errors.CapacityError` on violation, leaving the state
unchanged.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Sequence, Tuple

from repro.datacenter.model import Cloud

if TYPE_CHECKING:  # pragma: no cover - layering: core imports datacenter
    from repro.core.topology import VM
from repro.datacenter.resources import EPSILON
from repro.errors import CapacityError


class DataCenterState:
    """Free-capacity bookkeeping for one cloud.

    Args:
        cloud: the static structure this state tracks.
    """

    def __init__(
        self, cloud: Cloud, best_effort_cpu_factor: float = 0.5
    ) -> None:
        self.cloud = cloud
        self.free_cpu: List[float] = [h.cpu_cores for h in cloud.hosts]
        self.free_mem: List[float] = [h.mem_gb for h in cloud.hosts]
        self.free_disk: List[float] = [d.capacity_gb for d in cloud.disks]
        self.free_bw: List[float] = list(cloud.link_capacity_mbps)
        self.host_units: List[int] = [0] * len(cloud.hosts)
        #: fraction of its nominal vCPUs a best-effort VM reserves
        #: (Section VI's guaranteed-vs-best-effort CPU reservations)
        self.best_effort_cpu_factor = best_effort_cpu_factor

    # ------------------------------------------------------------------
    # cloning / snapshots
    # ------------------------------------------------------------------

    def clone(self) -> "DataCenterState":
        """Return an independent copy sharing only the immutable cloud."""
        copy = DataCenterState.__new__(DataCenterState)
        copy.cloud = self.cloud
        copy.free_cpu = self.free_cpu.copy()
        copy.free_mem = self.free_mem.copy()
        copy.free_disk = self.free_disk.copy()
        copy.free_bw = self.free_bw.copy()
        copy.host_units = self.host_units.copy()
        copy.best_effort_cpu_factor = self.best_effort_cpu_factor
        return copy

    def reserved_vcpus(self, node: "VM") -> float:
        """vCPUs a VM node reserves under its CPU policy."""
        return node.effective_vcpus(self.best_effort_cpu_factor)

    def snapshot(self) -> Tuple[Tuple[float, ...], ...]:
        """An immutable snapshot, useful for equality checks in tests."""
        return (
            tuple(self.free_cpu),
            tuple(self.free_mem),
            tuple(self.free_disk),
            tuple(self.free_bw),
            tuple(float(u) for u in self.host_units),
        )

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def host_is_active(self, host: int) -> bool:
        """True if the host already runs at least one VM or volume."""
        return self.host_units[host] > 0

    def active_host_indices(self) -> List[int]:
        """Indices of all currently active hosts."""
        return [i for i, units in enumerate(self.host_units) if units > 0]

    def vm_fits(self, host: int, vcpus: float, mem_gb: float) -> bool:
        """True if a VM of the given size fits on the host right now."""
        return (
            vcpus <= self.free_cpu[host] + EPSILON
            and mem_gb <= self.free_mem[host] + EPSILON
        )

    def volume_fits(self, disk: int, size_gb: float) -> bool:
        """True if a volume of the given size fits on the disk right now."""
        return size_gb <= self.free_disk[disk] + EPSILON

    def path_bandwidth_free(self, path: Sequence[int]) -> float:
        """Smallest free bandwidth along a path (inf for the empty path)."""
        if not path:
            return float("inf")
        return min(self.free_bw[link] for link in path)

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------

    def place_vm(self, host: int, vcpus: float, mem_gb: float) -> None:
        """Reserve CPU and memory for a VM on a host."""
        if not self.vm_fits(host, vcpus, mem_gb):
            raise CapacityError(
                f"VM ({vcpus} vCPU, {mem_gb} GB) does not fit on host "
                f"{self.cloud.hosts[host].name}: free "
                f"({self.free_cpu[host]:.2f} vCPU, {self.free_mem[host]:.2f} GB)"
            )
        self.free_cpu[host] -= vcpus
        self.free_mem[host] -= mem_gb
        self.host_units[host] += 1

    def unplace_vm(self, host: int, vcpus: float, mem_gb: float) -> None:
        """Release a VM reservation made with :meth:`place_vm`."""
        self.free_cpu[host] += vcpus
        self.free_mem[host] += mem_gb
        self.host_units[host] -= 1
        if self.host_units[host] < 0:
            raise CapacityError(
                f"unbalanced unplace_vm on host {self.cloud.hosts[host].name}"
            )

    def place_volume(self, disk: int, size_gb: float) -> None:
        """Reserve disk space for a volume, activating the owning host."""
        if not self.volume_fits(disk, size_gb):
            raise CapacityError(
                f"volume ({size_gb} GB) does not fit on disk "
                f"{self.cloud.disks[disk].name}: free {self.free_disk[disk]:.2f} GB"
            )
        self.free_disk[disk] -= size_gb
        self.host_units[self.cloud.disks[disk].host.index] += 1

    def unplace_volume(self, disk: int, size_gb: float) -> None:
        """Release a volume reservation made with :meth:`place_volume`."""
        self.free_disk[disk] += size_gb
        host = self.cloud.disks[disk].host.index
        self.host_units[host] -= 1
        if self.host_units[host] < 0:
            raise CapacityError(
                f"unbalanced unplace_volume on disk {self.cloud.disks[disk].name}"
            )

    def reserve_path(self, path: Iterable[int], mbps: float) -> None:
        """Reserve bandwidth on every link of a path (all-or-nothing)."""
        if mbps <= 0:
            return
        links = list(path)
        for link in links:
            if self.free_bw[link] + EPSILON < mbps:
                raise CapacityError(
                    f"insufficient bandwidth on {self.cloud.link_names[link]}: "
                    f"need {mbps} Mbps, free {self.free_bw[link]:.2f} Mbps"
                )
        for link in links:
            self.free_bw[link] -= mbps

    def release_path(self, path: Iterable[int], mbps: float) -> None:
        """Release bandwidth reserved with :meth:`reserve_path`."""
        if mbps <= 0:
            return
        for link in path:
            self.free_bw[link] += mbps

    def can_reserve(self, demand_per_link: dict) -> bool:
        """True if all per-link demands fit simultaneously."""
        return all(
            needed <= self.free_bw[link] + EPSILON
            for link, needed in demand_per_link.items()
        )

    # ------------------------------------------------------------------
    # background load (used by loadgen and tests)
    # ------------------------------------------------------------------

    def consume_background(
        self,
        host: int,
        vcpus: float = 0.0,
        mem_gb: float = 0.0,
        nic_mbps: float = 0.0,
        count_as_unit: bool = True,
    ) -> None:
        """Install synthetic pre-existing load on a host.

        Used to reproduce the paper's non-uniform availability scenarios.
        The load reserves host resources and NIC bandwidth, and (by default)
        marks the host active, exactly as a previously placed tenant would.
        """
        host_obj = self.cloud.hosts[host]
        if vcpus or mem_gb:
            self.place_vm(host, vcpus, mem_gb)
            if not count_as_unit:
                self.host_units[host] -= 1
        if nic_mbps:
            self.reserve_path((host_obj.link_index,), nic_mbps)
