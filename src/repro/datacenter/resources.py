"""Resource vectors for hosts and virtual machines.

A :class:`ResourceVector` bundles the three host-level resource dimensions
the paper schedules (vCPUs, memory, disk space). Network bandwidth is *not*
part of the vector because it lives on links, not hosts; see
:mod:`repro.datacenter.network`.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Tolerance for floating-point capacity comparisons.
EPSILON = 1e-9


@dataclass(frozen=True)
class ResourceVector:
    """An immutable (cpu, mem, disk) triple with element-wise arithmetic.

    Attributes:
        cpu: number of vCPUs (may be fractional for background load).
        mem_gb: memory in gigabytes.
        disk_gb: disk space in gigabytes.
    """

    cpu: float = 0.0
    mem_gb: float = 0.0
    disk_gb: float = 0.0

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.cpu + other.cpu,
            self.mem_gb + other.mem_gb,
            self.disk_gb + other.disk_gb,
        )

    def __sub__(self, other: "ResourceVector") -> "ResourceVector":
        return ResourceVector(
            self.cpu - other.cpu,
            self.mem_gb - other.mem_gb,
            self.disk_gb - other.disk_gb,
        )

    def __mul__(self, scalar: float) -> "ResourceVector":
        return ResourceVector(
            self.cpu * scalar, self.mem_gb * scalar, self.disk_gb * scalar
        )

    __rmul__ = __mul__

    def fits_within(self, other: "ResourceVector") -> bool:
        """Return True if this requirement fits in capacity ``other``."""
        return (
            self.cpu <= other.cpu + EPSILON
            and self.mem_gb <= other.mem_gb + EPSILON
            and self.disk_gb <= other.disk_gb + EPSILON
        )

    def is_nonnegative(self) -> bool:
        """Return True if no component is (more than epsilon) negative."""
        return (
            self.cpu >= -EPSILON
            and self.mem_gb >= -EPSILON
            and self.disk_gb >= -EPSILON
        )

    @staticmethod
    def zero() -> "ResourceVector":
        """The all-zero vector."""
        return ResourceVector(0.0, 0.0, 0.0)
