"""Background-load generators for non-uniform resource availability.

The paper evaluates its algorithms under two operating conditions:

* **uniform** -- every host idle and fully available;
* **non-uniform** -- free capacity varies host to host. Two concrete
  configurations are given: the testbed preload of Section IV-A (four
  lightly-used, four medium, four constrained, four idle hosts) and the
  simulated-datacenter distribution of Table IV (per rack, one quarter of
  hosts in each of four availability classes).

The generators below install synthetic *background tenants* into a
:class:`~repro.datacenter.state.DataCenterState`: they reserve host CPU and
memory, reserve NIC bandwidth, and mark hosts active, exactly as previously
placed applications would. All randomness flows through an explicit
``random.Random`` seed for reproducibility.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.datacenter.state import DataCenterState
from repro.units import gbps


@dataclass(frozen=True)
class AvailabilityClass:
    """One row of Table IV: ranges of *free* resources left on a host.

    Attributes:
        cpu_range: inclusive (low, high) free vCPU cores.
        mem_range_gb: inclusive (low, high) free memory in GB.
        bw_range_mbps: inclusive (low, high) free NIC bandwidth in Mbps.
    """

    cpu_range: Tuple[float, float]
    mem_range_gb: Tuple[float, float]
    bw_range_mbps: Tuple[float, float]


#: Table IV of the paper: free-capacity classes for the simulated data
#: center, one quarter of the hosts of every rack in each class.
TABLE_IV_CLASSES: Sequence[AvailabilityClass] = (
    AvailabilityClass((9, 16), (17, 30), (0, gbps(1.5))),
    AvailabilityClass((6, 8), (8, 16), (gbps(2), gbps(5))),
    AvailabilityClass((0, 5), (0, 7), (gbps(6), gbps(8))),
    AvailabilityClass((16, 16), (32, 32), (gbps(10), gbps(10))),  # idle
)


def _apply_class(
    state: DataCenterState,
    host: int,
    cls: AvailabilityClass,
    rng: random.Random,
) -> None:
    host_obj = state.cloud.hosts[host]
    free_cpu = rng.uniform(*cls.cpu_range)
    free_mem = rng.uniform(*cls.mem_range_gb)
    free_bw = rng.uniform(*cls.bw_range_mbps)
    used_cpu = max(0.0, host_obj.cpu_cores - free_cpu)
    used_mem = max(0.0, host_obj.mem_gb - free_mem)
    used_bw = max(0.0, host_obj.nic_bw_mbps - free_bw)
    if used_cpu <= 0 and used_mem <= 0 and used_bw <= 0:
        return  # idle host: nothing to install
    state.consume_background(host, used_cpu, used_mem, used_bw)


def apply_table_iv_load(state: DataCenterState, seed: int = 0) -> None:
    """Install Table IV non-uniform availability on every rack.

    For each rack, hosts are split into four equal groups and each group
    gets one availability class (first three loaded, last idle). Racks with
    host counts not divisible by four assign the remainder round-robin.
    """
    rng = random.Random(seed)
    for rack in state.cloud.racks:
        hosts = [h.index for h in rack.hosts]
        for i, host in enumerate(hosts):
            cls = TABLE_IV_CLASSES[(i * len(TABLE_IV_CLASSES)) // len(hosts)]
            _apply_class(state, host, cls, rng)


#: The testbed preload of Section IV-A, as (free-cpu choices, free-mem range)
#: per group of four hosts. The final group is idle.
_TESTBED_GROUPS = (
    {"cpu_choices": (8, 10), "mem_range": (20.0, 28.0)},  # lightly utilized
    {"cpu_choices": (5, 6), "mem_range": (15.0, 19.0)},  # medium
    {"cpu_choices": (2, 3, 4), "mem_range": (8.0, 14.0)},  # constrained
    None,  # idle
)


#: NIC bandwidth each background core consumes in the testbed preload
#: (Mbps per used core). This gives loaded hosts proportionally less free
#: bandwidth, as the paper's pre-deployed VMs and volumes would.
TESTBED_BW_PER_CORE_MBPS = 100.0


def apply_testbed_load(state: DataCenterState, seed: int = 0) -> None:
    """Install the Section IV-A testbed preload (16-host cluster).

    The first four hosts are lightly utilized (8 or 10 free cores, more
    than 20 GB free memory), the next four have medium utilization (5-6
    free cores, 15-19 GB), the next four are resource constrained (fewer
    than 5 free cores, under 15 GB), and the last four are idle. Each used
    core also consumes :data:`TESTBED_BW_PER_CORE_MBPS` of the host's NIC,
    reflecting the traffic of the pre-deployed VMs.
    """
    rng = random.Random(seed)
    hosts = state.cloud.hosts
    if len(hosts) < 16:
        raise ValueError("testbed load expects at least 16 hosts")
    for group_index, group in enumerate(_TESTBED_GROUPS):
        if group is None:
            continue
        for host in hosts[group_index * 4 : group_index * 4 + 4]:
            free_cpu = float(rng.choice(group["cpu_choices"]))
            free_mem = rng.uniform(*group["mem_range"])
            used_cores = host.cpu_cores - free_cpu
            state.consume_background(
                host.index,
                vcpus=used_cores,
                mem_gb=host.mem_gb - free_mem,
                nic_mbps=used_cores * TESTBED_BW_PER_CORE_MBPS,
            )


def apply_random_load(
    state: DataCenterState,
    fraction_hosts: float = 0.5,
    cpu_utilization_frac: Tuple[float, float] = (0.2, 0.8),
    mem_utilization_frac: Tuple[float, float] = (0.2, 0.8),
    bw_utilization_frac: Tuple[float, float] = (0.0, 0.5),
    seed: int = 0,
) -> List[int]:
    """Install random background load on a fraction of hosts.

    Returns the indices of loaded hosts. Useful for property-based tests and
    ablations that need "some" non-uniformity without the exact Table IV
    shape.
    """
    rng = random.Random(seed)
    hosts = [h.index for h in state.cloud.hosts]
    rng.shuffle(hosts)
    loaded = sorted(hosts[: int(len(hosts) * fraction_hosts)])
    for host in loaded:
        host_obj = state.cloud.hosts[host]
        state.consume_background(
            host,
            vcpus=host_obj.cpu_cores * rng.uniform(*cpu_utilization_frac),
            mem_gb=host_obj.mem_gb * rng.uniform(*mem_utilization_frac),
            nic_mbps=host_obj.nic_bw_mbps * rng.uniform(*bw_utilization_frac),
        )
    return loaded
