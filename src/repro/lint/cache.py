"""Incremental lint cache: per-file facts keyed by content hash.

A cache entry stores everything the engine derives from one file --
dotted module, suppression table, post-suppression *file-rule*
diagnostics, and the serialized :class:`~repro.lint.symbols.ModuleFacts`
-- keyed by the SHA-256 of the file's bytes. On a warm run, unchanged
files skip parsing, the per-file rules, and fact extraction entirely;
only the cross-file fixpoints (cheap: pure dict/set iteration over
facts) and the project rules re-run, which is what makes warm runs
near-instant while still being exactly as correct as cold ones -- the
project pass always sees every file's current facts.

The cache invalidates wholesale when the engine schema
(:data:`CACHE_SCHEMA`), the registered rule set, or the Python
major.minor changes; a stale or corrupt cache file is simply ignored.
Entries are stored under the path string the file was requested as, so
the reconstructed diagnostics are byte-identical to a cold run's.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.lint.diagnostics import Diagnostic
from repro.lint.symbols import ModuleFacts

#: Layout version of the cache payload; bump on incompatible changes to
#: the entry shape or the fact schema.
CACHE_SCHEMA = 2

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_PATH = ".ostrolint-cache.json"


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _rules_signature() -> str:
    from repro.lint.registry import known_codes

    return ",".join(known_codes())


def _environment_key() -> str:
    import sys

    return f"py{sys.version_info[0]}.{sys.version_info[1]}"


class LintCache:
    """Content-hash keyed store of per-file lint facts."""

    def __init__(self, path: Optional[Path] = None):
        self.path = Path(path) if path is not None else None
        self.entries: Dict[str, Dict[str, Any]] = {}
        self.dirty = False
        if self.path is not None and self.path.exists():
            self._load()

    def _load(self) -> None:
        try:
            payload = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(payload, dict):
            return
        if payload.get("schema") != CACHE_SCHEMA:
            return
        if payload.get("rules") != _rules_signature():
            return
        if payload.get("environment") != _environment_key():
            return
        entries = payload.get("entries")
        if isinstance(entries, dict):
            self.entries = entries

    def save(self) -> None:
        """Persist to disk (no-op for in-memory caches or clean runs)."""
        if self.path is None or not self.dirty:
            return
        payload = {
            "schema": CACHE_SCHEMA,
            "rules": _rules_signature(),
            "environment": _environment_key(),
            "entries": self.entries,
        }
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(
            json.dumps(payload, sort_keys=True), encoding="utf-8"
        )
        tmp.replace(self.path)
        self.dirty = False

    # -- entries --------------------------------------------------------

    def get(
        self, key: str, digest: str
    ) -> Optional[
        Tuple[
            Optional[str],
            Dict[int, frozenset],
            List[Diagnostic],
            Optional[ModuleFacts],
        ]
    ]:
        """(module, suppressions, file diagnostics, facts) or None."""
        entry = self.entries.get(key)
        if entry is None or entry.get("hash") != digest:
            return None
        try:
            suppressions = {
                int(line): frozenset(codes)
                for line, codes in entry["suppressions"].items()
            }
            diagnostics = [
                Diagnostic(**diag) for diag in entry["diagnostics"]
            ]
            facts_data = entry["facts"]
            facts = (
                ModuleFacts.from_dict(facts_data)
                if facts_data is not None
                else None
            )
        except (KeyError, TypeError, ValueError):
            return None
        return entry.get("module"), suppressions, diagnostics, facts

    def put(
        self,
        key: str,
        digest: str,
        module: Optional[str],
        suppressions: Dict[int, frozenset],
        diagnostics: List[Diagnostic],
        facts: Optional[ModuleFacts],
    ) -> None:
        self.entries[key] = {
            "hash": digest,
            "module": module,
            "suppressions": {
                str(line): sorted(codes)
                for line, codes in suppressions.items()
            },
            "diagnostics": [diag.to_dict() for diag in diagnostics],
            "facts": facts.to_dict() if facts is not None else None,
        }
        self.dirty = True

    def prune(self, live_keys) -> None:
        """Drop entries for files no longer in the analyzed set."""
        live = set(live_keys)
        stale = [key for key in self.entries if key not in live]
        for key in stale:
            del self.entries[key]
            self.dirty = True
