"""Rule registry: stable codes, one instance per rule, ordered reporting.

Rules self-register at import time via :func:`register`; the engine asks
:func:`all_rules` for the active set. Codes follow ``OST0xx`` and are
unique -- duplicate registration is a programming error and raises
immediately, so a typo cannot silently shadow an existing rule.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.lint.engine import FileContext
    from repro.lint.project import ProjectContext

from repro.lint.diagnostics import Diagnostic


class Rule:
    """Base class for ostrolint rules.

    Subclasses define the class attributes below and implement
    :meth:`check`, yielding a :class:`Diagnostic` per finding. A rule is
    instantiated once and reused across files, so it must not keep
    per-file state on ``self``.
    """

    #: stable code, e.g. "OST006"; never reused once published
    code: str = ""
    #: short slug used in the human output, e.g. "no-print"
    name: str = ""
    #: one-line description for ``repro lint --list-rules`` and the docs
    summary: str = ""

    def check(self, ctx: "FileContext") -> Iterable[Diagnostic]:
        """Yield diagnostics for one parsed file."""
        raise NotImplementedError

    def diagnostic(
        self, ctx: "FileContext", line: int, col: int, message: str
    ) -> Diagnostic:
        """Convenience constructor stamping this rule's code and name."""
        return Diagnostic(
            path=ctx.path,
            line=line,
            col=col,
            code=self.code,
            rule=self.name,
            message=message,
        )


class ProjectRule(Rule):
    """Base class for project-wide (cross-file) rules.

    Runs once per lint invocation against the
    :class:`~repro.lint.project.ProjectContext` built from every
    analyzed file's facts, instead of once per file. The per-file
    :meth:`check` is a no-op so project rules are inert in the
    single-file fixture path (:func:`repro.lint.engine.lint_source`).
    """

    def check(self, ctx: "FileContext") -> Iterable[Diagnostic]:
        return ()

    def check_project(
        self, project: "ProjectContext"
    ) -> Iterable[Diagnostic]:
        """Yield diagnostics for the whole analyzed tree."""
        raise NotImplementedError


_RULES: Dict[str, Rule] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule (by its stable code) to the registry."""
    rule = rule_class()
    if not rule.code or not rule.name:
        raise ValueError(
            f"rule {rule_class.__name__} must define 'code' and 'name'"
        )
    if rule.code in _RULES:
        raise ValueError(
            f"duplicate rule code {rule.code}: "
            f"{type(_RULES[rule.code]).__name__} vs {rule_class.__name__}"
        )
    _RULES[rule.code] = rule
    return rule_class


def all_rules() -> List[Rule]:
    """Every registered *file* rule, in stable code order."""
    _load_builtin_rules()
    return [
        _RULES[code]
        for code in sorted(_RULES)
        if not isinstance(_RULES[code], ProjectRule)
    ]


def all_project_rules() -> List[ProjectRule]:
    """Every registered project-wide rule, in stable code order."""
    _load_builtin_rules()
    return [
        _RULES[code]
        for code in sorted(_RULES)
        if isinstance(_RULES[code], ProjectRule)
    ]


def every_rule() -> List[Rule]:
    """Every registered rule -- file and project -- in code order."""
    _load_builtin_rules()
    return [_RULES[code] for code in sorted(_RULES)]


def rule_for_code(code: str) -> Rule:
    """Look up one rule by its code; raises KeyError when unknown."""
    _load_builtin_rules()
    return _RULES[code]


def known_codes() -> List[str]:
    """All registered rule codes, sorted."""
    _load_builtin_rules()
    return sorted(_RULES)


def _load_builtin_rules() -> None:
    """Import the built-in rule modules (registration side effect).

    Deferred to first use to avoid an import cycle between the registry,
    the engine, and the rule modules; repeated calls are cheap no-ops
    because the module import is cached.
    """
    import repro.lint.rules  # noqa: F401  (imports register the rules)
