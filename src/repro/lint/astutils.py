"""Shared AST utilities for the ostrolint engine and rules.

One home for everything both the engine and the rule modules need:
scope-aware walking, assignment-target flattening, identifier harvesting,
module-path inference, and suppression-comment parsing. Before v2 these
helpers were split between ``lint/rules/common.py`` and ``lint/engine.py``;
the project-level analysis (symbol table, CFGs, taint) made one shared
module the only sane layout.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

#: Method names that mutate their receiver in place. Used by the cache
#: and confinement rules to catch ``obj.attr.append(...)``-style writes.
MUTATOR_METHODS = frozenset(
    {
        "add",
        "append",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
        # domain mutators on PartialPlacement / DataCenterState / topology
        "assign",
        "unassign",
        "place_vm",
        "reserve_path",
        "release_path",
        "apply",
        "restore",
        "add_vm",
        "add_volume",
        "connect",
        "add_zone",
        "remove_node",
        "_invalidate_caches",
    }
)

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)

FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Suppression-comment grammar: ``# ostrolint: disable[=CODE[,CODE...]]``.
_SUPPRESS_RE = re.compile(
    r"#\s*ostrolint:\s*disable(?:=(?P<codes>[A-Z0-9,\s]+))?"
)

#: Marker meaning "every code is suppressed on this line".
_ALL_CODES = frozenset({"*"})


def walk_scoped(tree: ast.AST) -> Iterator[Tuple[ast.AST, Tuple[str, ...]]]:
    """Yield ``(node, scope)`` pairs, depth-first.

    ``scope`` is the tuple of enclosing class/function names -- empty at
    module level. A def/class node itself carries its *enclosing* scope;
    its body carries the extended one. ``".".join(scope)`` is the
    qualname used by the timing allowlist (``"BAStar._run"``).
    """
    stack: List[str] = []

    def visit(node: ast.AST) -> Iterator[Tuple[ast.AST, Tuple[str, ...]]]:
        yield node, tuple(stack)
        is_scope = isinstance(node, _SCOPE_NODES)
        if is_scope:
            stack.append(node.name)
        for child in ast.iter_child_nodes(node):
            yield from visit(child)
        if is_scope:
            stack.pop()

    return visit(tree)


def root_name(node: ast.AST) -> Optional[str]:
    """The base ``Name`` id of an attribute/subscript chain, else None.

    ``partial.assigned[vm].path`` -> ``"partial"``.
    """
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def dotted_name(node: ast.AST) -> Optional[str]:
    """The full dotted form of a Name/Attribute chain, else None.

    ``self.coordinator.admit`` -> ``"self.coordinator.admit"``. Chains
    interrupted by calls or subscripts return None (the receiver is not
    a static name).
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def annotation_names(annotation: Optional[ast.AST]) -> Set[str]:
    """All ``Name``/``Attribute`` identifiers appearing in an annotation.

    ``Optional[List[Disk]]`` -> ``{"Optional", "List", "Disk"}``. String
    (forward-reference) annotations contribute the literal text as one
    entry so type-name matching still works.
    """
    if annotation is None:
        return set()
    names: Set[str] = set()
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            names.add(node.value)
    return names


def all_arguments(func: ast.AST) -> List[ast.arg]:
    """Every parameter of a function def, in declaration order."""
    args = func.args
    params = list(args.posonlyargs) + list(args.args)
    if args.vararg is not None:
        params.append(args.vararg)
    params.extend(args.kwonlyargs)
    if args.kwarg is not None:
        params.append(args.kwarg)
    return params


def assignment_targets(node: ast.AST) -> List[ast.AST]:
    """Store-context target expressions of an assignment-like statement.

    Tuple/list destructuring is flattened, so ``a.x, b.y = ...`` yields
    both attribute targets. Walrus targets (``x := ...``) are *not*
    statements and are handled by :func:`walrus_targets`.
    """
    if isinstance(node, ast.Assign):
        raw = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        raw = [node.target]
    elif isinstance(node, ast.Delete):
        raw = list(node.targets)
    elif isinstance(node, (ast.For, ast.AsyncFor)):
        raw = [node.target]
    else:
        return []
    flat: List[ast.AST] = []
    while raw:
        target = raw.pop()
        if isinstance(target, (ast.Tuple, ast.List)):
            raw.extend(target.elts)
        elif isinstance(target, ast.Starred):
            raw.append(target.value)
        else:
            flat.append(target)
    return flat


def walrus_targets(node: ast.AST) -> List[ast.Name]:
    """``Name`` targets of every walrus (``:=``) inside a statement."""
    return [
        sub.target
        for sub in ast.walk(node)
        if isinstance(sub, ast.NamedExpr)
        and isinstance(sub.target, ast.Name)
    ]


def bound_names(stmt: ast.AST) -> Set[str]:
    """Local names a statement (re)binds: assignments, loops, walrus,
    ``with ... as``, ``except ... as``, and comprehension-free simple
    bindings. Used by the reaching-definitions pass."""
    names: Set[str] = set()
    for target in assignment_targets(stmt):
        if isinstance(target, ast.Name):
            names.add(target.id)
    for target in walrus_targets(stmt):
        names.add(target.id)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if isinstance(item.optional_vars, ast.Name):
                names.add(item.optional_vars.id)
    return names


#: Statements whose CFG node is a head for a larger construct.
COMPOUND_NODES = (
    ast.If,
    ast.While,
    ast.For,
    ast.AsyncFor,
    ast.With,
    ast.AsyncWith,
    ast.Try,
)


def own_expressions(stmt: ast.AST) -> List[ast.expr]:
    """The expressions a statement *itself* evaluates.

    Compound statements appear in a CFG as a head node whose ``stmt``
    is the whole construct; their bodies have nodes of their own, so
    only the head's test/iter/items must be read here (walking the full
    subtree would double-count).
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    if isinstance(stmt, ast.ExceptHandler):
        return []
    match_type = getattr(ast, "Match", None)
    if match_type is not None and isinstance(stmt, match_type):
        return [stmt.subject]
    if isinstance(stmt, FUNCTION_NODES) or isinstance(stmt, ast.ClassDef):
        return []
    if isinstance(stmt, ast.Return):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ast.Assign):
        return [stmt.value]
    if isinstance(stmt, ast.AugAssign):
        return [stmt.target, stmt.value]
    if isinstance(stmt, ast.AnnAssign):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ast.Expr):
        return [stmt.value]
    if isinstance(stmt, ast.Raise):
        return [e for e in (stmt.exc, stmt.cause) if e is not None]
    if isinstance(stmt, ast.Assert):
        return [e for e in (stmt.test, stmt.msg) if e is not None]
    if isinstance(stmt, (ast.Delete, ast.Pass, ast.Break, ast.Continue)):
        return []
    if isinstance(stmt, (ast.Import, ast.ImportFrom, ast.Global, ast.Nonlocal)):
        return []
    # fallback: any expression children
    return [
        child for child in ast.iter_child_nodes(stmt)
        if isinstance(child, ast.expr)
    ]


def module_from_path(path: Path) -> Optional[str]:
    """Infer the dotted module path of a file inside a ``repro`` tree.

    Walks the path components for the *last* ``repro`` directory (the
    package root under ``src/``) and joins everything from there:
    ``src/repro/core/greedy.py`` -> ``repro.core.greedy``;
    ``__init__.py`` maps to its package. Returns None for files outside
    any ``repro`` tree (rules scoped by module then skip the file).
    """
    parts = list(path.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    try:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
    except ValueError:
        return None
    dotted = parts[anchor:]
    if dotted and dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted) if dotted else None


def parse_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Collect ``# ostrolint: disable`` comments, by line number.

    Uses the tokenizer, so the directive is only honored in real comments
    -- a string literal containing the text does not suppress anything.
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            raw = match.group("codes")
            if raw is None:
                codes = _ALL_CODES
            else:
                codes = frozenset(
                    code.strip() for code in raw.split(",") if code.strip()
                )
            line = token.start[0]
            previous = suppressions.get(line, frozenset())
            suppressions[line] = previous | codes
    except tokenize.TokenError:  # ostrolint: disable=OST008
        # Unterminated constructs and the like: the ast parse will produce
        # the real error; suppressions just stay empty.
        pass
    return suppressions
