"""SARIF 2.1.0 output for ostrolint (``repro lint --format sarif``).

SARIF (Static Analysis Results Interchange Format) is the report format
code-scanning UIs ingest -- GitHub's security tab, VS Code's SARIF
viewer. One run, one driver (``ostrolint``), every registered rule
listed in the driver's rule table so viewers can show the catalogue even
for clean runs, and one result per diagnostic pointing at the file,
line, and column.

The rendering is byte-stable for a given tree: rules are listed in code
order, results in the engine's (path, line, col, code) order, and the
JSON is serialized with sorted keys and fixed indentation -- the same
guarantee the ``--format json`` schema gives, which the golden test
locks in.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import every_rule

#: SARIF specification version emitted.
SARIF_VERSION = "2.1.0"

_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_sarif(
    diagnostics: Sequence[Diagnostic], files_checked: int
) -> str:
    """Render diagnostics as a SARIF 2.1.0 log (byte-stable)."""
    from repro import __version__

    rules = every_rule()
    rule_index = {rule.code: i for i, rule in enumerate(rules)}
    ordered = sorted(diagnostics, key=Diagnostic.sort_key)
    results: List[Dict[str, Any]] = []
    for diag in ordered:
        result: Dict[str, Any] = {
            "ruleId": diag.code,
            "level": "error",
            "message": {"text": diag.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": diag.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": diag.line,
                            "startColumn": diag.col,
                        },
                    }
                }
            ],
        }
        # OST000 (syntax error) has no registered rule entry
        if diag.code in rule_index:
            result["ruleIndex"] = rule_index[diag.code]
        results.append(result)
    payload = {
        "$schema": _SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "ostrolint",
                        "version": __version__,
                        "rules": [
                            {
                                "id": rule.code,
                                "name": rule.name,
                                "shortDescription": {
                                    "text": rule.summary
                                },
                            }
                            for rule in rules
                        ],
                    }
                },
                "columnKind": "unicodeCodePoints",
                "properties": {"filesChecked": files_checked},
                "results": results,
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
