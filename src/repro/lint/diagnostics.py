"""Diagnostics: what a lint rule reports and how it is rendered.

A :class:`Diagnostic` pins one finding to a file, line, and column, under a
stable rule code (``OST0xx``). Codes are part of the public contract: they
appear in suppression comments (``# ostrolint: disable=OST006``), in the
JSON output consumed by CI tooling, and in docs/STATIC_ANALYSIS.md -- once
published, a code is never reused for a different rule.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

#: Version of the ``--format json`` schema. Bumped only on incompatible
#: changes to the payload layout; additive fields keep the version.
JSON_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one rule at one source location.

    Attributes:
        path: file the finding is in (as given to the engine).
        line: 1-based line number.
        col: 1-based column number.
        code: stable rule code, e.g. ``"OST006"``.
        rule: human-readable rule slug, e.g. ``"no-print"``.
        message: what is wrong and what to do instead.
    """

    path: str
    line: int
    col: int
    code: str
    rule: str
    message: str

    def sort_key(self) -> Tuple[str, int, int, str]:
        """Deterministic ordering: path, then position, then code."""
        return (self.path, self.line, self.col, self.code)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (keys are part of the schema)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "rule": self.rule,
            "message": self.message,
        }

    def render(self) -> str:
        """The human-readable one-line form."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} {self.message} [{self.rule}]"
        )


def render_text(diagnostics: Sequence[Diagnostic], files_checked: int) -> str:
    """Human-readable report: one line per finding plus a summary line."""
    ordered = sorted(diagnostics, key=Diagnostic.sort_key)
    lines = [d.render() for d in ordered]
    noun = "file" if files_checked == 1 else "files"
    if ordered:
        lines.append(
            f"found {len(ordered)} problem(s) in {files_checked} {noun}"
        )
    else:
        lines.append(f"checked {files_checked} {noun}: no problems found")
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic], files_checked: int) -> str:
    """Schema-stable JSON report (``--format json``).

    The payload shape is::

        {"version": 1,
         "files_checked": <int>,
         "counts": {"OST0xx": <int>, ...},
         "diagnostics": [{"path", "line", "col", "code", "rule",
                          "message"}, ...]}

    Diagnostics are sorted by (path, line, col, code) and keys are emitted
    in sorted order, so the output is byte-stable for a given tree.
    """
    ordered = sorted(diagnostics, key=Diagnostic.sort_key)
    counts: Dict[str, int] = {}
    for diag in ordered:
        counts[diag.code] = counts.get(diag.code, 0) + 1
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": files_checked,
        "counts": counts,
        "diagnostics": [d.to_dict() for d in ordered],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_report(
    diagnostics: List[Diagnostic], files_checked: int, fmt: str = "text"
) -> str:
    """Render a report: ``"text"``, ``"json"``, or ``"sarif"``."""
    if fmt == "json":
        return render_json(diagnostics, files_checked)
    if fmt == "sarif":
        from repro.lint.sarif import render_sarif

        return render_sarif(diagnostics, files_checked)
    if fmt == "text":
        return render_text(diagnostics, files_checked)
    raise ValueError(f"unknown lint output format: {fmt!r}")
