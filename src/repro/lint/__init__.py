"""ostrolint: domain-aware static analysis for the Ostro reproduction.

Enforces the invariants the scheduler's correctness rests on --
determinism (OST001/OST002), cache discipline (OST003), mutation
confinement (OST004/OST005), library hygiene (OST006), and units
discipline (OST007) -- as AST checks with stable codes, inline
suppressions, and schema-stable JSON output. Run it as
``repro lint [paths]``; see docs/STATIC_ANALYSIS.md for the rule
catalogue.
"""

from repro.lint.baseline import (
    DEFAULT_BASELINE_PATH,
    compare as compare_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.cache import DEFAULT_CACHE_PATH, LintCache
from repro.lint.diagnostics import (
    JSON_SCHEMA_VERSION,
    Diagnostic,
    render_json,
    render_report,
    render_text,
)
from repro.lint.engine import (
    DEFAULT_EXCLUDED_DIRS,
    FileContext,
    lint_file,
    lint_paths,
    lint_project_sources,
    lint_source,
    module_from_path,
)
from repro.lint.registry import (
    ProjectRule,
    Rule,
    all_project_rules,
    all_rules,
    every_rule,
    known_codes,
    register,
    rule_for_code,
)
from repro.lint.sarif import render_sarif

__all__ = [
    "JSON_SCHEMA_VERSION",
    "DEFAULT_BASELINE_PATH",
    "DEFAULT_CACHE_PATH",
    "Diagnostic",
    "LintCache",
    "compare_baseline",
    "load_baseline",
    "write_baseline",
    "render_json",
    "render_report",
    "render_sarif",
    "render_text",
    "DEFAULT_EXCLUDED_DIRS",
    "FileContext",
    "lint_file",
    "lint_paths",
    "lint_project_sources",
    "lint_source",
    "module_from_path",
    "ProjectRule",
    "Rule",
    "all_project_rules",
    "all_rules",
    "every_rule",
    "known_codes",
    "register",
    "rule_for_code",
]
