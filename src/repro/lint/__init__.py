"""ostrolint: domain-aware static analysis for the Ostro reproduction.

Enforces the invariants the scheduler's correctness rests on --
determinism (OST001/OST002), cache discipline (OST003), mutation
confinement (OST004/OST005), library hygiene (OST006), and units
discipline (OST007) -- as AST checks with stable codes, inline
suppressions, and schema-stable JSON output. Run it as
``repro lint [paths]``; see docs/STATIC_ANALYSIS.md for the rule
catalogue.
"""

from repro.lint.diagnostics import (
    JSON_SCHEMA_VERSION,
    Diagnostic,
    render_json,
    render_report,
    render_text,
)
from repro.lint.engine import (
    DEFAULT_EXCLUDED_DIRS,
    FileContext,
    lint_file,
    lint_paths,
    lint_source,
    module_from_path,
)
from repro.lint.registry import (
    Rule,
    all_rules,
    known_codes,
    register,
    rule_for_code,
)

__all__ = [
    "JSON_SCHEMA_VERSION",
    "Diagnostic",
    "render_json",
    "render_report",
    "render_text",
    "DEFAULT_EXCLUDED_DIRS",
    "FileContext",
    "lint_file",
    "lint_paths",
    "lint_source",
    "module_from_path",
    "Rule",
    "all_rules",
    "known_codes",
    "register",
    "rule_for_code",
]
