"""Intraprocedural control-flow graphs for the flow-aware lint rules.

One :class:`CFG` per function: nodes are simple statements plus three
synthetic markers (entry, normal exit, exceptional exit), edges are the
ordinary successor relation plus *exception edges*. The graph is the
substrate for OST009's transaction-discipline path check and for the
reaching-definitions pass the taint extraction runs
(:mod:`repro.lint.symbols`).

Exception modeling (deliberate precision choices, shared with the docs):

* A statement *may raise* when it contains a call that is not on the
  small never-raises allowlist (:data:`NON_RAISING_CALLS`,
  :data:`NON_RAISING_BUILTINS`), or is a ``raise``/``assert``.
* Escape edges are added for may-raise statements **inside try bodies**
  (an exception there provably crosses a declared handler boundary) and
  for explicit ``raise`` statements anywhere. An unguarded call sequence
  raising out of a function is not modeled -- OST008's
  no-silent-except contract governs where handlers must exist; OST009
  audits the handlers that do.
* A handler catches everything only when it is bare or names
  ``Exception``/``BaseException``; any narrower handler also propagates
  outward (the "unexpected exception" path).
* ``finally`` bodies are instantiated twice -- once on the normal
  continuation, once on the propagation continuation -- so a restore
  inside a ``finally`` lies on every exceptional path, exactly as at
  runtime.

``while``/``for`` loops get back edges; ``break``/``continue``/``return``
resolve against the enclosing loop/function as usual. ``match``
statements (3.10+) fan out one edge per case plus a fall-through.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.astutils import bound_names

#: Method attributes modeled as never raising: the repro.obs recorder
#: surface (events must not be able to abort a placement) and the
#: exception-free container/str conveniences.
NON_RAISING_CALLS = frozenset(
    {
        "get_recorder",
        "inc",
        "event",
        "observe",
        "snapshot",
        "get",
        "items",
        "keys",
        "values",
        "join",
        "split",
        "strip",
        "lower",
        "upper",
        "startswith",
        "endswith",
        "copy",
    }
)

#: Builtins modeled as never raising for CFG purposes.
NON_RAISING_BUILTINS = frozenset(
    {
        "len",
        "str",
        "repr",
        "bool",
        "sorted",
        "list",
        "dict",
        "set",
        "tuple",
        "frozenset",
        "min",
        "max",
        "sum",
        "abs",
        "round",
        "isinstance",
        "issubclass",
        "range",
        "zip",
        "enumerate",
        "id",
        "type",
        "print",
    }
)

_BROAD_HANDLER_NAMES = frozenset({"Exception", "BaseException"})

_MATCH = getattr(ast, "Match", None)


class CFGNode:
    """One node: a simple statement or a synthetic marker."""

    __slots__ = ("index", "stmt", "kind", "succ")

    def __init__(self, index: int, stmt: Optional[ast.stmt], kind: str):
        self.index = index
        self.stmt = stmt
        #: "stmt" | "entry" | "exit" | "raise_exit"
        self.kind = kind
        self.succ: Set[int] = set()


def statement_may_raise(stmt: ast.stmt) -> bool:
    """True when a statement can raise per the CFG's exception model."""
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    for node in ast.walk(stmt):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr not in NON_RAISING_CALLS:
                return True
        elif isinstance(func, ast.Name):
            if func.id not in NON_RAISING_BUILTINS:
                return True
        else:
            return True
    return False


def _handler_is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    for entry in types:
        name = None
        if isinstance(entry, ast.Name):
            name = entry.id
        elif isinstance(entry, ast.Attribute):
            name = entry.attr
        if name in _BROAD_HANDLER_NAMES:
            return True
    return False


class _Frame:
    """Per-``try`` context while building: where exceptions go."""

    __slots__ = ("handler_entries", "catches_all", "finally_body")

    def __init__(
        self,
        handler_entries: List[int],
        catches_all: bool,
        finally_body: Optional[List[ast.stmt]],
    ):
        self.handler_entries = handler_entries
        self.catches_all = catches_all
        self.finally_body = finally_body


class CFG:
    """Control-flow graph of one function body."""

    def __init__(self) -> None:
        self.nodes: List[CFGNode] = []
        self.entry = self._new(None, "entry")
        self.exit = self._new(None, "exit")
        self.raise_exit = self._new(None, "raise_exit")

    # -- construction ---------------------------------------------------

    @classmethod
    def for_function(cls, func: ast.AST) -> "CFG":
        """Build the CFG of a (sync or async) function definition."""
        cfg = cls()
        builder = _Builder(cfg)
        last = builder.build_block(
            func.body, after=[cfg.entry.index], frames=()
        )
        for idx in last:
            cfg.nodes[idx].succ.add(cfg.exit.index)
        return cfg

    def _new(self, stmt: Optional[ast.stmt], kind: str) -> CFGNode:
        node = CFGNode(len(self.nodes), stmt, kind)
        self.nodes.append(node)
        return node

    # -- queries --------------------------------------------------------

    def statement_nodes(self) -> Iterable[CFGNode]:
        for node in self.nodes:
            if node.kind == "stmt":
                yield node

    def reachable_from(
        self, starts: Sequence[int], blocked: FrozenSet[int] = frozenset()
    ) -> Set[int]:
        """Node indices reachable from ``starts`` without *entering* any
        node in ``blocked`` (start nodes themselves are traversed)."""
        seen: Set[int] = set()
        stack = [s for s in starts]
        while stack:
            idx = stack.pop()
            if idx in seen:
                continue
            seen.add(idx)
            for nxt in self.nodes[idx].succ:
                if nxt not in blocked and nxt not in seen:
                    stack.append(nxt)
        return seen

    def reaching_definitions(self) -> Dict[int, Dict[str, Set[int]]]:
        """Classic forward may-analysis at statement granularity.

        Returns, per node index, the map ``name -> set of node indices``
        whose binding of ``name`` may reach the *entry* of that node.
        Definition sites are statements that bind a local name (see
        :func:`repro.lint.astutils.bound_names`). The function-entry
        node binds every name to the synthetic definition ``-1``
        (parameter / free variable).
        """
        defs_at: Dict[int, Set[str]] = {}
        for node in self.statement_nodes():
            names = bound_names(node.stmt)
            if names:
                defs_at[node.index] = names

        preds: Dict[int, List[int]] = {n.index: [] for n in self.nodes}
        for node in self.nodes:
            for nxt in node.succ:
                preds[nxt].append(node.index)

        in_sets: Dict[int, Dict[str, Set[int]]] = {
            n.index: {} for n in self.nodes
        }
        out_sets: Dict[int, Dict[str, Set[int]]] = {
            n.index: {} for n in self.nodes
        }
        worklist = [n.index for n in self.nodes]
        while worklist:
            idx = worklist.pop()
            merged: Dict[str, Set[int]] = {}
            for pred in preds[idx]:
                for name, sites in out_sets[pred].items():
                    merged.setdefault(name, set()).update(sites)
            in_sets[idx] = merged
            new_out = {name: set(sites) for name, sites in merged.items()}
            for name in defs_at.get(idx, ()):
                new_out[name] = {idx}
            if new_out != out_sets[idx]:
                out_sets[idx] = new_out
                for nxt in self.nodes[idx].succ:
                    worklist.append(nxt)
        return in_sets


class _Builder:
    def __init__(self, cfg: CFG):
        self.cfg = cfg
        self.loop_stack: List[Tuple[List[int], List[int]]] = []
        #: dangling (break-exits, continue-exits) per loop
        self.return_sources: List[int] = []

    # Each build_* method wires ``after`` (the dangling predecessor node
    # indices) to what it builds and returns the new dangling set.

    def build_block(
        self,
        body: Sequence[ast.stmt],
        after: List[int],
        frames: Tuple[_Frame, ...],
    ) -> List[int]:
        current = after
        for stmt in body:
            current = self.build_stmt(stmt, current, frames)
            if not current:
                break  # unreachable continuation
        return current

    def _link(self, after: List[int], node: CFGNode) -> None:
        for idx in after:
            self.cfg.nodes[idx].succ.add(node.index)

    def _exception_targets(
        self, frames: Tuple[_Frame, ...]
    ) -> List[int]:
        """Where an exception raised under ``frames`` can travel.

        Walks the try stack innermost-out: each level's handlers are
        candidates; a broad handler stops the walk. Propagation through
        a level with a ``finally`` is routed through a dedicated
        propagation instance of the finally body (built lazily by
        build_try and recorded in the frame as an entry index list).
        Falls off to the function's exceptional exit.
        """
        targets: List[int] = []
        for frame in reversed(frames):
            targets.extend(frame.handler_entries)
            if frame.catches_all:
                return targets
        targets.append(self.cfg.raise_exit.index)
        return targets

    def build_stmt(
        self,
        stmt: ast.stmt,
        after: List[int],
        frames: Tuple[_Frame, ...],
    ) -> List[int]:
        cfg = self.cfg
        if isinstance(stmt, (ast.If,)):
            cond = cfg._new(stmt, "stmt")
            self._link(after, cond)
            then_exits = self.build_block(stmt.body, [cond.index], frames)
            if stmt.orelse:
                else_exits = self.build_block(
                    stmt.orelse, [cond.index], frames
                )
            else:
                else_exits = [cond.index]
            return then_exits + else_exits
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            head = cfg._new(stmt, "stmt")
            self._link(after, head)
            self.loop_stack.append(([], []))
            body_exits = self.build_block(stmt.body, [head.index], frames)
            breaks, continues = self.loop_stack.pop()
            for idx in body_exits + continues:
                cfg.nodes[idx].succ.add(head.index)
            else_exits = (
                self.build_block(stmt.orelse, [head.index], frames)
                if stmt.orelse
                else [head.index]
            )
            return breaks + else_exits
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            head = cfg._new(stmt, "stmt")
            self._link(after, head)
            self._maybe_escape(head, stmt, frames)
            return self.build_block(stmt.body, [head.index], frames)
        if isinstance(stmt, ast.Try) or isinstance(
            stmt, getattr(ast, "TryStar", ast.Try)
        ):
            return self.build_try(stmt, after, frames)
        if _MATCH is not None and isinstance(stmt, _MATCH):
            head = cfg._new(stmt, "stmt")
            self._link(after, head)
            exits: List[int] = [head.index]  # no case may match
            for case in stmt.cases:
                exits.extend(
                    self.build_block(case.body, [head.index], frames)
                )
            return exits
        if isinstance(stmt, ast.Break):
            node = cfg._new(stmt, "stmt")
            self._link(after, node)
            if self.loop_stack:
                self.loop_stack[-1][0].append(node.index)
            return []
        if isinstance(stmt, ast.Continue):
            node = cfg._new(stmt, "stmt")
            self._link(after, node)
            if self.loop_stack:
                self.loop_stack[-1][1].append(node.index)
            return []
        if isinstance(stmt, ast.Return):
            node = cfg._new(stmt, "stmt")
            self._link(after, node)
            self._maybe_escape(node, stmt, frames)
            node.succ.add(cfg.exit.index)
            return []
        if isinstance(stmt, ast.Raise):
            node = cfg._new(stmt, "stmt")
            self._link(after, node)
            for target in self._exception_targets(frames):
                node.succ.add(target)
            return []
        # simple statement (incl. nested defs, treated as opaque)
        node = cfg._new(stmt, "stmt")
        self._link(after, node)
        self._maybe_escape(node, stmt, frames)
        return [node.index]

    def _maybe_escape(
        self, node: CFGNode, stmt: ast.stmt, frames: Tuple[_Frame, ...]
    ) -> None:
        """Exception edges for a may-raise statement inside a try."""
        if not frames or not statement_may_raise(stmt):
            return
        for target in self._exception_targets(frames):
            node.succ.add(target)

    def build_try(
        self,
        stmt: ast.Try,
        after: List[int],
        frames: Tuple[_Frame, ...],
    ) -> List[int]:
        cfg = self.cfg

        # Propagation instance of the finally body: exceptions that the
        # handlers do not terminate route through it on their way out.
        outer_targets_frames = frames
        if stmt.finalbody:
            prop_entry_marker = cfg._new(stmt, "stmt")
            prop_exits = self.build_block(
                stmt.finalbody, [prop_entry_marker.index], frames
            )
            for target in self._exception_targets(frames):
                for idx in prop_exits:
                    cfg.nodes[idx].succ.add(target)
            escape_entries = [prop_entry_marker.index]
        else:
            escape_entries = self._exception_targets(outer_targets_frames)

        # Handler bodies. Their entry nodes are what the try body's
        # escape edges point at.
        handler_entries: List[int] = []
        handler_exits: List[int] = []
        catches_all = False
        for handler in stmt.handlers:
            entry = cfg._new(handler, "stmt")
            handler_entries.append(entry.index)
            if _handler_is_broad(handler):
                catches_all = True
            # the handler body runs under the *outer* frames (an
            # exception inside a handler propagates past this try),
            # routed through this try's finally on the way out.
            inner_frames = outer_targets_frames
            if stmt.finalbody:
                inner_frames = outer_targets_frames + (
                    _Frame([escape_entries[0]], True, None),
                )
            handler_exits.extend(
                self.build_block(handler.body, [entry.index], inner_frames)
            )

        frame = _Frame(
            handler_entries if stmt.handlers else list(escape_entries),
            catches_all,
            stmt.finalbody or None,
        )
        if not stmt.handlers:
            # try/finally only: escapes go straight to the propagation
            # finally (or outward); mark as catching so the walk stops
            # here -- the propagation instance already chains outward.
            frame = _Frame(list(escape_entries), True, None)
        elif stmt.finalbody and not catches_all:
            # narrow handlers + finally: escapes may bypass the handlers
            # but still run the finally. Route them to the propagation
            # instance and stop the outward walk there.
            frame = _Frame(
                handler_entries + [escape_entries[0]], True, None
            )

        body_exits = self.build_block(
            stmt.body, after, frames + (frame,)
        )
        if stmt.orelse:
            body_exits = self.build_block(stmt.orelse, body_exits, frames)

        normal_exits = body_exits + handler_exits
        if stmt.finalbody:
            # normal-continuation instance of the finally body
            normal_entry = cfg._new(stmt, "stmt")
            for idx in normal_exits:
                cfg.nodes[idx].succ.add(normal_entry.index)
            return self.build_block(
                stmt.finalbody, [normal_entry.index], frames
            )
        return normal_exits
