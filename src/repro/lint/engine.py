"""The ostrolint engine: discovery, parsing, caching, rule dispatch.

The engine walks the requested paths (skipping non-source trees such as
``__pycache__``, VCS metadata, build artifacts, and virtualenvs), parses
each Python file once, derives its dotted module path (so rules can
scope themselves to ``repro.core`` / ``repro.datacenter``), collects
inline suppression comments, runs every registered per-file rule over
the AST, and extracts the file's flow facts
(:mod:`repro.lint.symbols`). The facts from *every* analyzed file feed
one :class:`~repro.lint.project.ProjectContext`, against which the
project-wide rules (OST010-OST012) run once per invocation.

Analysis scope vs report scope
------------------------------

``lint_paths(paths, analysis_paths=...)`` separates what is *analyzed*
from what is *reported*: the project pass always needs the whole tree's
call graph, but ``repro lint --changed`` only wants findings in the
touched files. Findings -- file-rule and project-rule alike -- are
reported only for files in ``paths``; ``analysis_paths`` (default: the
report paths themselves) widens the fact extraction.

With a :class:`~repro.lint.cache.LintCache`, unchanged files (by
content hash) skip parse/rules/extraction and replay their stored
diagnostics and facts; the project fixpoints re-run from facts every
time, so warm results are byte-identical to cold ones.

Suppressions
------------

A finding is suppressed by a comment on the same line::

    t0 = time.perf_counter()  # ostrolint: disable=OST002

Several codes may be listed (``disable=OST002,OST006``); a bare
``# ostrolint: disable`` suppresses every rule on that line.
Suppression comments are themselves grep-able, so the self-check test
can assert that ``repro.core`` carries none. Project-rule findings
honor the suppressions of the file they are reported in.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

# Re-exported from astutils for backward compatibility: these lived here
# before the v2 helper consolidation and are part of the public surface.
from repro.lint.astutils import (  # noqa: F401
    module_from_path,
    parse_suppressions,
)
from repro.lint.cache import LintCache, content_hash
from repro.lint.diagnostics import Diagnostic
from repro.lint.project import ProjectContext
from repro.lint.registry import all_project_rules, all_rules
from repro.lint.symbols import ModuleFacts, extract_module_facts

#: Directory names never descended into (non-source trees).
DEFAULT_EXCLUDED_DIRS = frozenset(
    {
        "__pycache__",
        ".git",
        ".hg",
        ".svn",
        ".mypy_cache",
        ".pytest_cache",
        ".ruff_cache",
        ".tox",
        ".venv",
        "venv",
        ".eggs",
        "build",
        "dist",
        "node_modules",
    }
)


@dataclass
class FileContext:
    """Everything a per-file rule needs to know about one parsed file.

    Attributes:
        path: the file path as reported in diagnostics.
        module: dotted module path (``"repro.core.greedy"``) when the file
            lies inside a ``repro`` package tree, else None. Rules use it
            to scope themselves; fixture tests inject synthetic values.
        source: full source text.
        tree: the parsed :mod:`ast` module node.
        suppressions: line number -> codes suppressed on that line
            (the ``"*"`` member means all codes).
    """

    path: str
    module: Optional[str]
    source: str
    tree: ast.AST
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    def in_package(self, *packages: str) -> bool:
        """True when this file's module lies in one of the dotted packages."""
        if self.module is None:
            return False
        for package in packages:
            if self.module == package or self.module.startswith(package + "."):
                return True
        return False

    def is_suppressed(self, diagnostic: Diagnostic) -> bool:
        """True when an inline comment disables this finding's code."""
        codes = self.suppressions.get(diagnostic.line)
        if codes is None:
            return False
        return "*" in codes or diagnostic.code in codes


def _suppressed(
    suppressions: Dict[int, FrozenSet[str]], diagnostic: Diagnostic
) -> bool:
    codes = suppressions.get(diagnostic.line)
    if codes is None:
        return False
    return "*" in codes or diagnostic.code in codes


def iter_source_files(paths: Iterable[str]) -> Iterator[Path]:
    """Yield every Python file under the given paths, excluded trees
    skipped, in sorted order for deterministic reports.

    Raises:
        FileNotFoundError: when a requested path does not exist.
    """
    seen = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        if path.is_file():
            if path not in seen:
                seen.add(path)
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            relative = candidate.relative_to(path)
            if any(
                part in DEFAULT_EXCLUDED_DIRS or part.endswith(".egg-info")
                for part in relative.parts[:-1]
            ):
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def _analyze_source(
    source: str, path: str, module: Optional[str]
) -> Tuple[
    Dict[int, FrozenSet[str]], List[Diagnostic], Optional[ModuleFacts]
]:
    """Parse one source and run the per-file stage.

    Returns (suppressions, post-suppression file-rule diagnostics,
    facts). A syntax error yields the OST000 diagnostic and no facts.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        diagnostic = Diagnostic(
            path=path,
            line=exc.lineno or 1,
            col=(exc.offset or 1),
            code="OST000",
            rule="syntax-error",
            message=f"cannot parse file: {exc.msg}",
        )
        return {}, [diagnostic], None
    suppressions = parse_suppressions(source)
    ctx = FileContext(
        path=path,
        module=module,
        source=source,
        tree=tree,
        suppressions=suppressions,
    )
    findings: List[Diagnostic] = []
    for rule in all_rules():
        for diagnostic in rule.check(ctx):
            if not ctx.is_suppressed(diagnostic):
                findings.append(diagnostic)
    findings.sort(key=Diagnostic.sort_key)
    facts = extract_module_facts(tree, path, module)
    return suppressions, findings, facts


def _project_diagnostics(
    facts_list: List[ModuleFacts],
    report_paths: FrozenSet[str],
    suppressions_by_path: Dict[str, Dict[int, FrozenSet[str]]],
) -> List[Diagnostic]:
    project = ProjectContext(facts_list)
    findings: List[Diagnostic] = []
    for rule in all_project_rules():
        for diagnostic in rule.check_project(project):
            if diagnostic.path not in report_paths:
                continue
            suppressions = suppressions_by_path.get(diagnostic.path, {})
            if _suppressed(suppressions, diagnostic):
                continue
            findings.append(diagnostic)
    return findings


def lint_source(
    source: str,
    path: str = "<string>",
    module: Optional[str] = None,
) -> List[Diagnostic]:
    """Lint one in-memory source string (the fixture-test entry point).

    Runs the per-file rules only; project-wide rules need a multi-file
    view (:func:`lint_project_sources`).

    Args:
        source: Python source text.
        path: path stamped into diagnostics.
        module: dotted module override; inferred from ``path`` when None.
    """
    if module is None:
        module = module_from_path(Path(path))
    _, findings, _ = _analyze_source(source, path, module)
    return findings


def lint_project_sources(
    files: Sequence[Tuple[str, str]],
    modules: Optional[Dict[str, str]] = None,
) -> List[Diagnostic]:
    """Lint in-memory sources as one project (fixture entry point).

    Args:
        files: ``(path, source)`` pairs; every file is analyzed and
            reported.
        modules: optional path -> dotted-module overrides; inferred from
            each path when absent.

    Runs both the per-file rules and the project-wide rules.
    """
    modules = modules or {}
    findings: List[Diagnostic] = []
    facts_list: List[ModuleFacts] = []
    suppressions_by_path: Dict[str, Dict[int, FrozenSet[str]]] = {}
    for path, source in files:
        module = modules.get(path)
        if module is None:
            module = module_from_path(Path(path))
        suppressions, file_findings, facts = _analyze_source(
            source, path, module
        )
        suppressions_by_path[path] = suppressions
        findings.extend(file_findings)
        if facts is not None:
            facts_list.append(facts)
    report_paths = frozenset(path for path, _ in files)
    findings.extend(
        _project_diagnostics(
            facts_list, report_paths, suppressions_by_path
        )
    )
    findings.sort(key=Diagnostic.sort_key)
    return findings


def lint_file(path: Path) -> List[Diagnostic]:
    """Lint one file on disk (per-file rules only)."""
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path=str(path))


def lint_paths(
    paths: Iterable[str],
    analysis_paths: Optional[Iterable[str]] = None,
    cache: Optional[LintCache] = None,
) -> Tuple[List[Diagnostic], int]:
    """Lint files and directories; returns (diagnostics, files checked).

    Directories are walked recursively with the default non-source
    excludes; explicit file arguments are always linted. Findings are
    reported for files under ``paths``; fact extraction (and therefore
    the project rules' call graph) additionally covers
    ``analysis_paths`` when given. ``files checked`` counts report-scope
    files.
    """
    report_files = list(iter_source_files(paths))
    report_paths = frozenset(str(p) for p in report_files)
    if analysis_paths is not None:
        all_files = list(iter_source_files(analysis_paths))
        known = {str(p) for p in all_files}
        all_files.extend(
            p for p in report_files if str(p) not in known
        )
    else:
        all_files = report_files

    findings: List[Diagnostic] = []
    facts_list: List[ModuleFacts] = []
    suppressions_by_path: Dict[str, Dict[int, FrozenSet[str]]] = {}
    for file_path in all_files:
        key = str(file_path)
        data = file_path.read_bytes()
        digest = content_hash(data)
        cached = cache.get(key, digest) if cache is not None else None
        if cached is not None:
            _, suppressions, file_findings, facts = cached
        else:
            source = data.decode("utf-8")
            module = module_from_path(file_path)
            suppressions, file_findings, facts = _analyze_source(
                source, key, module
            )
            if cache is not None:
                cache.put(
                    key,
                    digest,
                    module,
                    suppressions,
                    file_findings,
                    facts,
                )
        suppressions_by_path[key] = suppressions
        if facts is not None:
            facts_list.append(facts)
        if key in report_paths:
            findings.extend(file_findings)

    findings.extend(
        _project_diagnostics(
            facts_list, report_paths, suppressions_by_path
        )
    )
    if cache is not None:
        cache.prune(str(p) for p in all_files)
        cache.save()
    findings.sort(key=Diagnostic.sort_key)
    return findings, len(report_files)
