"""The ostrolint engine: file discovery, parsing, suppressions, dispatch.

The engine walks the requested paths (skipping non-source trees such as
``__pycache__``, VCS metadata, build artifacts, and virtualenvs), parses
each Python file once, derives its dotted module path (so rules can scope
themselves to ``repro.core`` / ``repro.datacenter``), collects inline
suppression comments, and runs every registered rule over the AST.

Suppressions
------------

A finding is suppressed by a comment on the same line::

    t0 = time.perf_counter()  # ostrolint: disable=OST002

Several codes may be listed (``disable=OST002,OST006``); a bare
``# ostrolint: disable`` suppresses every rule on that line. Suppression
comments are themselves grep-able, so the self-check test can assert that
``repro.core`` carries none.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import all_rules

#: Directory names never descended into (non-source trees).
DEFAULT_EXCLUDED_DIRS = frozenset(
    {
        "__pycache__",
        ".git",
        ".hg",
        ".svn",
        ".mypy_cache",
        ".pytest_cache",
        ".ruff_cache",
        ".tox",
        ".venv",
        "venv",
        ".eggs",
        "build",
        "dist",
        "node_modules",
    }
)

#: Suppression-comment grammar: ``# ostrolint: disable[=CODE[,CODE...]]``.
_SUPPRESS_RE = re.compile(
    r"#\s*ostrolint:\s*disable(?:=(?P<codes>[A-Z0-9,\s]+))?"
)

#: Marker meaning "every code is suppressed on this line".
_ALL_CODES = frozenset({"*"})


@dataclass
class FileContext:
    """Everything a rule needs to know about one parsed file.

    Attributes:
        path: the file path as reported in diagnostics.
        module: dotted module path (``"repro.core.greedy"``) when the file
            lies inside a ``repro`` package tree, else None. Rules use it
            to scope themselves; fixture tests inject synthetic values.
        source: full source text.
        tree: the parsed :mod:`ast` module node.
        suppressions: line number -> codes suppressed on that line
            (the ``"*"`` member means all codes).
    """

    path: str
    module: Optional[str]
    source: str
    tree: ast.AST
    suppressions: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    def in_package(self, *packages: str) -> bool:
        """True when this file's module lies in one of the dotted packages."""
        if self.module is None:
            return False
        for package in packages:
            if self.module == package or self.module.startswith(package + "."):
                return True
        return False

    def is_suppressed(self, diagnostic: Diagnostic) -> bool:
        """True when an inline comment disables this finding's code."""
        codes = self.suppressions.get(diagnostic.line)
        if codes is None:
            return False
        return "*" in codes or diagnostic.code in codes


def module_from_path(path: Path) -> Optional[str]:
    """Infer the dotted module path of a file inside a ``repro`` tree.

    Walks the path components for the *last* ``repro`` directory (the
    package root under ``src/``) and joins everything from there:
    ``src/repro/core/greedy.py`` -> ``repro.core.greedy``;
    ``__init__.py`` maps to its package. Returns None for files outside
    any ``repro`` tree (rules scoped by module then skip the file).
    """
    parts = list(path.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    try:
        anchor = len(parts) - 1 - parts[::-1].index("repro")
    except ValueError:
        return None
    dotted = parts[anchor:]
    if dotted and dotted[-1] == "__init__":
        dotted = dotted[:-1]
    return ".".join(dotted) if dotted else None


def parse_suppressions(source: str) -> Dict[int, FrozenSet[str]]:
    """Collect ``# ostrolint: disable`` comments, by line number.

    Uses the tokenizer, so the directive is only honored in real comments
    -- a string literal containing the text does not suppress anything.
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                continue
            raw = match.group("codes")
            if raw is None:
                codes = _ALL_CODES
            else:
                codes = frozenset(
                    code.strip() for code in raw.split(",") if code.strip()
                )
            line = token.start[0]
            previous = suppressions.get(line, frozenset())
            suppressions[line] = previous | codes
    except tokenize.TokenError:  # ostrolint: disable=OST008
        # Unterminated constructs and the like: the ast parse will produce
        # the real error; suppressions just stay empty.
        pass
    return suppressions


def iter_source_files(paths: Iterable[str]) -> Iterator[Path]:
    """Yield every Python file under the given paths, excluded trees
    skipped, in sorted order for deterministic reports.

    Raises:
        FileNotFoundError: when a requested path does not exist.
    """
    seen = set()
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        if path.is_file():
            if path not in seen:
                seen.add(path)
                yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            relative = candidate.relative_to(path)
            if any(
                part in DEFAULT_EXCLUDED_DIRS or part.endswith(".egg-info")
                for part in relative.parts[:-1]
            ):
                continue
            if candidate not in seen:
                seen.add(candidate)
                yield candidate


def lint_source(
    source: str,
    path: str = "<string>",
    module: Optional[str] = None,
) -> List[Diagnostic]:
    """Lint one in-memory source string (the fixture-test entry point).

    Args:
        source: Python source text.
        path: path stamped into diagnostics.
        module: dotted module override; inferred from ``path`` when None.
    """
    if module is None:
        module = module_from_path(Path(path))
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1),
                code="OST000",
                rule="syntax-error",
                message=f"cannot parse file: {exc.msg}",
            )
        ]
    ctx = FileContext(
        path=path,
        module=module,
        source=source,
        tree=tree,
        suppressions=parse_suppressions(source),
    )
    findings: List[Diagnostic] = []
    for rule in all_rules():
        for diagnostic in rule.check(ctx):
            if not ctx.is_suppressed(diagnostic):
                findings.append(diagnostic)
    findings.sort(key=Diagnostic.sort_key)
    return findings


def lint_file(path: Path) -> List[Diagnostic]:
    """Lint one file on disk."""
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path=str(path))


def lint_paths(paths: Iterable[str]) -> Tuple[List[Diagnostic], int]:
    """Lint files and directories; returns (diagnostics, files checked).

    Directories are walked recursively with the default non-source
    excludes; explicit file arguments are always linted.
    """
    findings: List[Diagnostic] = []
    files_checked = 0
    for file_path in iter_source_files(paths):
        files_checked += 1
        findings.extend(lint_file(file_path))
    findings.sort(key=Diagnostic.sort_key)
    return findings, files_checked
