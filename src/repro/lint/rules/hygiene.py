"""Library-hygiene rule: OST006 no ``print()`` in library code.

Library modules report through ``repro.obs`` (structured events and
metrics) so experiment runs stay machine-parseable and quiet by default.
``print`` is reserved for the user-facing surfaces: the CLI, the
simulation report writer, and the examples (which live outside the
package and are not linted as library code).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import Rule, register

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.engine import FileContext

#: User-facing modules where print() is the point.
PRINT_EXEMPT_MODULES = frozenset(
    {
        "repro.cli",
        "repro.__main__",
        "repro.sim.reporting",
    }
)


@register
class NoPrintRule(Rule):
    """OST006: library modules must not call ``print()``."""

    code = "OST006"
    name = "no-print"
    summary = (
        "library code must use repro.obs instead of print(); only the "
        "CLI and sim reporting are exempt"
    )

    def check(self, ctx: "FileContext") -> Iterator[Diagnostic]:
        if not ctx.in_package("repro"):
            return
        if ctx.module in PRINT_EXEMPT_MODULES:
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.diagnostic(
                    ctx,
                    node.lineno,
                    node.col_offset + 1,
                    "print() in library code; emit a repro.obs event or "
                    "metric instead (CLI and sim reporting are exempt)",
                )
