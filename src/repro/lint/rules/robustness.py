"""Robustness rule: OST008 no silent exception swallowing in library code.

The fault-injection layer (:mod:`repro.faults`) relies on errors
propagating: transient API faults must reach :func:`retry_call`,
permanent ones must reach the transactional rollback paths, and
capacity leaks surface as :class:`~repro.errors.ReproError` subclasses.
A handler that silently eats an exception breaks every one of those
contracts, so library code may not:

* use a bare ``except:`` (catches ``KeyboardInterrupt`` too);
* catch ``Exception``/``BaseException`` without re-raising;
* reduce any handler body to a lone ``pass``/``...``.

A deliberately-ignored narrow exception is justified with an inline
``# ostrolint: disable=OST008`` plus a comment saying why.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import Rule, register

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.engine import FileContext

#: Catch-all exception names that must re-raise.
_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _caught_names(handler: ast.ExceptHandler) -> Iterator[str]:
    """Dotted-name strings of the exception types a handler catches."""
    node = handler.type
    types = node.elts if isinstance(node, ast.Tuple) else [node]
    for entry in types:
        if isinstance(entry, ast.Name):
            yield entry.id
        elif isinstance(entry, ast.Attribute):
            yield entry.attr


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True when any statement in the handler body raises."""
    return any(
        isinstance(node, ast.Raise)
        for stmt in handler.body
        for node in ast.walk(stmt)
    )


def _is_noop_body(handler: ast.ExceptHandler) -> bool:
    """True when the handler body is a lone ``pass`` or ``...``."""
    if len(handler.body) != 1:
        return False
    stmt = handler.body[0]
    if isinstance(stmt, ast.Pass):
        return True
    return isinstance(stmt, ast.Expr) and isinstance(
        stmt.value, ast.Constant
    ) and stmt.value.value is Ellipsis


@register
class NoSilentExceptRule(Rule):
    """OST008: library handlers must not swallow exceptions silently."""

    code = "OST008"
    name = "no-silent-except"
    summary = (
        "library code must not use bare except, swallow broad "
        "Exception catches, or reduce a handler to pass"
    )

    def check(self, ctx: "FileContext") -> Iterator[Diagnostic]:
        if not ctx.in_package("repro"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.diagnostic(
                    ctx,
                    node.lineno,
                    node.col_offset + 1,
                    "bare 'except:' catches everything including "
                    "KeyboardInterrupt; name the exception type",
                )
                continue
            broad = sorted(
                name
                for name in _caught_names(node)
                if name in _BROAD_NAMES
            )
            if broad and not _reraises(node):
                yield self.diagnostic(
                    ctx,
                    node.lineno,
                    node.col_offset + 1,
                    f"'except {broad[0]}' without re-raise swallows "
                    "unexpected errors; catch a ReproError subclass or "
                    "re-raise",
                )
                continue
            if _is_noop_body(node):
                yield self.diagnostic(
                    ctx,
                    node.lineno,
                    node.col_offset + 1,
                    "exception handler silently discards the error; "
                    "handle it, re-raise, or justify with a suppression",
                )
