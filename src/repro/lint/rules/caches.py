"""Cache-discipline rule: OST003.

PR 2 added derived caches to ``ApplicationTopology``
(``requirement_vector``, ``bandwidth_of``, ``zones_of``, the sorted node
orders). They are only correct because every mutator of the backing
state calls ``_invalidate_caches()``. A new mutator that forgets the
hook produces placements computed from stale requirement vectors -- a
silent correctness bug the admissibility tests will not always catch.

The rule is structural, not name-based: in any class that defines an
``_invalidate_caches`` method, the attributes assigned *inside* the hook
are the cache slots; every other method that writes a different
``self.*`` attribute (assignment, augmented assignment, deletion,
subscript store, or an in-place mutator call) must invoke the hook
somewhere in its body. ``__init__`` is exempt (nothing is cached before
construction finishes), and writes through other receivers (for example
``duplicate._nodes`` inside ``copy()``) are ignored.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator, List, Set, Tuple

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import Rule, register
from repro.lint.astutils import MUTATOR_METHODS, assignment_targets

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.engine import FileContext

#: Name of the invalidation hook the rule keys on.
INVALIDATION_HOOK = "_invalidate_caches"

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _first_param(func: ast.AST) -> "str | None":
    """Receiver parameter name of a method, or None for staticmethods."""
    for decorator in func.decorator_list:
        if isinstance(decorator, ast.Name) and decorator.id == "staticmethod":
            return None
    params = func.args.posonlyargs + func.args.args
    if not params:
        return None
    return params[0].arg


def _self_attribute(node: ast.AST, receiver: str) -> "str | None":
    """``self.X`` attribute name when node is exactly that, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == receiver
    ):
        return node.attr
    return None


def _written_attributes(
    body: Iterable[ast.stmt], receiver: str
) -> Iterator[Tuple[ast.AST, str]]:
    """Yield ``(node, attr)`` for every write to ``receiver.attr``.

    Covers plain/augmented/annotated assignment, deletion, subscript
    stores (``self.X[k] = v``) and in-place mutator calls
    (``self.X.append(v)``).
    """
    for stmt in body:
        for node in ast.walk(stmt):
            for target in assignment_targets(node):
                if isinstance(target, ast.Subscript):
                    target = target.value
                attr = _self_attribute(target, receiver)
                if attr is not None:
                    yield node, attr
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in MUTATOR_METHODS:
                    attr = _self_attribute(node.func.value, receiver)
                    if attr is not None:
                        yield node, attr


def _calls_hook(body: Iterable[ast.stmt], receiver: str) -> bool:
    for stmt in body:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == INVALIDATION_HOOK
                and _self_attribute(node.func, receiver) is not None
            ):
                return True
    return False


@register
class CacheInvalidationRule(Rule):
    """OST003: mutators of cached-backing state must invalidate caches."""

    code = "OST003"
    name = "cache-invalidation"
    summary = (
        "in classes with an _invalidate_caches hook, any method writing "
        "non-cache instance state must call the hook"
    )

    def check(self, ctx: "FileContext") -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(ctx, node)

    def _check_class(
        self, ctx: "FileContext", cls: ast.ClassDef
    ) -> Iterator[Diagnostic]:
        methods: List[ast.AST] = [
            stmt for stmt in cls.body if isinstance(stmt, _FUNCTION_NODES)
        ]
        hook = next(
            (m for m in methods if m.name == INVALIDATION_HOOK), None
        )
        if hook is None:
            return
        hook_receiver = _first_param(hook) or "self"
        cache_attrs: Set[str] = {
            attr for _, attr in _written_attributes(hook.body, hook_receiver)
        }
        for method in methods:
            if method.name in ("__init__", INVALIDATION_HOOK):
                continue
            receiver = _first_param(method)
            if receiver is None:
                continue
            backing_writes = [
                (node, attr)
                for node, attr in _written_attributes(method.body, receiver)
                if attr not in cache_attrs and attr != INVALIDATION_HOOK
            ]
            if not backing_writes:
                continue
            if _calls_hook(method.body, receiver):
                continue
            node, attr = backing_writes[0]
            yield self.diagnostic(
                ctx,
                node.lineno,
                node.col_offset + 1,
                f"{cls.name}.{method.name} writes {receiver}.{attr} (backing "
                f"state) without calling {receiver}.{INVALIDATION_HOOK}(); "
                "derived caches would go stale",
            )
