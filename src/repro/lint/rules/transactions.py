"""Transaction-discipline rule: OST009.

The admission/recovery layers follow a snapshot/restore protocol: take a
``state.snapshot()``, mutate shared state, and on failure restore the
snapshot before the exception leaves the transaction. PR 4's batched
admission and the heat/openstack facades all rely on it -- a snapshot
that is *not* restored on some exception path leaks half-applied
placements into the coordinator state, exactly the composed-path failure
mode the flow rules exist to catch.

The check is a CFG path condition, not a pattern match. For every local
``v = <expr>.snapshot()``:

* build the function's CFG (:mod:`repro.lint.cfg`), whose exception
  edges model *declared* failure paths -- may-raise statements inside
  ``try`` bodies, explicit ``raise``, narrow handlers also propagating
  outward, ``finally`` bodies on both continuations;
* delete every node that restores ``v`` (a call to ``restore``/
  ``rollback_to`` receiving ``Name(v)``);
* flag when, in the remaining graph, some state-*mutating* call is
  reachable from the snapshot AND the exceptional exit is reachable from
  that mutation. Read-only snapshot uses (scratch-state probing) and
  restores placed in ``finally`` blocks therefore stay clean.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, FrozenSet, Iterator, List, Optional, Set

from repro.lint.astutils import (
    COMPOUND_NODES,
    FUNCTION_NODES,
    own_expressions,
)
from repro.lint.cfg import CFG
from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import Rule, register

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.engine import FileContext

#: Packages whose snapshot/restore pairing is enforced.
TRANSACTION_PACKAGES = (
    "repro.faults",
    "repro.service",
    "repro.openstack",
    "repro.heat",
)

#: Calls that restore a snapshot when passed its variable.
RESTORE_METHODS = frozenset({"restore", "rollback_to"})

#: Domain verbs that mutate shared scheduler/datacenter state. A
#: restore-free exception path only matters after one of these ran --
#: a snapshot taken purely for read-only probing never needs a restore.
STATE_MUTATORS = frozenset(
    {
        "admit",
        "apply",
        "assign",
        "commit",
        "create_server",
        "create_stack",
        "create_volume",
        "delete_server",
        "delete_stack",
        "delete_volume",
        "deploy",
        "evacuate",
        "forget_app",
        "migrate",
        "place",
        "place_vm",
        "place_with_degradation",
        "release",
        "remove",
        "reserve",
        "update_stack",
    }
)


def _snapshot_var(stmt: ast.stmt) -> Optional[str]:
    """The bound name of ``v = <expr>.snapshot()``, else None."""
    if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
        return None
    target = stmt.targets[0]
    if not isinstance(target, ast.Name):
        return None
    value = stmt.value
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Attribute)
        and value.func.attr == "snapshot"
    ):
        return target.id
    return None


def _scan(stmt: ast.AST) -> Iterator[ast.AST]:
    """AST nodes a CFG node itself evaluates.

    Compound heads (For/If/While/Try/...) carry the whole construct as
    their ``stmt``; walking it would attribute body calls to the head,
    so only the head's own expressions are scanned -- body statements
    have CFG nodes of their own.
    """
    if isinstance(
        stmt,
        COMPOUND_NODES
        + (ast.ExceptHandler, getattr(ast, "Match", ast.Try)),
    ):
        for expr in own_expressions(stmt):
            yield from ast.walk(expr)
    else:
        yield from ast.walk(stmt)


def _restores(stmt: ast.stmt, var: str) -> bool:
    """True when the statement restores the snapshot variable."""
    for node in _scan(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in RESTORE_METHODS
        ):
            for arg in list(node.args) + [
                kw.value for kw in node.keywords
            ]:
                if isinstance(arg, ast.Name) and arg.id == var:
                    return True
    return False


def _mutates_state(stmt: ast.stmt) -> Optional[str]:
    """The first state-mutating call verb in the statement, else None."""
    for node in _scan(stmt):
        if isinstance(node, ast.Call):
            func = node.func
            name = None
            if isinstance(func, ast.Attribute):
                name = func.attr
            elif isinstance(func, ast.Name):
                name = func.id
            if name in STATE_MUTATORS:
                return name
    return None


@register
class TransactionDisciplineRule(Rule):
    """OST009: snapshots must reach a restore on every exception path."""

    code = "OST009"
    name = "snapshot-restore"
    summary = (
        "state snapshots in faults/service/openstack/heat must be "
        "restored on every exception path that follows a state mutation"
    )

    def check(self, ctx: "FileContext") -> Iterator[Diagnostic]:
        if not ctx.in_package(*TRANSACTION_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, FUNCTION_NODES):
                yield from self._check_function(ctx, node)

    def _check_function(
        self, ctx: "FileContext", func: ast.AST
    ) -> Iterator[Diagnostic]:
        cfg = CFG.for_function(func)
        nodes = cfg.nodes
        snapshots: List[tuple] = []  # (node index, var name)
        for node in cfg.statement_nodes():
            var = _snapshot_var(node.stmt)
            if var is not None:
                snapshots.append((node.index, var))
        for snap_index, var in snapshots:
            blocked: Set[int] = {
                node.index
                for node in cfg.statement_nodes()
                if node.index != snap_index and _restores(node.stmt, var)
            }
            reachable = cfg.reachable_from(
                [snap_index], blocked=frozenset(blocked)
            )
            reachable.discard(snap_index)
            for index in sorted(reachable):
                node = nodes[index]
                if node.kind != "stmt":
                    continue
                verb = _mutates_state(node.stmt)
                if verb is None:
                    continue
                escape = cfg.reachable_from(
                    [index], blocked=frozenset(blocked)
                )
                if cfg.raise_exit.index in escape:
                    stmt = nodes[snap_index].stmt
                    yield self.diagnostic(
                        ctx,
                        stmt.lineno,
                        stmt.col_offset + 1,
                        f"snapshot '{var}' is not restored on an "
                        f"exception path that follows the state-mutating "
                        f"call '{verb}()' (line {node.stmt.lineno}); "
                        "restore it in a broad except/finally before the "
                        "exception escapes",
                    )
                    break
