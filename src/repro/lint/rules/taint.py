"""Determinism-taint rule: OST010.

OST001/OST002 police *local* use of RNG and clocks inside the
deterministic packages. OST010 closes the composition gap: a wall-clock
or RNG value produced anywhere in the project must never *reach
fingerprinted code* -- the ``rows_fingerprint``/``placement_fingerprint``
hashes the bench gates diff across runs, and telemetry event payloads
(the decision trajectory), however many helper calls it is laundered
through.

The analysis is the project taint machinery of
:mod:`repro.lint.project`: per-function flow-sensitive taint summaries
(:mod:`repro.lint.symbols`), a tainted-return fixpoint over the call
graph, and a sink-parameter fixpoint so that passing a tainted value
into a helper that forwards it to a sink is reported at the call site
that introduced the value. Values flowing into the documented volatile
event keys (``elapsed_s``, ``seconds``, ...) are exempt: the replay and
fingerprint tooling excludes those keys, which is also why taint does
not cross object construction (``rows_fingerprint`` strips
``runtime_s`` itself).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.lint.registry import ProjectRule, register

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.project import ProjectContext

from repro.lint.diagnostics import Diagnostic


@register
class DeterminismTaintRule(ProjectRule):
    """OST010: no RNG/clock value may reach fingerprinted code."""

    code = "OST010"
    name = "determinism-taint"
    summary = (
        "wall-clock/RNG values must not reach fingerprints or "
        "non-volatile telemetry payloads, through any call chain"
    )

    def check_project(
        self, project: "ProjectContext"
    ) -> Iterator[Diagnostic]:
        sink_params = project.sink_params()
        for ref in sorted(project.functions):
            fn = project.functions[ref]
            path = project.path_of(ref)
            # direct / return-tainted values hitting a sink in this body
            for sink in fn.sinks:
                sources = project.taint_sources(fn, sink.taint)
                if sources:
                    yield Diagnostic(
                        path=path,
                        line=sink.line,
                        col=sink.col,
                        code=self.code,
                        rule=self.name,
                        message=(
                            f"non-deterministic value from "
                            f"{', '.join(sources[:3])} reaches "
                            f"determinism sink '{sink.sink}' in "
                            f"{fn.qualname}; fingerprinted data must be "
                            "reproducible from the seed"
                        ),
                    )
            # tainted arguments handed to a helper that sinks them
            for site in fn.calls:
                candidates = project.resolve(site)
                if not candidates:
                    continue
                for arg_key, arg_taint in sorted(site.arg_taints.items()):
                    sources = project.taint_sources(fn, arg_taint)
                    if not sources:
                        continue
                    if all(
                        self._param_sinks(
                            project, sink_params, candidate, site, arg_key
                        )
                        for candidate in candidates
                    ):
                        yield Diagnostic(
                            path=path,
                            line=site.line,
                            col=site.col,
                            code=self.code,
                            rule=self.name,
                            message=(
                                f"non-deterministic value from "
                                f"{', '.join(sources[:3])} is passed to "
                                f"'{site.name}' (argument {arg_key}), "
                                "which forwards it into a determinism "
                                "sink"
                            ),
                        )

    @staticmethod
    def _param_sinks(
        project: "ProjectContext",
        sink_params,
        candidate: str,
        site,
        arg_key: str,
    ) -> bool:
        callee = project.functions[candidate]
        mapped = project.param_index(callee, site, arg_key)
        return mapped is not None and mapped in sink_params[candidate]
