"""Mutation-confinement rules: OST004 and OST005.

The scoring pipeline (candidate enumeration, constraint checks, the
lower-bound estimator) must be observationally pure with respect to the
model objects it is handed: BA*/DBA* score thousands of candidates per
expansion against shared ``Cloud``/``ApplicationTopology``/placement
state, and PR 2's scratch-path scoring relies on every mutation going
through ``PartialPlacement`` so it can be undone bit-exactly (LIFO
saved-slot restore). A stray write from ``heuristic.py`` corrupts state
for every subsequent candidate.

Similarly, the paper's reserved-bandwidth accounting (u_bw) is only
trustworthy if the host free-resource arrays are written from exactly
one place. OST005 pins those writes to the resource owner
(``datacenter/state.py``, ``datacenter/resources.py``) and the placement
applier (``core/placement.py``).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, FrozenSet, Iterator, List, Set

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import Rule, register
from repro.lint.astutils import (
    MUTATOR_METHODS,
    all_arguments,
    annotation_names,
    assignment_targets,
    root_name,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.engine import FileContext

_FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)

#: Modules whose functions must treat model parameters as read-only.
READ_ONLY_MODULES = frozenset(
    {
        "repro.core.candidates",
        "repro.core.constraints",
        "repro.core.heuristic",
    }
)

#: Conventional parameter names for shared model objects.
TRACKED_PARAM_NAMES = frozenset(
    {"partial", "topology", "cloud", "state", "placement"}
)

#: Annotation type names that mark a parameter as a shared model object.
TRACKED_TYPE_NAMES = frozenset(
    {
        "PartialPlacement",
        "ApplicationTopology",
        "Cloud",
        "DataCenter",
        "DataCenterState",
        "Placement",
    }
)

#: Host free-resource arrays owned by DataCenterState.
RESOURCE_FIELDS = frozenset(
    {"free_cpu", "free_mem", "free_disk", "free_bw", "host_units"}
)

#: The only modules allowed to write the resource arrays.
RESOURCE_WRITER_MODULES = frozenset(
    {
        "repro.datacenter.state",
        "repro.datacenter.resources",
        "repro.core.placement",
    }
)


def _tracked_params(func: ast.AST) -> Set[str]:
    tracked: Set[str] = set()
    for arg in all_arguments(func):
        if arg.arg in ("self", "cls"):
            continue
        if arg.arg in TRACKED_PARAM_NAMES:
            tracked.add(arg.arg)
        elif annotation_names(arg.annotation) & TRACKED_TYPE_NAMES:
            tracked.add(arg.arg)
    return tracked


def _outer_functions(tree: ast.AST) -> Iterator[ast.AST]:
    """Module-level functions and class methods (not nested defs)."""
    for node in tree.body:
        if isinstance(node, _FUNCTION_NODES):
            yield node
        elif isinstance(node, ast.ClassDef):
            for sub in node.body:
                if isinstance(sub, _FUNCTION_NODES):
                    yield sub


@register
class ParameterMutationRule(Rule):
    """OST004: scoring-pipeline functions must not mutate model params."""

    code = "OST004"
    name = "parameter-mutation"
    summary = (
        "functions in candidates/constraints/heuristic must not mutate "
        "their Cloud/ApplicationTopology/placement parameters"
    )

    def check(self, ctx: "FileContext") -> Iterator[Diagnostic]:
        if ctx.module not in READ_ONLY_MODULES:
            return
        for func in _outer_functions(ctx.tree):
            yield from self._scan_function(ctx, func, frozenset())

    def _scan_function(
        self, ctx: "FileContext", func: ast.AST, inherited: FrozenSet[str]
    ) -> Iterator[Diagnostic]:
        tracked = frozenset(inherited | _tracked_params(func))
        yield from self._scan_body(ctx, func.body, tracked)

    def _scan_body(
        self, ctx: "FileContext", body: List[ast.stmt], tracked: FrozenSet[str]
    ) -> Iterator[Diagnostic]:
        for stmt in body:
            # closures inherit the enclosing tracked set
            if isinstance(stmt, _FUNCTION_NODES):
                yield from self._scan_function(ctx, stmt, tracked)
                continue
            for node in ast.walk(stmt):
                yield from self._check_node(ctx, node, tracked)

    def _check_node(
        self, ctx: "FileContext", node: ast.AST, tracked: FrozenSet[str]
    ) -> Iterator[Diagnostic]:
        for target in assignment_targets(node):
            # rebinding a local name is fine; writing *into* the object
            # (attribute or subscript store) is the mutation we forbid
            if not isinstance(target, (ast.Attribute, ast.Subscript)):
                continue
            name = root_name(target)
            if name in tracked:
                yield self.diagnostic(
                    ctx,
                    node.lineno,
                    node.col_offset + 1,
                    f"write into shared parameter '{name}' from the scoring "
                    "pipeline; copy it or route the change through "
                    "PartialPlacement",
                )
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATOR_METHODS
        ):
            name = root_name(node.func.value)
            if name in tracked:
                yield self.diagnostic(
                    ctx,
                    node.lineno,
                    node.col_offset + 1,
                    f"in-place call {name}...{node.func.attr}() mutates a "
                    "shared parameter from the scoring pipeline; copy it or "
                    "route the change through PartialPlacement",
                )


@register
class ResourceWriteRule(Rule):
    """OST005: host free-resource arrays only written by their owners."""

    code = "OST005"
    name = "resource-write"
    summary = (
        "host resource fields (free_cpu/free_mem/free_disk/free_bw/"
        "host_units) may only be written from state.py, resources.py, "
        "and placement.py"
    )

    def check(self, ctx: "FileContext") -> Iterator[Diagnostic]:
        if ctx.module is None or not ctx.in_package("repro"):
            return
        if ctx.module in RESOURCE_WRITER_MODULES:
            return
        for node in ast.walk(ctx.tree):
            for target in assignment_targets(node):
                if isinstance(target, ast.Subscript):
                    target = target.value
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in RESOURCE_FIELDS
                ):
                    yield self._finding(ctx, node, target.attr)
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATOR_METHODS
                and isinstance(node.func.value, ast.Attribute)
                and node.func.value.attr in RESOURCE_FIELDS
            ):
                yield self._finding(ctx, node, node.func.value.attr)

    def _finding(
        self, ctx: "FileContext", node: ast.AST, field: str
    ) -> Diagnostic:
        return self.diagnostic(
            ctx,
            node.lineno,
            node.col_offset + 1,
            f"write to host resource field '{field}' outside the resource "
            "owners (datacenter/state.py, datacenter/resources.py, "
            "core/placement.py) breaks reserved-bandwidth accounting",
        )
