"""Kernel-parity rule: OST012.

PR 7's numpy kernel is kept bit-identical to the python reference by a
runtime crosscheck -- but the crosscheck only fires on executed inputs.
OST012 catches structural drift statically: for each paired twin
(the array kernel vs its python reference), both sides must touch the
same candidate-tuple fields (constructor kwargs plus attribute reads of
the tuple class's declared fields) and emit the same metric/counter
names. A field or counter added to one side and not the other is
exactly the silent divergence the crosscheck would only find at
runtime, on the right input, with crosscheck enabled.

Each side's footprint is its root function plus the transitively-called
*private* helpers of the same module (underscore-prefixed functions and
methods of underscore-prefixed classes), resolved over the project call
graph.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Set, Tuple

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import ProjectRule, register

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.project import ProjectContext
    from repro.lint.symbols import FunctionFacts

#: The paired numpy/python twins and the candidate-tuple class whose
#: field footprint must match. Tuple class is "module:ClassName".
PARITY_GROUPS: Tuple[Dict[str, str], ...] = (
    {
        "group": "candidate-targets",
        "numpy": "repro.core.kernel:candidate_targets_numpy",
        "python": "repro.core.candidates:candidate_targets",
        "tuple_class": "repro.core.candidates:CandidateTarget",
    },
    {
        "group": "immediate-costs",
        "numpy": "repro.core.kernel:immediate_costs",
        "python": "repro.core.greedy:_immediate_cost",
        "tuple_class": "repro.core.candidates:CandidateTarget",
    },
    {
        "group": "batch-scoring",
        "numpy": "repro.core.kernel:batch_score",
        "python": "repro.core.kernel:verify_batch",
        "tuple_class": "repro.core.candidates:CandidateTarget",
    },
)


def _closure(project: "ProjectContext", root_ref: str) -> List[str]:
    """Root plus transitively-called same-module private helpers.

    Instantiating a same-module private class pulls *all* of that
    class's methods into the closure: a helper like ``_EstimateBatch``
    is driven via ``_EstimateBatch(...).run()``, whose method calls are
    not name-resolvable from the call expression alone.
    """
    if root_ref not in project.functions:
        return []
    root = project.functions[root_ref]
    module_facts = project.modules.get(root.module)
    seen: Set[str] = {root_ref}
    queue: List[str] = [root_ref]

    def enqueue(candidate: str) -> None:
        if candidate in seen or candidate not in project.functions:
            return
        callee = project.functions[candidate]
        if callee.module != root.module:
            return
        if not any(
            part.startswith("_") for part in callee.qualname.split(".")
        ):
            return
        seen.add(candidate)
        queue.append(candidate)

    while queue:
        ref = queue.pop()
        fn = project.functions[ref]
        for site in fn.calls:
            for candidate in project.resolve(site):
                enqueue(candidate)
            if module_facts is None:
                continue
            class_name = site.name.split(".")[-1]
            declared = module_facts.classes.get(class_name)
            if declared is not None and class_name.startswith("_"):
                for method in declared.methods:
                    enqueue(f"{root.module}:{class_name}.{method}")
    return sorted(seen)


def _tuple_fields(
    project: "ProjectContext", tuple_class: str
) -> Tuple[str, Set[str]]:
    """(class name, declared field names) of the candidate tuple."""
    module, _, class_name = tuple_class.partition(":")
    facts = project.modules.get(module)
    if facts is None:
        return class_name, set()
    declared = facts.classes.get(class_name)
    return class_name, set(declared.fields) if declared else set()


def _footprint(
    project: "ProjectContext",
    refs: List[str],
    class_name: str,
    fields: Set[str],
) -> Tuple[Set[str], Set[str]]:
    """(touched tuple fields, metric names) over a side's closure."""
    touched: Set[str] = set()
    metrics: Set[str] = set()
    for ref in refs:
        fn: "FunctionFacts" = project.functions[ref]
        touched.update(set(fn.attr_reads) & fields)
        touched.update(
            set(fn.ctor_kwargs.get(class_name, ())) & fields
        )
        metrics.update(fn.metrics)
    return touched, metrics


@register
class KernelParityRule(ProjectRule):
    """OST012: numpy/python twins must touch identical fields+metrics."""

    code = "OST012"
    name = "kernel-parity"
    summary = (
        "paired numpy/python kernel twins must touch the same "
        "candidate-tuple fields and emit the same metric names"
    )

    #: overridable in fixtures
    groups: Tuple[Dict[str, str], ...] = PARITY_GROUPS

    def check_project(
        self, project: "ProjectContext"
    ) -> Iterator[Diagnostic]:
        for group in self.groups:
            numpy_refs = _closure(project, group["numpy"])
            python_refs = _closure(project, group["python"])
            if not numpy_refs or not python_refs:
                continue  # twin not present in the analyzed tree
            class_name, fields = _tuple_fields(
                project, group["tuple_class"]
            )
            numpy_fp = _footprint(project, numpy_refs, class_name, fields)
            python_fp = _footprint(
                project, python_refs, class_name, fields
            )
            for kind, numpy_set, python_set in (
                ("tuple field", numpy_fp[0], python_fp[0]),
                ("metric", numpy_fp[1], python_fp[1]),
            ):
                yield from self._diff(
                    project, group, kind,
                    missing_on="numpy",
                    missing_ref=group["numpy"],
                    extra=sorted(python_set - numpy_set),
                )
                yield from self._diff(
                    project, group, kind,
                    missing_on="python",
                    missing_ref=group["python"],
                    extra=sorted(numpy_set - python_set),
                )

    def _diff(
        self,
        project: "ProjectContext",
        group: Dict[str, str],
        kind: str,
        missing_on: str,
        missing_ref: str,
        extra: List[str],
    ) -> Iterator[Diagnostic]:
        if not extra:
            return
        fn = project.functions[missing_ref]
        other = "python" if missing_on == "numpy" else "numpy"
        yield Diagnostic(
            path=project.path_of(missing_ref),
            line=fn.lineno,
            col=1,
            code=self.code,
            rule=self.name,
            message=(
                f"kernel parity drift in group '{group['group']}': the "
                f"{other} twin touches {kind}(s) {', '.join(extra)} that "
                f"the {missing_on} side ({fn.qualname}) never touches; "
                "the runtime crosscheck cannot see fields it is never "
                "handed"
            ),
        )
