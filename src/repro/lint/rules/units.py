"""Units-discipline rule: OST007.

The model stores bandwidth in Mbps and storage in GB (``repro.units``),
but nothing in Python stops a caller from handing Gbps to a Mbps slot --
exactly the class of bug that corrupts the paper's u_bw accounting while
every test still passes. The rule enforces the naming convention that
makes such bugs visible in review: an identifier for a bandwidth,
memory, storage, or duration *quantity* must carry a unit suffix
(``nic_bw_mbps``, ``capacity_gb``, ``deadline_s``) consistent with
``units.py``.

Scope is deliberately narrow to stay near-zero-noise: only function
parameters and class-body field annotations in ``repro.core`` /
``repro.datacenter``; only identifiers whose underscore-split tokens
include a quantity word; skipped entirely when the annotation marks the
value as a non-quantity (``bool``/``int``/``str`` flags and counters, or
a domain type such as ``Disk``). The paper's dimensionless symbols
(theta_bw, u_bw-hat and friends) are exempt by name.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Optional, Tuple

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import Rule, register
from repro.lint.astutils import all_arguments, annotation_names

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.engine import FileContext

#: Packages where the units convention is enforced.
UNIT_SCOPED_PACKAGES: Tuple[str, ...] = ("repro.core", "repro.datacenter")

#: Underscore-split tokens that mark an identifier as a physical quantity.
QUANTITY_TOKENS = frozenset(
    {
        "bw",
        "bandwidth",
        "mem",
        "memory",
        "storage",
        "deadline",
        "timeout",
        "duration",
        "lifetime",
        "interarrival",
        "elapsed",
        "runtime",
    }
)

#: Tokens that satisfy the convention (units from repro.units, plus the
#: dimensionless forms used for normalized utilisation).
UNIT_TOKENS = frozenset(
    {
        "mbps",
        "gbps",
        "kbps",
        "bps",
        "gb",
        "mb",
        "kb",
        "tb",
        "gib",
        "mib",
        "tib",
        "bytes",
        "s",
        "ms",
        "us",
        "ns",
        "sec",
        "secs",
        "seconds",
        "minutes",
        "hours",
        "frac",
        "fraction",
        "ratio",
        "pct",
        "percent",
        "units",
        "norm",
        "normalized",
    }
)

#: Paper symbols kept verbatim (Objective weights and normalizers).
EXEMPT_NAMES = frozenset(
    {
        "theta_bw",
        "theta_c",
        "ubw",
        "uc",
        "ubw_hat",
        "uc_hat",
        "ubw_bar",
        "uc_bar",
    }
)

#: Annotation identifiers that mark the value as not-a-quantity.
NON_QUANTITY_ANNOTATIONS = frozenset({"int", "bool", "str", "bytes", "object"})


def _needs_unit_suffix(name: str) -> bool:
    if name in EXEMPT_NAMES:
        return False
    tokens = [token for token in name.lower().split("_") if token]
    if not any(token in QUANTITY_TOKENS for token in tokens):
        return False
    return not any(token in UNIT_TOKENS for token in tokens)


def _annotation_exempts(annotation: Optional[ast.AST]) -> bool:
    """True when the annotation marks a non-quantity value.

    Plain ``float`` (or a missing annotation) is the quantity case the
    rule targets; ``bool``/``int``/``str`` flags and any capitalised
    domain type (``Disk``, ``Optional[...]`` wrappers included) are not
    raw magnitudes, so they are exempt.
    """
    if annotation is None:
        return False
    names = annotation_names(annotation)
    if not names:
        return False
    return bool(names & NON_QUANTITY_ANNOTATIONS) or any(
        name[:1].isupper() for name in names
    )


@register
class UnitSuffixRule(Rule):
    """OST007: quantity identifiers must carry a unit suffix."""

    code = "OST007"
    name = "unit-suffix"
    summary = (
        "bandwidth/memory/storage/duration identifiers in core and "
        "datacenter must carry a unit suffix (_mbps, _gb, _s, ...)"
    )

    def check(self, ctx: "FileContext") -> Iterator[Diagnostic]:
        if not ctx.in_package(*UNIT_SCOPED_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for arg in all_arguments(node):
                    if _annotation_exempts(arg.annotation):
                        continue
                    if _needs_unit_suffix(arg.arg):
                        yield self._finding(ctx, arg, arg.arg, "parameter")
            elif isinstance(node, ast.ClassDef):
                for stmt in node.body:
                    if not isinstance(stmt, ast.AnnAssign):
                        continue
                    if not isinstance(stmt.target, ast.Name):
                        continue
                    if _annotation_exempts(stmt.annotation):
                        continue
                    if _needs_unit_suffix(stmt.target.id):
                        yield self._finding(
                            ctx, stmt, stmt.target.id, "field"
                        )

    def _finding(
        self, ctx: "FileContext", node: ast.AST, name: str, kind: str
    ) -> Diagnostic:
        return self.diagnostic(
            ctx,
            node.lineno,
            node.col_offset + 1,
            f"{kind} '{name}' names a physical quantity without a unit "
            "suffix; use the units.py conventions (_mbps, _gb, _s, ...)",
        )
