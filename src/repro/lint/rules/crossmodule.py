"""Cross-module confinement rule: OST011.

OST005 pins *direct* writes of the host free-resource arrays to the
resource-owner modules. That is trivially laundered: a helper in the
owner's module (or anywhere) performs the write, and a foreign module
calls the helper. OST011 lifts the single-writer rule to the call
graph: :meth:`repro.lint.project.ProjectContext.writers` computes the
least fixpoint of "writes the arrays directly or calls an unsanctioned
writer", where *sanctioned* means a public function of a resource-owner
module -- the supported mutation API. A cross-module call whose every
candidate resolves to an unsanctioned writer is the finding; direct
writes stay OST005's report so the two rules never double-fire.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import ProjectRule, register

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.project import ProjectContext


@register
class CrossModuleWriteRule(ProjectRule):
    """OST011: no laundering resource writes through foreign helpers."""

    code = "OST011"
    name = "cross-module-write"
    summary = (
        "resource-array writes may not be laundered through helpers in "
        "another module; call the owners' public API instead"
    )

    def check_project(
        self, project: "ProjectContext"
    ) -> Iterator[Diagnostic]:
        writers = project.writers()
        for ref in sorted(project.functions):
            fn = project.functions[ref]
            for site in fn.calls:
                candidates = project.resolve(site)
                if not candidates:
                    continue
                if not all(
                    c in writers
                    and not project.is_sanctioned_writer(c)
                    and project.functions[c].module != fn.module
                    for c in candidates
                ):
                    continue
                target = project.functions[candidates[0]]
                yield Diagnostic(
                    path=project.path_of(ref),
                    line=site.line,
                    col=site.col,
                    code=self.code,
                    rule=self.name,
                    message=(
                        f"call to '{site.name}' reaches a resource-array "
                        f"write in {target.module} that is not part of "
                        "the owners' public API; route the mutation "
                        "through datacenter/state.py, "
                        "datacenter/resources.py, or core/placement.py"
                    ),
                )
