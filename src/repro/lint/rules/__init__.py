"""Built-in ostrolint rules.

Importing this package registers every rule with the registry; the
registry defers the import until the first ``all_rules()`` call to
avoid an import cycle with the engine.
"""

from repro.lint.rules import (  # noqa: F401  (imports register the rules)
    caches,
    confinement,
    crossmodule,
    determinism,
    hygiene,
    parity,
    robustness,
    taint,
    transactions,
    units,
)

__all__ = [
    "caches",
    "confinement",
    "crossmodule",
    "determinism",
    "hygiene",
    "parity",
    "robustness",
    "taint",
    "transactions",
    "units",
]
