"""Shared AST helpers for ostrolint rules."""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

#: Method names that mutate their receiver in place. Used by the cache
#: and confinement rules to catch ``obj.attr.append(...)``-style writes.
MUTATOR_METHODS = frozenset(
    {
        "add",
        "append",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "reverse",
        "setdefault",
        "sort",
        "update",
        # domain mutators on PartialPlacement / DataCenterState / topology
        "assign",
        "unassign",
        "place_vm",
        "reserve_path",
        "release_path",
        "apply",
        "restore",
        "add_vm",
        "add_volume",
        "connect",
        "add_zone",
        "remove_node",
        "_invalidate_caches",
    }
)

_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


def walk_scoped(tree: ast.AST) -> Iterator[Tuple[ast.AST, Tuple[str, ...]]]:
    """Yield ``(node, scope)`` pairs, depth-first.

    ``scope`` is the tuple of enclosing class/function names -- empty at
    module level. A def/class node itself carries its *enclosing* scope;
    its body carries the extended one. ``".".join(scope)`` is the
    qualname used by the timing allowlist (``"BAStar._run"``).
    """
    stack: List[str] = []

    def visit(node: ast.AST) -> Iterator[Tuple[ast.AST, Tuple[str, ...]]]:
        yield node, tuple(stack)
        is_scope = isinstance(node, _SCOPE_NODES)
        if is_scope:
            stack.append(node.name)
        for child in ast.iter_child_nodes(node):
            yield from visit(child)
        if is_scope:
            stack.pop()

    return visit(tree)


def root_name(node: ast.AST) -> Optional[str]:
    """The base ``Name`` id of an attribute/subscript chain, else None.

    ``partial.assigned[vm].path`` -> ``"partial"``.
    """
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def annotation_names(annotation: Optional[ast.AST]) -> Set[str]:
    """All ``Name``/``Attribute`` identifiers appearing in an annotation.

    ``Optional[List[Disk]]`` -> ``{"Optional", "List", "Disk"}``. String
    (forward-reference) annotations contribute the literal text as one
    entry so type-name matching still works.
    """
    if annotation is None:
        return set()
    names: Set[str] = set()
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            names.add(node.value)
    return names


def all_arguments(func: ast.AST) -> List[ast.arg]:
    """Every parameter of a function def, in declaration order."""
    args = func.args
    params = list(args.posonlyargs) + list(args.args)
    if args.vararg is not None:
        params.append(args.vararg)
    params.extend(args.kwonlyargs)
    if args.kwarg is not None:
        params.append(args.kwarg)
    return params


def assignment_targets(node: ast.AST) -> List[ast.AST]:
    """Store-context target expressions of an assignment-like statement.

    Tuple/list destructuring is flattened, so ``a.x, b.y = ...`` yields
    both attribute targets.
    """
    if isinstance(node, ast.Assign):
        raw = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        raw = [node.target]
    elif isinstance(node, ast.Delete):
        raw = list(node.targets)
    elif isinstance(node, (ast.For, ast.AsyncFor)):
        raw = [node.target]
    else:
        return []
    flat: List[ast.AST] = []
    while raw:
        target = raw.pop()
        if isinstance(target, (ast.Tuple, ast.List)):
            raw.extend(target.elts)
        elif isinstance(target, ast.Starred):
            raw.append(target.value)
        else:
            flat.append(target)
    return flat
