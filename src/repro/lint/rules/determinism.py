"""Determinism rules: OST001 unseeded RNG, OST002 wall-clock reads.

Every placement run must be reproducible from an explicit seed: the
paper's figure comparisons, the replay harness, and the bench-smoke
fingerprint gate all diff placements across runs. A module-level
``random.*`` call draws from interpreter-global state and silently breaks
that; wall-clock reads make search decisions depend on machine speed.
The only legitimate clock sites are the explicitly allowlisted timing
probes (elapsed-time bookkeeping and the DBA* deadline logic, which the
paper defines in terms of wall time).
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, Iterator, Tuple

from repro.lint.diagnostics import Diagnostic
from repro.lint.registry import Rule, register
from repro.lint.astutils import walk_scoped

if TYPE_CHECKING:  # pragma: no cover
    from repro.lint.engine import FileContext

#: Packages whose behaviour must be reproducible from a seed.
DETERMINISTIC_PACKAGES: Tuple[str, ...] = ("repro.core", "repro.datacenter")

#: ``random`` attributes that are fine: RNG constructors take an explicit
#: seed, so they do not touch interpreter-global state.
SEEDED_RANDOM_FACTORIES = frozenset({"Random", "SystemRandom"})

#: ``time`` module functions that read a clock.
CLOCK_FUNCTIONS = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "clock_gettime",
        "clock_gettime_ns",
    }
)

#: ``datetime``/``date`` constructors that read a clock.
DATETIME_CLOCK_METHODS = frozenset({"now", "utcnow", "today"})

#: The documented timing sites: module -> qualnames allowed to read the
#: clock (nested scopes inside an allowed qualname are allowed too).
#: Kept deliberately small; additions belong in docs/STATIC_ANALYSIS.md.
TIMING_ALLOWLIST: Dict[str, FrozenSet[str]] = {
    "repro.core.base": frozenset({"PlacementAlgorithm.place"}),
    "repro.core.greedy": frozenset({"run_greedy_from.ranked_candidates"}),
    "repro.core.astar": frozenset({"BAStar._run"}),
    "repro.core.deadline": frozenset(
        {
            "DBAStar._before_search",
            "DBAStar._out_of_time",
            "DBAStar._allow_bound_rerun",
            "DBAStar._after_expansion",
        }
    ),
}


def _is_allowed_timing_site(module: str, qualname: str) -> bool:
    allowed = TIMING_ALLOWLIST.get(module)
    if not allowed:
        return False
    return any(
        qualname == entry or qualname.startswith(entry + ".")
        for entry in allowed
    )


@register
class UnseededRandomRule(Rule):
    """OST001: no module-level ``random.*`` calls in deterministic code."""

    code = "OST001"
    name = "unseeded-random"
    summary = (
        "repro.core/repro.datacenter must draw randomness from an "
        "explicitly seeded random.Random, never module-level random.*"
    )

    def check(self, ctx: "FileContext") -> Iterator[Diagnostic]:
        if not ctx.in_package(*DETERMINISTIC_PACKAGES):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "random"
                    and func.attr not in SEEDED_RANDOM_FACTORIES
                ):
                    yield self.diagnostic(
                        ctx,
                        node.lineno,
                        node.col_offset + 1,
                        f"call to module-level random.{func.attr}() draws "
                        "from global RNG state; use an explicitly seeded "
                        "random.Random instance",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name not in SEEDED_RANDOM_FACTORIES:
                        yield self.diagnostic(
                            ctx,
                            node.lineno,
                            node.col_offset + 1,
                            f"importing random.{alias.name} invites unseeded "
                            "global-RNG use; import random.Random and seed "
                            "it explicitly",
                        )


@register
class WallClockRule(Rule):
    """OST002: no clock reads outside the documented timing allowlist."""

    code = "OST002"
    name = "wall-clock"
    summary = (
        "repro.core/repro.datacenter may only read clocks at the "
        "documented timing sites (base/greedy/astar/deadline allowlist)"
    )

    def check(self, ctx: "FileContext") -> Iterable[Diagnostic]:
        if not ctx.in_package(*DETERMINISTIC_PACKAGES):
            return
        module = ctx.module or ""
        for node, scope in walk_scoped(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            clock = self._clock_call(node)
            if clock is None:
                continue
            if _is_allowed_timing_site(module, ".".join(scope)):
                continue
            yield self.diagnostic(
                ctx,
                node.lineno,
                node.col_offset + 1,
                f"wall-clock read {clock}() outside the timing allowlist "
                "makes search behaviour machine-dependent; thread elapsed "
                "time in as a parameter or extend the documented allowlist",
            )

    @staticmethod
    def _clock_call(node: ast.Call) -> "str | None":
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        if (
            isinstance(func.value, ast.Name)
            and func.value.id == "time"
            and func.attr in CLOCK_FUNCTIONS
        ):
            return f"time.{func.attr}"
        if func.attr in DATETIME_CLOCK_METHODS:
            base = func.value
            while isinstance(base, ast.Attribute):
                base = base.value
            if isinstance(base, ast.Name) and base.id in {
                "datetime",
                "date",
            }:
                return f"{base.id}.{func.attr}"
        return None
