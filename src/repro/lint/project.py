"""Project-wide analysis: symbol table, call resolution, fixpoints.

A :class:`ProjectContext` is built once per lint run from every file's
:class:`~repro.lint.symbols.ModuleFacts` (freshly extracted or loaded
from the incremental cache -- the AST is never needed here). It exposes:

* call resolution -- a call site maps to the set of candidate funcrefs
  (``"module:qualname"``). Same-module and ``self`` calls were pinned at
  extraction; import-resolved dotted names are matched against the
  module tree; bare method names fall back to a project-wide name index,
  and stay unresolved when too ambiguous. Rules treat multi-candidate
  sites conservatively: a property must hold for *every* candidate
  before it propagates, so ambiguity can cost recall but not precision.
* ``tainted_returns`` -- the least fixpoint of "returns a
  non-deterministic value" over the call graph (OST010).
* ``sink_params`` -- per function, the parameter indices that flow
  (transitively) into a determinism sink (OST010).
* ``writers`` -- the least fixpoint of OST005's resource-writer relation
  lifted through helpers: a function is a writer when it writes the
  resource arrays directly or calls an *unsanctioned* writer. Sanctioned
  writers (public functions of the resource-owner modules) terminate the
  propagation: calling the public API is the correct thing to do
  (OST011).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.lint.rules.confinement import RESOURCE_WRITER_MODULES
from repro.lint.symbols import (
    CallSite,
    FunctionFacts,
    ModuleFacts,
    TaintValue,
)

#: A bare method name matching more callables than this is treated as
#: unresolvable (generic names like ``get``/``run`` would otherwise
#: smear facts across unrelated classes).
MAX_NAME_CANDIDATES = 4


class ProjectContext:
    """The cross-file view the project rules run against."""

    def __init__(self, modules: Iterable[ModuleFacts]):
        self.modules: Dict[str, ModuleFacts] = {}
        self.functions: Dict[str, FunctionFacts] = {}
        self._by_name: Dict[str, List[str]] = {}
        self._home: Dict[str, ModuleFacts] = {}
        for facts in modules:
            key = facts.module or facts.path
            self.modules[key] = facts
            for fn in facts.functions.values():
                self.functions[fn.funcref] = fn
                self._home[fn.funcref] = facts
                last = fn.qualname.split(".")[-1]
                self._by_name.setdefault(last, []).append(fn.funcref)
        for refs in self._by_name.values():
            refs.sort()
        self._module_names = sorted(self.modules, key=len, reverse=True)
        self._tainted_returns: Optional[FrozenSet[str]] = None
        self._tainted_elements: Optional[
            FrozenSet[Tuple[str, int]]
        ] = None
        self._sink_params: Optional[Dict[str, FrozenSet[int]]] = None
        self._writers: Optional[FrozenSet[str]] = None

    def path_of(self, ref: str) -> str:
        """Report path of the file defining a funcref."""
        return self._home[ref].path

    # -- call resolution ------------------------------------------------

    def resolve(self, site: CallSite) -> List[str]:
        """Candidate funcrefs of a call site (empty when unknown)."""
        if site.resolved is not None:
            return [site.resolved] if site.resolved in self.functions else []
        name = site.name
        if "." in name:
            # import-resolved dotted path: longest module prefix wins
            for module in self._module_names:
                prefix = module + "."
                if name.startswith(prefix):
                    qualname = name[len(prefix):]
                    fn = self.modules[module].functions.get(qualname)
                    if fn is not None:
                        return [fn.funcref]
                    return []
            # a dotted name outside the analyzed tree (time.time, np.zeros)
            if site.attr is None or name.split(".", 1)[0] != "self":
                return []
        last = site.attr if site.attr is not None else name
        candidates = self._by_name.get(last, [])
        if 0 < len(candidates) <= MAX_NAME_CANDIDATES:
            return list(candidates)
        return []

    def param_index(
        self, callee: FunctionFacts, site: CallSite, arg_key: str
    ) -> Optional[int]:
        """Map a call-site argument key to the callee's parameter index.

        Positional keys shift by one for attribute (bound-method) calls
        into a function whose first parameter is ``self``/``cls``.
        """
        if arg_key.isdigit():
            index = int(arg_key)
            if (
                site.kind == "attr"
                and callee.params
                and callee.params[0] in ("self", "cls")
            ):
                index += 1
            return index if index < len(callee.params) else None
        try:
            return callee.params.index(arg_key)
        except ValueError:
            return None

    # -- OST010: determinism taint --------------------------------------

    def tainted_returns(self) -> FrozenSet[str]:
        """Funcrefs whose return value is non-deterministic.

        Computed jointly with the per-*element* relation for functions
        whose returns are tuple literals (``return result, wall``), so a
        caller destructuring the result only inherits the taint of the
        element it keeps.
        """
        if self._tainted_returns is not None:
            return self._tainted_returns
        tainted: Set[str] = set()
        tainted_elems: Set[Tuple[str, int]] = set()
        changed = True
        while changed:
            changed = False
            for ref, fn in self.functions.items():
                if fn.ret_elements is not None:
                    for element, sub in enumerate(fn.ret_elements):
                        key = (ref, element)
                        if key in tainted_elems:
                            continue
                        if self._value_tainted(
                            fn, sub, tainted, tainted_elems
                        ):
                            tainted_elems.add(key)
                            changed = True
                if ref in tainted:
                    continue
                if self._value_tainted(
                    fn, fn.ret, tainted, tainted_elems
                ):
                    tainted.add(ref)
                    changed = True
        self._tainted_returns = frozenset(tainted)
        self._tainted_elements = frozenset(tainted_elems)
        return self._tainted_returns

    def tainted_elements(self) -> FrozenSet[Tuple[str, int]]:
        """(funcref, element) pairs with a non-deterministic element."""
        if self._tainted_elements is None:
            self.tainted_returns()
        return self._tainted_elements

    def _value_tainted(
        self,
        fn: FunctionFacts,
        value: TaintValue,
        tainted: Set[str],
        tainted_elems: Set[Tuple[str, int]],
    ) -> bool:
        if value.sources:
            return True
        for call_index in value.calls:
            site = fn.calls[call_index]
            candidates = self.resolve(site)
            if candidates and all(c in tainted for c in candidates):
                return True
        for call_index, element in value.elems:
            site = fn.calls[call_index]
            candidates = self.resolve(site)
            if candidates and all(
                self._elem_dep_tainted(c, element, tainted, tainted_elems)
                for c in candidates
            ):
                return True
        return False

    def _elem_dep_tainted(
        self,
        ref: str,
        element: int,
        tainted: Set[str],
        tainted_elems: Set[Tuple[str, int]],
    ) -> bool:
        callee = self.functions[ref]
        relts = callee.ret_elements
        if relts is None or element >= len(relts):
            # no element summary: degrade to the whole-return relation
            return ref in tainted
        return (ref, element) in tainted_elems

    def taint_sources(
        self,
        fn: FunctionFacts,
        taint: TaintValue,
        _seen: Optional[Set[Tuple]] = None,
    ) -> List[str]:
        """Resolve a symbolic taint to concrete source descriptions.

        Returns the non-deterministic sources reaching the value --
        directly, or through calls whose return is tainted (including
        param-to-return flows evaluated at the call site). Parameter
        taint is *not* a source here; it feeds :meth:`sink_params`.
        """
        tainted_rets = self.tainted_returns()
        seen = _seen if _seen is not None else set()
        sources: List[str] = list(taint.sources)
        for call_index in taint.calls:
            key = (fn.funcref, call_index)
            if key in seen:
                continue
            seen.add(key)
            site = fn.calls[call_index]
            candidates = self.resolve(site)
            if not candidates:
                continue
            per_candidate = [
                self._whole_call_entry(ref, site, fn, seen, tainted_rets)
                for ref in candidates
            ]
            # conservative: every candidate must contribute taint
            if per_candidate and all(per_candidate):
                for entry in per_candidate:
                    sources.extend(entry)
        for call_index, element in taint.elems:
            key = (fn.funcref, call_index, element)
            if key in seen:
                continue
            seen.add(key)
            site = fn.calls[call_index]
            candidates = self.resolve(site)
            if not candidates:
                continue
            per_candidate = []
            for ref in candidates:
                callee = self.functions[ref]
                relts = callee.ret_elements
                if relts is not None and element < len(relts):
                    sub = relts[element]
                    entry = list(sub.sources)
                    inner = TaintValue(
                        calls=sub.calls, elems=sub.elems
                    )
                    if not inner.is_empty():
                        entry.extend(
                            self.taint_sources(callee, inner, seen)
                        )
                    for pindex in sub.params:
                        for arg_key, arg_taint in site.arg_taints.items():
                            mapped = self.param_index(
                                callee, site, arg_key
                            )
                            if mapped == pindex:
                                entry.extend(
                                    self.taint_sources(
                                        fn, arg_taint, seen
                                    )
                                )
                    per_candidate.append(entry)
                else:
                    per_candidate.append(
                        self._whole_call_entry(
                            ref, site, fn, seen, tainted_rets
                        )
                    )
            if per_candidate and all(per_candidate):
                for entry in per_candidate:
                    sources.extend(entry)
        unique: List[str] = []
        for source in sources:
            if source not in unique:
                unique.append(source)
        return unique

    def _whole_call_entry(
        self,
        ref: str,
        site: CallSite,
        fn: FunctionFacts,
        seen: Set[Tuple],
        tainted_rets: FrozenSet[str],
    ) -> List[str]:
        """Sources one candidate callee contributes to a call result."""
        callee = self.functions[ref]
        if ref in tainted_rets:
            return self._ret_sources(callee, set()) or [
                f"{ref} (tainted return)"
            ]
        through: List[str] = []
        for pindex in callee.ret.params:
            for arg_key, arg_taint in site.arg_taints.items():
                mapped = self.param_index(callee, site, arg_key)
                if mapped == pindex:
                    through.extend(
                        self.taint_sources(fn, arg_taint, seen)
                    )
        return through

    def _ret_sources(
        self, fn: FunctionFacts, seen: Set[Tuple[str, int]]
    ) -> List[str]:
        """Concrete sources behind a tainted return, for messages."""
        return self.taint_sources(fn, fn.ret, seen)

    def sink_params(self) -> Dict[str, FrozenSet[int]]:
        """Per funcref: parameter indices flowing into determinism sinks."""
        if self._sink_params is not None:
            return self._sink_params
        flowing: Dict[str, Set[int]] = {
            ref: set() for ref in self.functions
        }
        changed = True
        while changed:
            changed = False
            for ref, fn in self.functions.items():
                current = flowing[ref]
                before = len(current)
                for sink in fn.sinks:
                    current.update(sink.taint.params)
                for site in fn.calls:
                    candidates = self.resolve(site)
                    if not candidates:
                        continue
                    for arg_key, arg_taint in site.arg_taints.items():
                        if not arg_taint.params:
                            continue
                        if all(
                            self._arg_reaches_sink(
                                flowing, candidate, site, arg_key
                            )
                            for candidate in candidates
                        ):
                            current.update(arg_taint.params)
                if len(current) != before:
                    changed = True
        self._sink_params = {
            ref: frozenset(indices) for ref, indices in flowing.items()
        }
        return self._sink_params

    def _arg_reaches_sink(
        self,
        flowing: Dict[str, Set[int]],
        candidate: str,
        site: CallSite,
        arg_key: str,
    ) -> bool:
        callee = self.functions[candidate]
        mapped = self.param_index(callee, site, arg_key)
        return mapped is not None and mapped in flowing[candidate]

    # -- OST011: resource-writer propagation ----------------------------

    def is_sanctioned_writer(self, ref: str) -> bool:
        """Public functions of the resource-owner modules: the correct
        API for mutating the resource arrays, so calls to them are fine
        from anywhere and propagation stops there."""
        fn = self.functions[ref]
        if fn.module not in RESOURCE_WRITER_MODULES:
            return False
        return not fn.qualname.split(".")[-1].startswith("_")

    def writers(self) -> FrozenSet[str]:
        """Funcrefs that (transitively) write the resource arrays."""
        if self._writers is not None:
            return self._writers
        writers: Set[str] = {
            ref for ref, fn in self.functions.items() if fn.writes
        }
        changed = True
        while changed:
            changed = False
            for ref, fn in self.functions.items():
                if ref in writers:
                    continue
                for site in fn.calls:
                    candidates = self.resolve(site)
                    if not candidates:
                        continue
                    if all(
                        c in writers and not self.is_sanctioned_writer(c)
                        for c in candidates
                    ):
                        writers.add(ref)
                        changed = True
                        break
        self._writers = frozenset(writers)
        return self._writers
