"""Finding baseline: accepted-debt ledger for ``repro lint``.

A baseline is a checked-in JSON file listing findings the team has
explicitly accepted; ``repro lint --baseline FILE`` subtracts them from
the report so CI only fails on *new* findings, and ``--update-baseline``
rewrites the file from the current tree. Entries are identified by
``(path, code, message)`` -- deliberately **line-number free**, so
unrelated edits above a baselined finding do not resurrect it.

The intended steady state of this repo's baseline is *empty*: every
real finding gets fixed, and the enforce mode exists so a regression
cannot land quietly. Matching is multiset-aware -- two identical
findings need two baseline entries -- and stale entries (baselined
findings that no longer occur) are reported by :func:`compare` so the
ledger cannot rot.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.lint.diagnostics import Diagnostic

#: Layout version of the baseline payload.
BASELINE_SCHEMA = 1

#: Default baseline location, relative to the repo root.
DEFAULT_BASELINE_PATH = ".ostrolint-baseline.json"

#: A baseline entry: (path, code, message).
Entry = Tuple[str, str, str]


def entry_of(diagnostic: Diagnostic) -> Entry:
    return (diagnostic.path, diagnostic.code, diagnostic.message)


def load_baseline(path: Path) -> List[Entry]:
    """Read a baseline file; raises ValueError on malformed payloads."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    if (
        not isinstance(payload, dict)
        or payload.get("schema") != BASELINE_SCHEMA
        or not isinstance(payload.get("entries"), list)
    ):
        raise ValueError(f"not an ostrolint baseline: {path}")
    entries: List[Entry] = []
    for raw in payload["entries"]:
        entries.append((raw["path"], raw["code"], raw["message"]))
    return entries


def write_baseline(
    path: Path, diagnostics: Sequence[Diagnostic]
) -> None:
    """Write the current findings as the new baseline (sorted, stable)."""
    entries = sorted(entry_of(d) for d in diagnostics)
    payload = {
        "schema": BASELINE_SCHEMA,
        "entries": [
            {"path": p, "code": c, "message": m} for p, c, m in entries
        ],
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def compare(
    diagnostics: Sequence[Diagnostic], entries: Sequence[Entry]
) -> Tuple[List[Diagnostic], List[Entry]]:
    """Split findings against a baseline.

    Returns ``(new, stale)``: findings not covered by the baseline, and
    baseline entries no finding matched (candidates for removal).
    Matching is by multiset, so N identical findings consume N entries.
    """
    budget: Dict[Entry, int] = {}
    for entry in entries:
        budget[entry] = budget.get(entry, 0) + 1
    new: List[Diagnostic] = []
    for diag in sorted(diagnostics, key=Diagnostic.sort_key):
        key = entry_of(diag)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
        else:
            new.append(diag)
    stale: List[Entry] = []
    for entry in sorted(budget):
        stale.extend([entry] * budget[entry])
    return new, stale
