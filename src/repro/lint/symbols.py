"""Per-file fact extraction for the project-wide lint analysis.

One parse of a file yields a :class:`ModuleFacts`: every function and
method (at any nesting depth) with its call sites, determinism-taint
summary, sink uses, resource writes, metric-name literals, constructor
kwargs, and attribute reads, plus the module's import map and class
declarations. The facts are plain-data (JSON round-trippable) so the
incremental cache can persist them per content hash; everything
cross-file -- call resolution, taint fixpoints, writer propagation,
parity comparison -- happens later in :mod:`repro.lint.project` from
facts alone, never from the AST.

Taint model
-----------

A value is *taint-local* when it (transitively, through local
assignments) contains a call to a non-deterministic source: ``time.*``
clocks, ``datetime``/``date`` constructors that read the clock,
module-level ``random.*``, ``uuid.uuid1/uuid4``, ``os.urandom``,
``secrets.*``. Taint is tracked flow-sensitively inside a function with
the CFG's reaching definitions; at function boundaries the summary keeps
symbolic dependencies -- call sites whose *return value* feeds the
expression and parameter indices that feed it -- which the project pass
resolves interprocedurally. Taint deliberately does **not** cross object
construction (``MeasurementRow(runtime_s=...)`` does not taint the row:
``rows_fingerprint`` strips the volatile field before hashing) and does
not track control dependence (a branch on the clock is OST002's
business, not OST010's).

Sinks are the fingerprint functions (:data:`SINK_FUNCTIONS`) and
telemetry event payload values, except the documented volatile keys
(:data:`VOLATILE_EVENT_KEYS`) that the determinism gates already exclude
from comparison.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.astutils import (
    COMPOUND_NODES,
    FUNCTION_NODES,
    MUTATOR_METHODS,
    assignment_targets,
    dotted_name,
    own_expressions,
)
from repro.lint.cfg import CFG
from repro.lint.rules.confinement import RESOURCE_FIELDS
from repro.lint.rules.determinism import (
    CLOCK_FUNCTIONS,
    DATETIME_CLOCK_METHODS,
    SEEDED_RANDOM_FACTORIES,
)

#: Functions whose arguments are determinism sinks: their output is
#: diffed bit-for-bit across runs by the bench/parallel gates.
SINK_FUNCTIONS = frozenset({"rows_fingerprint", "placement_fingerprint"})

#: Event payload keys documented as volatile (wall-clock durations and
#: timestamps); the replay/fingerprint tooling excludes them, so tainted
#: values may flow into them. Everything else in an event payload is
#: part of the decision trajectory.
VOLATILE_EVENT_KEYS = frozenset(
    {
        "elapsed_s",
        "remaining_s",
        "duration_s",
        "runtime_s",
        "wall_s",
        "waited_s",
        "latency_s",
        "seconds",
        "ts",
    }
)

#: Event *types* whose entire payload is volatile by design: diagnostics
#: of the wall-clock-adaptive DBA* deadline controller (the paper's
#: deadline-based pruning adapts to real elapsed time, so every value in
#: a ``deadline_tick`` -- pruning range, affordable paths -- is
#: machine-dependent). The replay/fingerprint tooling excludes these
#: events wholesale; OST010 must not demand determinism of them.
VOLATILE_EVENT_TYPES = frozenset({"deadline_tick"})

#: Recorder methods whose first string argument is a metric/event name.
METRIC_CALL_ATTRS = frozenset({"inc", "observe", "event", "set_gauge"})

_UUID_SOURCES = frozenset({"uuid.uuid1", "uuid.uuid4"})


def source_name(full: str) -> Optional[str]:
    """The source description when ``full`` (a resolved dotted call
    target) is a non-deterministic source, else None."""
    parts = full.split(".")
    last = parts[-1]
    if len(parts) == 2 and parts[0] == "time" and last in CLOCK_FUNCTIONS:
        return full
    if last in DATETIME_CLOCK_METHODS and (
        "datetime" in parts[:-1] or "date" in parts[:-1]
    ):
        return full
    if (
        len(parts) == 2
        and parts[0] == "random"
        and last not in SEEDED_RANDOM_FACTORIES
    ):
        return full
    if full in _UUID_SOURCES or full == "os.urandom":
        return full
    if parts[0] == "secrets" and len(parts) > 1:
        return full
    return None


# ----------------------------------------------------------------------
# plain-data facts
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class TaintValue:
    """Symbolic taint of one expression.

    Attributes:
        sources: non-deterministic sources reached locally.
        calls: indices (into the function's call-site list) whose return
            value feeds the expression.
        params: indices of the enclosing function's parameters feeding it.
        elems: ``(call index, tuple element)`` pairs -- the expression
            depends on one *element* of a call's returned tuple
            (``result, wall = _run_once(...)``). Element deps resolve
            against the callee's ``ret_elements``, so a timing wrapper
            returning ``(value, wall)`` does not taint ``value``.
    """

    sources: Tuple[str, ...] = ()
    calls: Tuple[int, ...] = ()
    params: Tuple[int, ...] = ()
    elems: Tuple[Tuple[int, int], ...] = ()

    def is_empty(self) -> bool:
        return not (self.sources or self.calls or self.params or self.elems)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sources": list(self.sources),
            "calls": list(self.calls),
            "params": list(self.params),
            "elems": [list(pair) for pair in self.elems],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TaintValue":
        return cls(
            sources=tuple(data["sources"]),
            calls=tuple(data["calls"]),
            params=tuple(data["params"]),
            elems=tuple(
                (pair[0], pair[1]) for pair in data.get("elems", ())
            ),
        )


EMPTY_TAINT = TaintValue()


def _union_taints(values: Sequence[TaintValue]) -> TaintValue:
    sources: Set[str] = set()
    calls: Set[int] = set()
    params: Set[int] = set()
    elems: Set[Tuple[int, int]] = set()
    for value in values:
        sources.update(value.sources)
        calls.update(value.calls)
        params.update(value.params)
        elems.update(value.elems)
    if not (sources or calls or params or elems):
        return EMPTY_TAINT
    return TaintValue(
        sources=tuple(sorted(sources)),
        calls=tuple(sorted(calls)),
        params=tuple(sorted(params)),
        elems=tuple(sorted(elems)),
    )


@dataclass
class CallSite:
    """One call expression inside a function.

    ``name`` is the call target after import-map resolution: a full
    dotted path (``"time.perf_counter"``, ``"repro.sim.metrics.
    rows_fingerprint"``) when the receiver chain is static, else the
    bare attribute/function name. ``resolved`` is a ``"module:qualname"``
    funcref when the target was pinned at extraction time (same-module
    functions, ``self`` methods); otherwise the project pass resolves by
    name. ``arg_taints`` maps positional index (as str) or keyword name
    to the non-empty taint of that argument.
    """

    index: int
    line: int
    col: int
    kind: str  # "name" | "attr"
    name: str
    attr: Optional[str]
    resolved: Optional[str]
    arg_taints: Dict[str, TaintValue] = field(default_factory=dict)
    keywords: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "line": self.line,
            "col": self.col,
            "kind": self.kind,
            "name": self.name,
            "attr": self.attr,
            "resolved": self.resolved,
            "arg_taints": {
                key: taint.to_dict()
                for key, taint in sorted(self.arg_taints.items())
            },
            "keywords": list(self.keywords),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CallSite":
        return cls(
            index=data["index"],
            line=data["line"],
            col=data["col"],
            kind=data["kind"],
            name=data["name"],
            attr=data["attr"],
            resolved=data["resolved"],
            arg_taints={
                key: TaintValue.from_dict(value)
                for key, value in data["arg_taints"].items()
            },
            keywords=tuple(data["keywords"]),
        )


@dataclass
class SinkUse:
    """A value flowing into a determinism sink inside one function."""

    sink: str  # "rows_fingerprint" | "event:<key>" | ...
    line: int
    col: int
    taint: TaintValue

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sink": self.sink,
            "line": self.line,
            "col": self.col,
            "taint": self.taint.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SinkUse":
        return cls(
            sink=data["sink"],
            line=data["line"],
            col=data["col"],
            taint=TaintValue.from_dict(data["taint"]),
        )


@dataclass
class FunctionFacts:
    """Flow summary of one function or method."""

    qualname: str
    module: str
    lineno: int
    params: Tuple[str, ...]
    calls: List[CallSite] = field(default_factory=list)
    ret: TaintValue = EMPTY_TAINT
    #: Per-element return taints when every value-bearing ``return`` is a
    #: tuple literal of one arity; None otherwise. Lets callers that
    #: destructure the result keep element precision.
    ret_elements: Optional[Tuple[TaintValue, ...]] = None
    sinks: List[SinkUse] = field(default_factory=list)
    writes: List[Tuple[str, int, int]] = field(default_factory=list)
    metrics: Tuple[str, ...] = ()
    ctor_kwargs: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    attr_reads: Tuple[str, ...] = ()

    @property
    def funcref(self) -> str:
        return f"{self.module}:{self.qualname}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "module": self.module,
            "lineno": self.lineno,
            "params": list(self.params),
            "calls": [c.to_dict() for c in self.calls],
            "ret": self.ret.to_dict(),
            "ret_elements": (
                [t.to_dict() for t in self.ret_elements]
                if self.ret_elements is not None
                else None
            ),
            "sinks": [s.to_dict() for s in self.sinks],
            "writes": [list(w) for w in self.writes],
            "metrics": list(self.metrics),
            "ctor_kwargs": {
                name: list(kwargs)
                for name, kwargs in sorted(self.ctor_kwargs.items())
            },
            "attr_reads": list(self.attr_reads),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FunctionFacts":
        return cls(
            qualname=data["qualname"],
            module=data["module"],
            lineno=data["lineno"],
            params=tuple(data["params"]),
            calls=[CallSite.from_dict(c) for c in data["calls"]],
            ret=TaintValue.from_dict(data["ret"]),
            ret_elements=(
                tuple(
                    TaintValue.from_dict(t)
                    for t in data["ret_elements"]
                )
                if data.get("ret_elements") is not None
                else None
            ),
            sinks=[SinkUse.from_dict(s) for s in data["sinks"]],
            writes=[
                (w[0], w[1], w[2]) for w in data["writes"]
            ],
            metrics=tuple(data["metrics"]),
            ctor_kwargs={
                name: tuple(kwargs)
                for name, kwargs in data["ctor_kwargs"].items()
            },
            attr_reads=tuple(data["attr_reads"]),
        )


@dataclass
class ClassFacts:
    """Declared fields (annotated class-body names) and method names."""

    qualname: str
    fields: Tuple[str, ...] = ()
    methods: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "fields": list(self.fields),
            "methods": list(self.methods),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClassFacts":
        return cls(
            qualname=data["qualname"],
            fields=tuple(data["fields"]),
            methods=tuple(data["methods"]),
        )


@dataclass
class ModuleFacts:
    """Everything the project pass needs to know about one file."""

    module: str
    path: str
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionFacts] = field(default_factory=dict)
    classes: Dict[str, ClassFacts] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "module": self.module,
            "path": self.path,
            "imports": dict(sorted(self.imports.items())),
            "functions": {
                name: fn.to_dict()
                for name, fn in sorted(self.functions.items())
            },
            "classes": {
                name: cl.to_dict()
                for name, cl in sorted(self.classes.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleFacts":
        return cls(
            module=data["module"],
            path=data["path"],
            imports=dict(data["imports"]),
            functions={
                name: FunctionFacts.from_dict(fn)
                for name, fn in data["functions"].items()
            },
            classes={
                name: ClassFacts.from_dict(cl)
                for name, cl in data["classes"].items()
            },
        )


# ----------------------------------------------------------------------
# statement anatomy helpers
# ----------------------------------------------------------------------

_COMPOUND_NODES = COMPOUND_NODES


def _node_bound_names(stmt: ast.AST) -> Set[str]:
    """Names a CFG node binds -- like astutils.bound_names, but scoped to
    the node's own expressions for compound heads, plus handler names."""
    names: Set[str] = set()
    if isinstance(stmt, ast.ExceptHandler):
        if stmt.name:
            names.add(stmt.name)
        return names
    for target in assignment_targets(stmt):
        if isinstance(target, ast.Name):
            names.add(target.id)
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if isinstance(item.optional_vars, ast.Name):
                names.add(item.optional_vars.id)
    for expr in own_expressions(stmt):
        for sub in ast.walk(expr):
            if isinstance(sub, ast.NamedExpr) and isinstance(
                sub.target, ast.Name
            ):
                names.add(sub.target.id)
    if isinstance(stmt, FUNCTION_NODES) or isinstance(stmt, ast.ClassDef):
        names.add(stmt.name)
    return names


# ----------------------------------------------------------------------
# import map
# ----------------------------------------------------------------------


def build_import_map(tree: ast.Module, module: Optional[str]) -> Dict[str, str]:
    """Alias -> dotted target for every top-of-module import.

    ``import time`` -> ``{"time": "time"}``; ``import repro.obs as obs``
    -> ``{"obs": "repro.obs"}``; ``from repro.sim.metrics import
    rows_fingerprint`` -> ``{"rows_fingerprint":
    "repro.sim.metrics.rows_fingerprint"}``. Relative imports resolve
    against ``module``.
    """
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    imports[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level and module:
                package_parts = module.split(".")
                # level 1 = the containing package of this module
                anchor = package_parts[: len(package_parts) - node.level]
                base = ".".join(anchor + ([base] if base else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                bound = alias.asname or alias.name
                imports[bound] = f"{base}.{alias.name}" if base else alias.name
    return imports


# ----------------------------------------------------------------------
# extraction
# ----------------------------------------------------------------------


def extract_module_facts(
    tree: ast.Module, path: str, module: Optional[str]
) -> ModuleFacts:
    """Extract the flow facts of one parsed file."""
    mod = module or ""
    facts = ModuleFacts(module=mod, path=path)
    facts.imports = build_import_map(tree, module)

    local_functions: Set[str] = {
        node.name for node in tree.body if isinstance(node, FUNCTION_NODES)
    }

    def visit(
        body: Sequence[ast.stmt], scope: Tuple[str, ...], in_class: bool
    ) -> None:
        for node in body:
            if isinstance(node, ast.ClassDef):
                qualname = ".".join(scope + (node.name,))
                fields = tuple(
                    stmt.target.id
                    for stmt in node.body
                    if isinstance(stmt, ast.AnnAssign)
                    and isinstance(stmt.target, ast.Name)
                )
                methods = tuple(
                    stmt.name
                    for stmt in node.body
                    if isinstance(stmt, FUNCTION_NODES)
                )
                facts.classes[qualname] = ClassFacts(
                    qualname=qualname, fields=fields, methods=methods
                )
                visit(node.body, scope + (node.name,), True)
            elif isinstance(node, FUNCTION_NODES):
                qualname = ".".join(scope + (node.name,))
                facts.functions[qualname] = _extract_function(
                    node,
                    qualname,
                    facts,
                    local_functions,
                    enclosing_class=scope[-1] if in_class and scope else None,
                )
                visit(node.body, scope + (node.name,), False)

    visit(tree.body, (), False)
    return facts


class _FunctionExtractor:
    """Runs the intraprocedural taint analysis over one function."""

    def __init__(
        self,
        func: ast.AST,
        qualname: str,
        module_facts: ModuleFacts,
        local_functions: Set[str],
        enclosing_class: Optional[str],
    ):
        self.func = func
        self.qualname = qualname
        self.module_facts = module_facts
        self.local_functions = local_functions
        self.enclosing_class = enclosing_class
        args = func.args
        params = [a.arg for a in args.posonlyargs] + [a.arg for a in args.args]
        if args.vararg:
            params.append(args.vararg.arg)
        params.extend(a.arg for a in args.kwonlyargs)
        if args.kwarg:
            params.append(args.kwarg.arg)
        self.params = params
        self.param_index = {name: i for i, name in enumerate(params)}
        self.cfg = CFG.for_function(func)
        self.envs = self.cfg.reaching_definitions()
        #: per defining node: taint of each name it binds (kept per name
        #: so tuple destructuring can split a call result element-wise)
        self.def_taint: Dict[int, Dict[str, TaintValue]] = {}
        self.facts = FunctionFacts(
            qualname=qualname,
            module=module_facts.module,
            lineno=func.lineno,
            params=tuple(params),
        )
        self._call_ids: Dict[int, int] = {}  # id(Call node) -> call index

    # -- taint evaluation ----------------------------------------------

    def _call_index(self, node: ast.Call) -> int:
        key = id(node)
        index = self._call_ids.get(key)
        if index is None:
            index = len(self._call_ids)
            self._call_ids[key] = index
        return index

    def _resolve_dotted(self, func_expr: ast.expr) -> Tuple[str, Optional[str]]:
        """(resolved dotted name, funcref-or-None) of a call target."""
        imports = self.module_facts.imports
        if isinstance(func_expr, ast.Name):
            name = func_expr.id
            if name in self.local_functions:
                return name, f"{self.module_facts.module}:{name}"
            target = imports.get(name)
            return (target if target else name), None
        dotted = dotted_name(func_expr)
        if dotted is None:
            attr = (
                func_expr.attr
                if isinstance(func_expr, ast.Attribute)
                else "<dynamic>"
            )
            return attr, None
        parts = dotted.split(".")
        if parts[0] in ("self", "cls") and len(parts) == 2:
            if self.enclosing_class:
                funcref = (
                    f"{self.module_facts.module}:"
                    f"{self.enclosing_class}.{parts[1]}"
                )
                return dotted, funcref
            return dotted, None
        target = imports.get(parts[0])
        if target:
            return ".".join([target] + parts[1:]), None
        return dotted, None

    def eval_expr(self, expr: ast.expr, env: Dict[str, Set[int]]) -> TaintValue:
        """Symbolic taint of an expression under a reaching-defs env."""
        sources: Set[str] = set()
        calls: Set[int] = set()
        params: Set[int] = set()
        elems: Set[Tuple[int, int]] = set()

        def walk(node: ast.AST) -> None:
            if isinstance(node, ast.Call):
                dotted, _ = self._resolve_dotted(node.func)
                source = source_name(dotted)
                if source is not None:
                    sources.add(source)
                else:
                    calls.add(self._call_index(node))
                # The call result's taint comes from the callee summary;
                # arguments do not taint the result here (the project
                # pass routes param-to-return flows). Still walk args so
                # nested source calls are found.
                for child in ast.iter_child_nodes(node):
                    if child is not node.func:
                        walk(child)
                return
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                for site in env.get(node.id, ()):
                    site_taints = self.def_taint.get(site)
                    taint = (
                        site_taints.get(node.id)
                        if site_taints is not None
                        else None
                    )
                    if taint is not None:
                        sources.update(taint.sources)
                        calls.update(taint.calls)
                        params.update(taint.params)
                        elems.update(taint.elems)
                # self/cls never carry taint: object state is a taint
                # boundary (attribute stores are not tracked).
                if node.id not in ("self", "cls"):
                    index = self.param_index.get(node.id)
                    if index is not None:
                        params.add(index)
                return
            if isinstance(node, (ast.Lambda,)) or isinstance(
                node, FUNCTION_NODES
            ):
                return
            for child in ast.iter_child_nodes(node):
                walk(child)

        walk(expr)
        if not (sources or calls or params or elems):
            return EMPTY_TAINT
        return TaintValue(
            sources=tuple(sorted(sources)),
            calls=tuple(sorted(calls)),
            params=tuple(sorted(params)),
            elems=tuple(sorted(elems)),
        )

    def _merged_taint(
        self, stmt: ast.AST, env: Dict[str, Set[int]]
    ) -> TaintValue:
        return _union_taints(
            [self.eval_expr(expr, env) for expr in own_expressions(stmt)]
        )

    def _destructured_taints(
        self, stmt: ast.AST, env: Dict[str, Set[int]]
    ) -> Optional[Dict[str, TaintValue]]:
        """Element-wise taints of ``a, b = <tuple literal | call>``.

        Destructuring a call keeps the element symbolic -- ``(call, i)``
        in :attr:`TaintValue.elems` -- so a timing wrapper's ``(value,
        wall)`` result does not taint ``value``. Anything else returns
        None and falls back to the merged binding.
        """
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
            return None
        target = stmt.targets[0]
        if not isinstance(target, (ast.Tuple, ast.List)):
            return None
        if not all(isinstance(elt, ast.Name) for elt in target.elts):
            return None
        names = [elt.id for elt in target.elts]
        value = stmt.value
        if isinstance(value, (ast.Tuple, ast.List)) and len(
            value.elts
        ) == len(names):
            return {
                name: self.eval_expr(elt, env)
                for name, elt in zip(names, value.elts)
            }
        if isinstance(value, ast.Call):
            dotted, _ = self._resolve_dotted(value.func)
            if source_name(dotted) is not None:
                return None
            call_index = self._call_index(value)
            base = self.eval_expr(value, env)
            residual_calls = tuple(
                c for c in base.calls if c != call_index
            )
            return {
                name: TaintValue(
                    sources=base.sources,
                    calls=residual_calls,
                    params=base.params,
                    elems=tuple(
                        sorted(set(base.elems) | {(call_index, i)})
                    ),
                )
                for i, name in enumerate(names)
            }
        return None

    def _bind_taints(
        self,
        stmt: ast.AST,
        names: Set[str],
        env: Dict[str, Set[int]],
    ) -> Dict[str, TaintValue]:
        """Taint of each name a node binds (element-precise when it can)."""
        special = self._destructured_taints(stmt, env)
        if special is not None:
            merged: Optional[TaintValue] = None
            out: Dict[str, TaintValue] = {}
            for name in names:
                if name in special:
                    out[name] = special[name]
                else:
                    if merged is None:
                        merged = self._merged_taint(stmt, env)
                    out[name] = merged
            return out
        merged = self._merged_taint(stmt, env)
        return {name: merged for name in names}

    def run(self) -> FunctionFacts:
        stmt_nodes = list(self.cfg.statement_nodes())

        # 1. fixpoint over definition-site taints (loops feed back)
        changed = True
        while changed:
            changed = False
            for node in stmt_nodes:
                stmt = node.stmt
                names = _node_bound_names(stmt)
                if not names:
                    continue
                env = self.envs[node.index]
                per_name = self._bind_taints(stmt, names, env)
                if self.def_taint.get(node.index) != per_name:
                    self.def_taint[node.index] = per_name
                    changed = True

        # 2. final pass: call sites, sinks, returns, writes, metrics
        ret_sources: Set[str] = set()
        ret_calls: Set[int] = set()
        ret_params: Set[int] = set()
        ret_elems: Set[Tuple[int, int]] = set()
        ret_tuples: List[List[TaintValue]] = []
        tuple_returns_only = True
        calls_by_index: Dict[int, CallSite] = {}
        for node in stmt_nodes:
            stmt = node.stmt
            env = self.envs[node.index]
            for expr in own_expressions(stmt):
                for sub in ast.walk(expr):
                    if isinstance(sub, ast.Call):
                        site = self._extract_call(sub, env)
                        calls_by_index[site.index] = site
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                value = self.eval_expr(stmt.value, env)
                ret_sources.update(value.sources)
                ret_calls.update(value.calls)
                ret_params.update(value.params)
                ret_elems.update(value.elems)
                if isinstance(stmt.value, ast.Tuple):
                    ret_tuples.append(
                        [
                            self.eval_expr(elt, env)
                            for elt in stmt.value.elts
                        ]
                    )
                else:
                    tuple_returns_only = False
            self._extract_writes(stmt)

        self.facts.calls = [
            calls_by_index[i] for i in sorted(calls_by_index)
        ]
        if ret_sources or ret_calls or ret_params or ret_elems:
            self.facts.ret = TaintValue(
                tuple(sorted(ret_sources)),
                tuple(sorted(ret_calls)),
                tuple(sorted(ret_params)),
                tuple(sorted(ret_elems)),
            )
        if (
            tuple_returns_only
            and ret_tuples
            and len({len(t) for t in ret_tuples}) == 1
        ):
            self.facts.ret_elements = tuple(
                _union_taints([t[i] for t in ret_tuples])
                for i in range(len(ret_tuples[0]))
            )
        own_nodes = self._own_nodes()
        self.facts.metrics = tuple(sorted(set(self._metric_names(own_nodes))))
        self.facts.attr_reads = tuple(
            sorted(
                {
                    node.attr
                    for node in own_nodes
                    if isinstance(node, ast.Attribute)
                    and isinstance(node.ctx, ast.Load)
                }
            )
        )
        return self.facts

    def _extract_call(
        self, node: ast.Call, env: Dict[str, Set[int]]
    ) -> CallSite:
        dotted, funcref = self._resolve_dotted(node.func)
        kind = "name" if isinstance(node.func, ast.Name) else "attr"
        attr = (
            node.func.attr if isinstance(node.func, ast.Attribute) else None
        )
        arg_taints: Dict[str, TaintValue] = {}
        for position, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                continue
            taint = self.eval_expr(arg, env)
            if not taint.is_empty():
                arg_taints[str(position)] = taint
        keywords: List[str] = []
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            keywords.append(keyword.arg)
            taint = self.eval_expr(keyword.value, env)
            if not taint.is_empty():
                arg_taints[keyword.arg] = taint
        site = CallSite(
            index=self._call_index(node),
            line=node.lineno,
            col=node.col_offset + 1,
            kind=kind,
            name=dotted,
            attr=attr,
            resolved=funcref,
            arg_taints=arg_taints,
            keywords=tuple(keywords),
        )
        self._collect_sinks(node, site)
        self._collect_ctor_kwargs(node, site)
        return site

    def _collect_sinks(self, node: ast.Call, site: CallSite) -> None:
        last = site.name.split(".")[-1]
        if last in SINK_FUNCTIONS or (site.attr in SINK_FUNCTIONS):
            sink_name = site.attr if site.attr in SINK_FUNCTIONS else last
            for key, taint in sorted(site.arg_taints.items()):
                self.facts.sinks.append(
                    SinkUse(
                        sink=sink_name,
                        line=site.line,
                        col=site.col,
                        taint=taint,
                    )
                )
            return
        if site.attr == "event":
            if (
                node.args
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value in VOLATILE_EVENT_TYPES
            ):
                return
            for keyword in node.keywords:
                if keyword.arg is None or keyword.arg in VOLATILE_EVENT_KEYS:
                    continue
                taint = site.arg_taints.get(keyword.arg)
                if taint is not None:
                    self.facts.sinks.append(
                        SinkUse(
                            sink=f"event:{keyword.arg}",
                            line=keyword.value.lineno,
                            col=keyword.value.col_offset + 1,
                            taint=taint,
                        )
                    )

    def _collect_ctor_kwargs(self, node: ast.Call, site: CallSite) -> None:
        last = site.name.split(".")[-1]
        if not last or not last[0].isupper():
            return
        if not site.keywords:
            return
        existing = set(self.facts.ctor_kwargs.get(last, ()))
        existing.update(site.keywords)
        self.facts.ctor_kwargs[last] = tuple(sorted(existing))

    def _own_nodes(self) -> List[ast.AST]:
        """All nodes of this function, excluding nested def/class bodies."""
        collected: List[ast.AST] = []
        stack: List[ast.AST] = list(ast.iter_child_nodes(self.func))
        while stack:
            node = stack.pop()
            if isinstance(node, FUNCTION_NODES) or isinstance(
                node, ast.ClassDef
            ):
                continue
            collected.append(node)
            stack.extend(ast.iter_child_nodes(node))
        return collected

    def _extract_writes(self, stmt: ast.AST) -> None:
        if (
            isinstance(stmt, _COMPOUND_NODES)
            or isinstance(stmt, FUNCTION_NODES)
            or isinstance(stmt, (ast.ClassDef, ast.ExceptHandler))
            or (
                getattr(ast, "Match", None) is not None
                and isinstance(stmt, getattr(ast, "Match"))
            )
        ):
            return
        for node in ast.walk(stmt):
            for target in assignment_targets(node):
                if isinstance(target, ast.Subscript):
                    target = target.value
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in RESOURCE_FIELDS
                ):
                    self.facts.writes.append(
                        (target.attr, node.lineno, node.col_offset + 1)
                    )
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in MUTATOR_METHODS
                and isinstance(node.func.value, ast.Attribute)
                and node.func.value.attr in RESOURCE_FIELDS
            ):
                self.facts.writes.append(
                    (
                        node.func.value.attr,
                        node.lineno,
                        node.col_offset + 1,
                    )
                )

    def _metric_names(self, own_nodes: List[ast.AST]) -> List[str]:
        names: List[str] = []
        for node in own_nodes:
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in METRIC_CALL_ATTRS
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                names.append(node.args[0].value)
        return names


def _extract_function(
    func: ast.AST,
    qualname: str,
    module_facts: ModuleFacts,
    local_functions: Set[str],
    enclosing_class: Optional[str],
) -> FunctionFacts:
    return _FunctionExtractor(
        func, qualname, module_facts, local_functions, enclosing_class
    ).run()
