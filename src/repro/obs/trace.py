"""Lightweight span/timer API building a per-placement trace tree.

A :class:`Span` is one timed operation; spans opened while another span is
active nest under it, so one ``ostro.place`` call produces a tree::

    ostro.place (0.512s) app=shop algorithm=dba*
      dba*.search (0.507s)
        eg.bound (0.031s)
        eg.bound (0.018s)

Spans are cheap (one object + two ``perf_counter`` calls); the per-call
hot paths (estimate evaluations, candidate scoring) use plain histogram
observations instead of spans so the tree stays human-sized.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass
class Span:
    """One timed, possibly-nested operation."""

    name: str
    start_s: float
    attrs: Dict[str, Any] = field(default_factory=dict)
    duration_s: Optional[float] = None
    children: List["Span"] = field(default_factory=list)

    def walk(self, depth: int = 0) -> Iterator[tuple]:
        """Yield ``(span, depth)`` pairs depth-first."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)


class Tracer:
    """Builds span trees via a context-manager API.

    Args:
        on_close: optional callback ``(span, depth)`` fired when a span
            finishes (the recorder uses it to mirror spans into the event
            stream and a duration histogram).
    """

    def __init__(self, on_close: Optional[Callable[[Span, int], None]] = None):
        self.roots: List[Span] = []
        self._stack: List[Span] = []
        self._on_close = on_close

    def span(self, name: str, **attrs) -> "_SpanContext":
        """Open a nested span: ``with tracer.span("eg.bound"):``."""
        return _SpanContext(self, name, attrs)

    @property
    def depth(self) -> int:
        return len(self._stack)

    def _enter(self, name: str, attrs: Dict[str, Any]) -> Span:
        span = Span(name=name, start_s=time.perf_counter(), attrs=attrs)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def _exit(self, span: Span) -> None:
        span.duration_s = time.perf_counter() - span.start_s
        # tolerate mismatched exits instead of corrupting the tree
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:
            while self._stack and self._stack[-1] is not span:
                self._stack.pop()
            if self._stack:
                self._stack.pop()
        if self._on_close is not None:
            self._on_close(span, len(self._stack))

    def clear(self) -> None:
        self.roots.clear()
        self._stack.clear()


class _SpanContext:
    """Context manager handed out by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_attrs", "span")

    def __init__(self, tracer: Tracer, name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        self.span = self._tracer._enter(self._name, self._attrs)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self.span is not None
        if exc_type is not None:
            self.span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._exit(self.span)
        return False


class NullSpanContext:
    """Reusable no-op span context (singleton; allocation-free)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = NullSpanContext()


def render_tree(roots: List[Span], indent: int = 2) -> str:
    """Human-readable rendering of one or more span trees."""
    lines: List[str] = []
    for root in roots:
        for span, depth in root.walk():
            duration = (
                f"{span.duration_s * 1000:.1f} ms"
                if span.duration_s is not None
                else "open"
            )
            attrs = "".join(
                f" {k}={v}" for k, v in sorted(span.attrs.items())
            )
            lines.append(f"{' ' * (indent * depth)}{span.name} ({duration}){attrs}")
    return "\n".join(lines)
