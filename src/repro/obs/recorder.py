"""Recorder facade: what instrumented code calls.

Two implementations share one interface:

* :class:`NullRecorder` -- the default. Every method is a no-op and
  ``enabled`` is False, so hot paths can skip even argument construction
  with ``if rec.enabled:`` guards. A single shared instance exists for the
  whole process; instrumentation adds near-zero overhead when telemetry is
  off.
* :class:`TelemetryRecorder` -- owns a :class:`~repro.obs.registry.Registry`,
  a :class:`~repro.obs.trace.Tracer`, and an
  :class:`~repro.obs.events.EventLog`, and routes every call into all
  three as appropriate.

Call sites never pre-register metrics: :data:`METRIC_CATALOG` carries the
kind, help text, and label names for every ``ostro_*`` metric, and the
recorder materializes them on first use.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.obs.events import EventLog
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Registry,
    TelemetryError,
)
from repro.obs.trace import NULL_SPAN, Tracer

#: name -> (kind, help, labelnames). Kind is "counter" / "gauge" /
#: "histogram". The catalog is the single source of truth for metric
#: metadata; docs/OBSERVABILITY.md renders from the same data.
METRIC_CATALOG: Dict[str, Tuple[str, str, Tuple[str, ...]]] = {
    "ostro_placements_total": (
        "counter",
        "Completed placement runs, by algorithm.",
        ("algorithm",),
    ),
    "ostro_placement_failures_total": (
        "counter",
        "Placement runs that raised, by algorithm.",
        ("algorithm",),
    ),
    "ostro_placement_seconds": (
        "histogram",
        "Wall-clock duration of whole placement runs.",
        ("algorithm",),
    ),
    "ostro_candidates_scored_total": (
        "counter",
        "Candidate (node, host) pairs given the full lower-bound score.",
        (),
    ),
    "ostro_estimates_total": (
        "counter",
        "Lower-bound estimator invocations.",
        (),
    ),
    "ostro_estimate_seconds": (
        "histogram",
        "Duration of one lower-bound estimator invocation.",
        (),
    ),
    "ostro_nodes_expanded_total": (
        "counter",
        "A* search paths popped and expanded.",
        (),
    ),
    "ostro_paths_pruned_total": (
        "counter",
        "A* paths discarded, by reason (bound / probabilistic).",
        ("reason",),
    ),
    "ostro_open_list_size": (
        "gauge",
        "Current size of the A* open queue.",
        (),
    ),
    "ostro_eg_bound_runs_total": (
        "counter",
        "EG upper-bound (re)computations inside BA*/DBA*.",
        (),
    ),
    "ostro_eg_bound_seconds": (
        "histogram",
        "Duration of one EG upper-bound completion run.",
        (),
    ),
    "ostro_backtracks_total": (
        "counter",
        "Greedy dead-end backjumps.",
        (),
    ),
    "ostro_restarts_total": (
        "counter",
        "Greedy restart-cascade strategy switches.",
        (),
    ),
    "ostro_deadline_remaining_seconds": (
        "gauge",
        "Time left in the current deadline-bounded search.",
        (),
    ),
    "ostro_pruning_range": (
        "gauge",
        "DBA*'s probabilistic pruning range r (0 = no pruning).",
        (),
    ),
    "ostro_deadline_hits_total": (
        "counter",
        "Deadline-bounded searches that ran out of time.",
        (),
    ),
    "ostro_commits_total": (
        "counter",
        "Placements committed into the live state.",
        (),
    ),
    "ostro_removes_total": (
        "counter",
        "Applications removed from the live state.",
        (),
    ),
    "ostro_rollbacks_total": (
        "counter",
        "Partially applied commits rolled back.",
        (),
    ),
    "ostro_reoptimizations_total": (
        "counter",
        "Runtime re-optimizations, by outcome (improved / kept).",
        ("outcome",),
    ),
    "ostro_updates_total": (
        "counter",
        "Online topology updates applied.",
        (),
    ),
    "ostro_update_failures_total": (
        "counter",
        "Online topology updates that failed and were rolled back.",
        (),
    ),
    "ostro_migration_steps_total": (
        "counter",
        "Executed migration moves, by kind (move / bounce).",
        ("kind",),
    ),
    "ostro_migration_moved_gb_total": (
        "counter",
        "Gigabytes (VM memory + volume size) relocated by migrations.",
        (),
    ),
    "ostro_defrag_passes_total": (
        "counter",
        "Background defragmentation passes, by outcome "
        "(completed / aborted).",
        ("outcome",),
    ),
    "ostro_defrag_moves_total": (
        "counter",
        "Migration steps executed by defrag passes, by kind "
        "(move / bounce).",
        ("kind",),
    ),
    "ostro_defrag_moved_gb_total": (
        "counter",
        "Gigabytes relocated by background defragmentation.",
        (),
    ),
    "ostro_defrag_rollbacks_total": (
        "counter",
        "Defrag migration steps rolled back after a fault mid-step.",
        (),
    ),
    "ostro_defrag_replans_total": (
        "counter",
        "Fresh defrag planning rounds triggered by aborted passes.",
        (),
    ),
    "ostro_defrag_fragmentation_index": (
        "gauge",
        "Fragmentation index (stranded capacity + dispersion) after the "
        "last executed defrag pass.",
        (),
    ),
    "ostro_api_calls_total": (
        "counter",
        "Calls into the integration surrogates (heat / nova / cinder).",
        ("service", "method"),
    ),
    "ostro_faults_injected_total": (
        "counter",
        "Faults injected by a FaultPlan, by kind.",
        ("kind",),
    ),
    "ostro_api_retries_total": (
        "counter",
        "Retried surrogate API calls, by service and method.",
        ("service", "method"),
    ),
    "ostro_retry_backoff_seconds_total": (
        "counter",
        "Total (virtual) backoff delay accumulated across retries.",
        (),
    ),
    "ostro_retries_exhausted_total": (
        "counter",
        "Retried calls that exhausted their attempt or time budget.",
        ("service", "method"),
    ),
    "ostro_hosts_down": (
        "gauge",
        "Hosts currently failed by fault injection.",
        (),
    ),
    "ostro_evacuations_total": (
        "counter",
        "Host evacuations performed after host-down events.",
        (),
    ),
    "ostro_evacuated_nodes_total": (
        "counter",
        "VM/volume nodes re-placed by evacuations, by outcome.",
        ("outcome",),
    ),
    "ostro_degradations_total": (
        "counter",
        "Algorithm degradations (e.g. dba* -> ba*) under failure pressure.",
        ("from_algorithm", "to_algorithm"),
    ),
    "ostro_service_requests_total": (
        "counter",
        "Admission requests decided by the service pipeline, by outcome.",
        ("outcome",),
    ),
    "ostro_service_batches_total": (
        "counter",
        "Batches drained by the admission engine, by mode "
        "(single / joint / fallback).",
        ("mode",),
    ),
    "ostro_service_admission_latency_seconds": (
        "histogram",
        "Virtual-time latency from submission to admission decision.",
        (),
    ),
    "ostro_service_queue_depth": (
        "gauge",
        "Requests waiting in the admission queue after the last drain.",
        (),
    ),
    "ostro_service_escalations_total": (
        "counter",
        "Placements escalated from the pod shards to the global pass, "
        "by reason.",
        ("reason",),
    ),
    "ostro_scaling_evaluations_total": (
        "counter",
        "Autoscaling policy evaluations performed.",
        (),
    ),
    "ostro_scaling_actions_total": (
        "counter",
        "Autoscaling actions applied, by direction (out / in).",
        ("direction",),
    ),
    "ostro_scaling_failures_total": (
        "counter",
        "Autoscaling actions that could not be applied, by direction.",
        ("direction",),
    ),
    "ostro_scaling_vms_total": (
        "counter",
        "Tier members added/removed by autoscaling, by direction "
        "(added / removed).",
        ("direction",),
    ),
    "ostro_scaling_utilization": (
        "gauge",
        "Last measured tier utilization per application.",
        ("app",),
    ),
    "ostro_span_seconds": (
        "histogram",
        "Duration of named trace spans.",
        ("span",),
    ),
    "ostro_events_dropped_total": (
        "counter",
        "Events dropped after the event-log cap was reached.",
        (),
    ),
}


class Recorder:
    """No-op base recorder; also the interface documentation.

    ``enabled`` is the hot-path guard: instrumented code may do real work
    (timing, field construction) only inside ``if rec.enabled:`` blocks.
    """

    enabled: bool = False

    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        """Increment a counter."""

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Set a gauge."""

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one histogram observation."""

    def event(self, type: str, **fields) -> None:
        """Emit one structured event."""

    def span(self, name: str, **attrs):
        """Open a trace span (context manager)."""
        return NULL_SPAN


class NullRecorder(Recorder):
    """The disabled recorder: every operation is a no-op."""

    __slots__ = ()


class TelemetryRecorder(Recorder):
    """The live recorder: registry + tracer + event log in one.

    Args:
        max_events: event-log buffer cap (see :class:`EventLog`).
        record_span_events: mirror closing spans into the event stream
            (type ``span``) and the ``ostro_span_seconds`` histogram.
    """

    enabled = True

    def __init__(
        self,
        max_events: Optional[int] = 1_000_000,
        record_span_events: bool = True,
    ):
        self.registry = Registry()
        self.events = EventLog(max_events=max_events)
        self._record_span_events = record_span_events
        self.tracer = Tracer(on_close=self._span_closed)

    # -- metric routing -------------------------------------------------

    def _metric(self, name: str, kind: str):
        entry = METRIC_CATALOG.get(name)
        if entry is not None:
            cat_kind, help, labelnames = entry
            if cat_kind != kind:
                raise TelemetryError(
                    f"metric {name!r} is a {cat_kind}, used as a {kind}"
                )
        else:
            help, labelnames = "", None  # created from first use below
        if kind == "counter":
            return self.registry.counter(
                name, help, labelnames if labelnames is not None else ()
            )
        if kind == "gauge":
            return self.registry.gauge(
                name, help, labelnames if labelnames is not None else ()
            )
        return self.registry.histogram(
            name,
            help,
            labelnames if labelnames is not None else (),
            buckets=DEFAULT_BUCKETS,
        )

    def inc(self, name, value=1.0, **labels):
        entry = METRIC_CATALOG.get(name)
        if entry is None:
            metric = self.registry.counter(name, "", tuple(sorted(labels)))
        else:
            metric = self._metric(name, "counter")
        metric.inc(value, **labels)

    def set_gauge(self, name, value, **labels):
        entry = METRIC_CATALOG.get(name)
        if entry is None:
            metric = self.registry.gauge(name, "", tuple(sorted(labels)))
        else:
            metric = self._metric(name, "gauge")
        metric.set(value, **labels)

    def observe(self, name, value, **labels):
        entry = METRIC_CATALOG.get(name)
        if entry is None:
            metric = self.registry.histogram(name, "", tuple(sorted(labels)))
        else:
            metric = self._metric(name, "histogram")
        metric.observe(value, **labels)

    # -- events and spans -----------------------------------------------

    def event(self, type, **fields):
        self.events.emit(type, **fields)
        if self.events.dropped:
            # keep the registry's view of drops current (cheap: one set)
            self._metric("ostro_events_dropped_total", "counter")._values[
                ()
            ] = float(self.events.dropped)

    def span(self, name, **attrs):
        return self.tracer.span(name, **attrs)

    def _span_closed(self, span, depth) -> None:
        if not self._record_span_events:
            return
        self.observe(
            "ostro_span_seconds", span.duration_s or 0.0, span=span.name
        )
        reserved = {"name", "duration_s", "depth", "type", "ts", "seq"}
        self.events.emit(
            "span",
            name=span.name,
            duration_s=span.duration_s,
            depth=depth,
            **{k: v for k, v in span.attrs.items() if k not in reserved},
        )

    # -- merging (parallel execution) -----------------------------------

    def merge(self, other: "TelemetryRecorder") -> None:
        """Fold another recorder's registry and events into this one.

        This is how per-worker recorders from :mod:`repro.sim.parallel`
        collapse back into the parent after a process-pool run: counters
        add, gauges take the merged recorder's values (so merging worker
        recorders in cell order reproduces the serial final gauge),
        histograms merge bucket-by-bucket, and events are appended with
        ``seq`` renumbered to continue the parent's sequence. Span trees
        are not merged -- closing spans were already mirrored into the
        event stream and the ``ostro_span_seconds`` histogram, both of
        which do merge. A ``TelemetryRecorder`` is picklable (spans and
        all), so workers can return theirs across the process boundary.
        """
        self.registry.merge(other.registry)
        self.events.merge(other.events)
        if self.events.dropped:
            self._metric("ostro_events_dropped_total", "counter")._values[
                ()
            ] = float(self.events.dropped)

    # -- convenience ----------------------------------------------------

    def summary(self) -> str:
        """Human-readable per-placement search-effort summary."""
        from repro.obs.export import render_summary

        return render_summary(self)

    def clear(self) -> None:
        self.registry = Registry()
        self.events.clear()
        self.tracer.clear()
