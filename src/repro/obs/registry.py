"""Metric registry: counters, gauges, and histograms with label support.

The registry is the aggregated half of the telemetry subsystem (the event
stream in :mod:`repro.obs.events` is the per-decision half). Metrics follow
Prometheus conventions -- monotonically increasing ``*_total`` counters,
point-in-time gauges, and cumulative-bucket histograms -- and are rendered
in the text exposition format by :func:`repro.obs.export.render_prometheus`.

Everything here is dependency-free and allocation-light: a metric child
(one label combination) is a float or a small bucket array, and lookups are
one dict access keyed on the label-value tuple.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ReproError


class TelemetryError(ReproError):
    """A metric was registered or used inconsistently (name reused with a
    different kind, unknown/missing labels, bad bucket spec)."""


#: Default histogram buckets, tuned for sub-second scheduler operations
#: (estimate calls are typically 10us-10ms; whole placements up to ~10s).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.00001, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(
    labelnames: Tuple[str, ...], labels: Dict[str, object], metric: str
) -> Tuple[str, ...]:
    """Validate a label dict against the declared names; return value tuple."""
    if set(labels) != set(labelnames):
        raise TelemetryError(
            f"metric {metric!r} takes labels {sorted(labelnames)}, "
            f"got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class Metric:
    """Base of all metric kinds.

    Args:
        name: Prometheus-style metric name (``ostro_*``).
        help: one-line description for the exposition format.
        labelnames: declared label names; every update must supply exactly
            these as keyword arguments.
    """

    kind = "untyped"

    def __init__(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ):
        self.name = name
        self.help = help
        self.labelnames: Tuple[str, ...] = tuple(labelnames)

    def samples(self) -> Iterable[Tuple[str, Tuple[Tuple[str, str], ...], float]]:
        """Yield ``(sample_name, ((label, value), ...), numeric_value)``."""
        raise NotImplementedError

    def _labelpairs(self, key: Tuple[str, ...]) -> Tuple[Tuple[str, str], ...]:
        return tuple(zip(self.labelnames, key))


class Counter(Metric):
    """A monotonically increasing counter."""

    kind = "counter"

    def __init__(self, name, help="", labelnames=()):
        super().__init__(name, help, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, value: float = 1.0, **labels) -> None:
        if value < 0:
            raise TelemetryError(
                f"counter {self.name!r} cannot decrease (inc by {value})"
            )
        key = _label_key(self.labelnames, labels, self.name)
        self._values[key] = self._values.get(key, 0.0) + value

    def merge_from(self, other: "Counter") -> None:
        """Add another counter's per-label totals into this one."""
        for key, value in other._values.items():
            self._values[key] = self._values.get(key, 0.0) + value

    def value(self, **labels) -> float:
        key = _label_key(self.labelnames, labels, self.name)
        return self._values.get(key, 0.0)

    def samples(self):
        for key, value in sorted(self._values.items()):
            yield self.name, self._labelpairs(key), value


class Gauge(Metric):
    """A point-in-time value that can go up and down."""

    kind = "gauge"

    def __init__(self, name, help="", labelnames=()):
        super().__init__(name, help, labelnames)
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, **labels) -> None:
        key = _label_key(self.labelnames, labels, self.name)
        self._values[key] = float(value)

    def merge_from(self, other: "Gauge") -> None:
        """Adopt another gauge's label values (last writer wins)."""
        self._values.update(other._values)

    def inc(self, value: float = 1.0, **labels) -> None:
        key = _label_key(self.labelnames, labels, self.name)
        self._values[key] = self._values.get(key, 0.0) + value

    def value(self, **labels) -> float:
        key = _label_key(self.labelnames, labels, self.name)
        return self._values.get(key, 0.0)

    def samples(self):
        for key, value in sorted(self._values.items()):
            yield self.name, self._labelpairs(key), value


@dataclass
class _HistogramChild:
    """Bucket counts + sum/count for one label combination."""

    bucket_counts: List[int]
    total: float = 0.0
    count: int = 0


class Histogram(Metric):
    """A cumulative-bucket histogram of observed values (e.g. durations)."""

    kind = "histogram"

    def __init__(
        self,
        name,
        help="",
        labelnames=(),
        buckets: Optional[Sequence[float]] = None,
    ):
        super().__init__(name, help, labelnames)
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise TelemetryError(
                f"histogram {name!r} buckets must be strictly increasing"
            )
        self.buckets: Tuple[float, ...] = bounds
        self._children: Dict[Tuple[str, ...], _HistogramChild] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(self.labelnames, labels, self.name)
        child = self._children.get(key)
        if child is None:
            child = _HistogramChild([0] * len(self.buckets))
            self._children[key] = child
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                child.bucket_counts[i] += 1
                break
        child.total += value
        child.count += 1

    def merge_from(self, other: "Histogram") -> None:
        """Fold another histogram's buckets, sums, and counts into this one."""
        if other.buckets != self.buckets:
            raise TelemetryError(
                f"histogram {self.name!r} bucket bounds differ; cannot merge"
            )
        for key, child in other._children.items():
            mine = self._children.get(key)
            if mine is None:
                self._children[key] = _HistogramChild(
                    list(child.bucket_counts), child.total, child.count
                )
                continue
            for i, n in enumerate(child.bucket_counts):
                mine.bucket_counts[i] += n
            mine.total += child.total
            mine.count += child.count

    def count(self, **labels) -> int:
        key = _label_key(self.labelnames, labels, self.name)
        child = self._children.get(key)
        return child.count if child else 0

    def sum(self, **labels) -> float:
        key = _label_key(self.labelnames, labels, self.name)
        child = self._children.get(key)
        return child.total if child else 0.0

    def bucket_values(self, **labels) -> List[Tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending with +Inf."""
        key = _label_key(self.labelnames, labels, self.name)
        child = self._children.get(key)
        if child is None:
            return [(bound, 0) for bound in self.buckets] + [
                (float("inf"), 0)
            ]
        out = []
        running = 0
        for bound, n in zip(self.buckets, child.bucket_counts):
            running += n
            out.append((bound, running))
        out.append((float("inf"), child.count))
        return out

    def samples(self):
        for key, child in sorted(self._children.items()):
            pairs = self._labelpairs(key)
            running = 0
            for bound, n in zip(self.buckets, child.bucket_counts):
                running += n
                yield (
                    self.name + "_bucket",
                    pairs + (("le", _format_bound(bound)),),
                    float(running),
                )
            yield (
                self.name + "_bucket",
                pairs + (("le", "+Inf"),),
                float(child.count),
            )
            yield self.name + "_sum", pairs, child.total
            yield self.name + "_count", pairs, float(child.count)


def _format_bound(bound: float) -> str:
    """Render a bucket bound the way Prometheus clients do (no trailing
    zeros, integers without a dot -- except keeping '1.0' style for exact
    integers is unnecessary; use repr-ish minimal form)."""
    text = f"{bound:.10f}".rstrip("0").rstrip(".")
    return text if text else "0"


class Registry:
    """A named collection of metrics.

    Metric constructors are idempotent: asking for an existing name returns
    the existing metric (after checking that kind and labels match), so
    instrumented call sites never need to coordinate registration order.
    """

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}

    def counter(self, name, help="", labelnames=()) -> Counter:
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(self, name, help="", labelnames=()) -> Gauge:
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self, name, help="", labelnames=(), buckets=None
    ) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, help, labelnames, buckets=buckets)
            self._metrics[name] = metric
            return metric
        self._check(metric, Histogram, name, labelnames)
        return metric  # type: ignore[return-value]

    def _get_or_create(self, cls, name, help, labelnames):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help, labelnames)
            self._metrics[name] = metric
            return metric
        self._check(metric, cls, name, labelnames)
        return metric

    @staticmethod
    def _check(metric, cls, name, labelnames):
        if not isinstance(metric, cls):
            raise TelemetryError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        if metric.labelnames != tuple(labelnames):
            raise TelemetryError(
                f"metric {name!r} already registered with labels "
                f"{metric.labelnames}, got {tuple(labelnames)}"
            )

    def merge(self, other: "Registry") -> None:
        """Fold another registry's metrics into this one.

        Counters add, gauges take the other registry's values (last
        writer wins), histograms merge bucket-by-bucket. Metrics missing
        here are created with the other registry's metadata. This is how
        per-worker registries from a parallel run collapse back into the
        parent's recorder (see :mod:`repro.sim.parallel`).
        """
        for metric in other.collect():
            if isinstance(metric, Counter):
                mine: Metric = self.counter(
                    metric.name, metric.help, metric.labelnames
                )
            elif isinstance(metric, Gauge):
                mine = self.gauge(metric.name, metric.help, metric.labelnames)
            elif isinstance(metric, Histogram):
                mine = self.histogram(
                    metric.name,
                    metric.help,
                    metric.labelnames,
                    buckets=metric.buckets,
                )
            else:
                raise TelemetryError(
                    f"cannot merge metric {metric.name!r} of kind "
                    f"{metric.kind!r}"
                )
            mine.merge_from(metric)  # type: ignore[attr-defined]

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def collect(self) -> List[Metric]:
        """All registered metrics in name order."""
        return [self._metrics[name] for name in sorted(self._metrics)]

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)
