"""Telemetry subsystem: structured events, metrics, and search tracing.

The ``obs`` package gives every layer of the scheduler a shared,
dependency-free telemetry surface:

* a :class:`~repro.obs.registry.Registry` of counters, gauges, and
  histograms with label support (Prometheus-style);
* a span/timer API that nests into a per-placement trace tree;
* a typed, JSONL-serializable event stream (``node_placed``,
  ``path_pruned``, ``estimate_computed``, ``deadline_tick``, ...);
* exporters: JSONL events, Prometheus text exposition, and a
  human-readable search-effort summary.

**Telemetry is off by default.** The process-wide recorder starts as a
shared :class:`~repro.obs.recorder.NullRecorder`; instrumented hot paths
guard their work with ``if rec.enabled:`` so a disabled run pays only an
attribute check. Enable it explicitly::

    from repro import obs

    rec = obs.enable()                 # install a live TelemetryRecorder
    ostro.place(app, algorithm="dba*", deadline_s=0.5)
    print(rec.summary())               # search-effort digest
    obs.disable()

or scoped::

    with obs.use(obs.TelemetryRecorder()) as rec:
        ostro.place(app)

The CLI wires the same switch to ``--trace-out`` / ``--metrics-out``.
The module-level :data:`ENABLED` flag mirrors the current state for cheap
external checks; the authoritative guard is always ``recorder.enabled``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from repro.obs.events import EVENT_SCHEMA, Event, EventLog, validate_event
from repro.obs.export import (
    render_prometheus,
    render_summary,
    write_events_jsonl,
    write_metrics_file,
)
from repro.obs.recorder import (
    METRIC_CATALOG,
    NullRecorder,
    Recorder,
    TelemetryRecorder,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    Registry,
    TelemetryError,
)
from repro.obs.trace import Span, Tracer, render_tree

#: the one shared no-op recorder (never replaced; identity-stable)
NULL = NullRecorder()

#: module-level enabled flag; mirrors ``get_recorder().enabled``
ENABLED: bool = False

_recorder: Recorder = NULL


def get_recorder() -> Recorder:
    """The process-wide recorder (a NullRecorder when telemetry is off)."""
    return _recorder


def is_enabled() -> bool:
    """True when a live recorder is installed."""
    return ENABLED


def enable(recorder: Optional[TelemetryRecorder] = None) -> TelemetryRecorder:
    """Install (and return) a live recorder as the process-wide one."""
    global _recorder, ENABLED
    if recorder is None:
        recorder = TelemetryRecorder()
    _recorder = recorder
    ENABLED = recorder.enabled
    return recorder


def disable() -> None:
    """Restore the shared no-op recorder."""
    global _recorder, ENABLED
    _recorder = NULL
    ENABLED = False


@contextmanager
def use(recorder: Recorder) -> Iterator[Recorder]:
    """Temporarily install a recorder; restores the previous one on exit."""
    global _recorder, ENABLED
    previous, previous_enabled = _recorder, ENABLED
    _recorder = recorder
    ENABLED = recorder.enabled
    try:
        yield recorder
    finally:
        _recorder = previous
        ENABLED = previous_enabled


__all__ = [
    "Counter",
    "ENABLED",
    "EVENT_SCHEMA",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "METRIC_CATALOG",
    "NULL",
    "NullRecorder",
    "Recorder",
    "Registry",
    "Span",
    "TelemetryError",
    "TelemetryRecorder",
    "Tracer",
    "disable",
    "enable",
    "get_recorder",
    "is_enabled",
    "render_prometheus",
    "render_summary",
    "render_tree",
    "use",
    "validate_event",
    "write_events_jsonl",
    "write_metrics_file",
]
