"""Structured event stream: typed events with a JSONL sink.

Every scheduler decision worth auditing becomes one :class:`Event`: a type
from :data:`EVENT_SCHEMA`, a wall-clock timestamp, a monotonically
increasing sequence number, and type-specific fields. Events are buffered
in memory by :class:`EventLog` and serialized one-JSON-object-per-line by
:meth:`EventLog.write_jsonl` (or any file-like sink).

The schema is enforced two ways:

* at emission time, the event *type* must be known and the *required*
  fields present (cheap set checks -- unknown extra fields are allowed so
  call sites can attach context);
* :func:`validate_event` re-validates a decoded JSON object, which is what
  the round-trip tests and downstream consumers use.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, TextIO

from repro.obs.registry import TelemetryError

#: event type -> required field names. Extra fields are always permitted.
EVENT_SCHEMA: Dict[str, frozenset] = {
    # placement lifecycle (emitted by PlacementAlgorithm.place)
    "placement_started": frozenset({"app", "algorithm", "nodes", "links"}),
    "placement_finished": frozenset(
        {
            "app",
            "algorithm",
            "objective_value",
            "reserved_bw_mbps",
            "new_active_hosts",
            "runtime_s",
            "candidates_scored",
            "paths_expanded",
            "paths_pruned",
            "eg_bound_runs",
            "backtracks",
            "restarts",
            "deadline_hit",
        }
    ),
    "placement_failed": frozenset({"app", "algorithm", "error"}),
    # greedy search (EG / EGC / EGBW and the EG bound runs inside BA*/DBA*)
    "node_placed": frozenset({"node", "host", "level"}),
    "backtrack": frozenset({"node", "from_level", "to_level"}),
    "restart": frozenset({"strategy"}),
    "estimate_computed": frozenset(
        {"node", "remaining", "est_bw_mbps", "est_hosts", "seconds"}
    ),
    # A* search (BA* / DBA*)
    "path_expanded": frozenset({"depth", "evaluation", "open_size"}),
    "path_pruned": frozenset({"depth", "reason"}),
    "bound_updated": frozenset({"bound", "source"}),
    "deadline_tick": frozenset(
        {"elapsed_s", "remaining_s", "pruning_range", "pops"}
    ),
    # scheduler lifecycle
    "commit": frozenset({"app", "nodes"}),
    "remove": frozenset({"app"}),
    "rollback": frozenset({"app", "reason"}),
    "reoptimize": frozenset({"app", "improved", "moves", "bounces"}),
    "update_applied": frozenset(
        {"app", "added", "removed", "changed", "moved", "unpin_rounds"}
    ),
    "update_failed": frozenset(
        {"app", "added", "removed", "changed", "unpin_rounds"}
    ),
    # admission service (repro.service)
    "request_enqueued": frozenset({"request", "app", "priority"}),
    "request_admitted": frozenset({"request", "app", "route", "latency_s"}),
    "request_rejected": frozenset({"request", "app", "reason"}),
    "request_expired": frozenset({"request", "app", "waited_s"}),
    "request_cancelled": frozenset({"request", "app"}),
    "batch_drained": frozenset({"batch", "size", "mode"}),
    "batch_fallback": frozenset({"batch", "failed_app", "reason"}),
    "shard_routed": frozenset({"app", "shard", "load"}),
    "escalated": frozenset({"app", "reason"}),
    # runtime adaptation / migration
    "migration_step": frozenset({"node", "to_host", "bounce", "moved_gb"}),
    # autoscaling lifecycle (repro.scaling)
    "scale_out": frozenset({"app", "added"}),
    "scale_in": frozenset({"app", "tier", "removed", "remaining"}),
    "scale_failed": frozenset({"app", "direction"}),
    # continuous defragmentation (repro.defrag)
    "defrag_pass": frozenset({"apps", "moves", "gain"}),
    "defrag_pass_aborted": frozenset({"app", "reason"}),
    "defrag_step_rolled_back": frozenset({"app", "node", "reason"}),
    "defrag_replan": frozenset({"attempt"}),
    # integration surrogates (Heat wrapper, Nova, Cinder)
    "api_call": frozenset({"service", "method"}),
    # fault injection and recovery (repro.faults)
    "fault_injected": frozenset({"kind", "target"}),
    "fault_cleared": frozenset({"kind", "target"}),
    "retry": frozenset({"service", "method", "attempt", "delay_s"}),
    "retries_exhausted": frozenset({"service", "method", "attempts"}),
    "host_evacuated": frozenset({"host", "apps", "moved", "failed"}),
    "degraded": frozenset(
        {"app", "from_algorithm", "to_algorithm", "reason"}
    ),
    # tracing (emitted when a span closes)
    "span": frozenset({"name", "duration_s", "depth"}),
}

#: the JSON envelope every event line carries besides its fields
ENVELOPE_FIELDS = ("type", "ts", "seq")


@dataclass(frozen=True)
class Event:
    """One structured telemetry event."""

    type: str
    ts: float
    seq: int
    fields: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """Flatten to the JSONL wire form (envelope + fields)."""
        out: Dict[str, Any] = {"type": self.type, "ts": self.ts, "seq": self.seq}
        out.update(self.fields)
        return out


def validate_event(obj: Mapping[str, Any]) -> None:
    """Validate one decoded JSONL object against the schema.

    Raises:
        TelemetryError: on a missing envelope field, unknown event type,
            or missing required field.
    """
    for name in ENVELOPE_FIELDS:
        if name not in obj:
            raise TelemetryError(f"event missing envelope field {name!r}")
    etype = obj["type"]
    required = EVENT_SCHEMA.get(etype)
    if required is None:
        raise TelemetryError(f"unknown event type {etype!r}")
    missing = required - obj.keys()
    if missing:
        raise TelemetryError(
            f"event {etype!r} missing required fields {sorted(missing)}"
        )


class EventLog:
    """In-memory buffer of events with a bounded size.

    Args:
        max_events: drop (and count) events beyond this many, protecting
            long sweeps from unbounded memory; None keeps everything.
        clock: timestamp source (defaults to :func:`time.time`).
    """

    def __init__(self, max_events: int | None = 1_000_000, clock=time.time):
        self.events: List[Event] = []
        self.max_events = max_events
        self.dropped = 0
        self._clock = clock
        self._seq = 0

    def emit(self, type: str, **fields) -> None:
        """Record one event; validates type and required fields."""
        required = EVENT_SCHEMA.get(type)
        if required is None:
            raise TelemetryError(f"unknown event type {type!r}")
        missing = required - fields.keys()
        if missing:
            raise TelemetryError(
                f"event {type!r} missing required fields {sorted(missing)}"
            )
        self._seq += 1
        if self.max_events is not None and len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(
            Event(type=type, ts=self._clock(), seq=self._seq, fields=fields)
        )

    def merge(self, other: "EventLog") -> None:
        """Append another log's events, renumbering ``seq`` to continue
        this log's sequence.

        Timestamps are preserved; the buffer cap still applies, so merged
        events beyond ``max_events`` are counted as dropped. The other
        log's own drop count carries over too, keeping the total honest.
        """
        for event in other.events:
            self._seq += 1
            if (
                self.max_events is not None
                and len(self.events) >= self.max_events
            ):
                self.dropped += 1
                continue
            self.events.append(
                Event(
                    type=event.type,
                    ts=event.ts,
                    seq=self._seq,
                    fields=event.fields,
                )
            )
        self.dropped += other.dropped

    def count(self, type: str | None = None) -> int:
        if type is None:
            return len(self.events)
        return sum(1 for e in self.events if e.type == type)

    def of_type(self, type: str) -> List[Event]:
        return [e for e in self.events if e.type == type]

    def write_jsonl(self, sink: TextIO) -> int:
        """Serialize all buffered events, one JSON object per line.

        Returns the number of lines written.
        """
        n = 0
        for event in self.events:
            sink.write(json.dumps(event.to_dict(), sort_keys=True))
            sink.write("\n")
            n += 1
        return n

    @staticmethod
    def read_jsonl(lines: Iterable[str]) -> List[Dict[str, Any]]:
        """Decode and validate JSONL lines back into event dicts."""
        out = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            validate_event(obj)
            out.append(obj)
        return out

    def clear(self) -> None:
        self.events.clear()
        self.dropped = 0
