"""Exporters: Prometheus text exposition, JSONL events, human summary.

Three consumers, three formats:

* :func:`render_prometheus` -- the text exposition format scrape endpoints
  serve (``# HELP`` / ``# TYPE`` headers, ``name{labels} value`` samples,
  cumulative histogram buckets with ``le`` labels).
* :func:`write_events_jsonl` -- the event stream, one JSON object per
  line, for offline analysis of individual scheduler decisions.
* :func:`render_summary` -- a per-placement search-effort digest for
  humans (what the CLI prints to stderr after a traced run).
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import TYPE_CHECKING, Union

from repro.obs.registry import Histogram, Registry, TelemetryError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.obs.recorder import TelemetryRecorder


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: Registry) -> str:
    """Render a registry in the Prometheus text exposition format."""
    lines = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        for sample_name, labelpairs, value in metric.samples():
            if labelpairs:
                labels = ",".join(
                    f'{k}="{_escape_label_value(str(v))}"'
                    for k, v in labelpairs
                )
                lines.append(f"{sample_name}{{{labels}}} {_format_value(value)}")
            else:
                lines.append(f"{sample_name} {_format_value(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_metrics_file(
    recorder: "TelemetryRecorder", path: Union[str, Path]
) -> None:
    """Write the recorder's registry as a Prometheus text file."""
    Path(path).write_text(
        render_prometheus(recorder.registry), encoding="utf-8"
    )


def write_events_jsonl(
    recorder: "TelemetryRecorder", path: Union[str, Path]
) -> int:
    """Write the recorder's buffered events as JSONL; returns line count."""
    with open(path, "w", encoding="utf-8") as sink:
        return recorder.events.write_jsonl(sink)


def _counter_value(registry: Registry, name: str, **labels) -> float:
    metric = registry.get(name)
    if metric is None:
        return 0.0
    try:
        return metric.value(**labels)  # type: ignore[union-attr]
    except (AttributeError, TelemetryError):
        # histograms have no .value(); label mismatches read as zero
        return 0.0


def _counter_total(registry: Registry, name: str) -> float:
    """Sum a counter over all label combinations."""
    metric = registry.get(name)
    if metric is None:
        return 0.0
    return sum(value for _, _, value in metric.samples())


def _histogram_line(registry: Registry, name: str, label: str) -> str:
    metric = registry.get(name)
    if not isinstance(metric, Histogram):
        return ""
    total_count = 0
    total_sum = 0.0
    for sample_name, _, value in metric.samples():
        if sample_name.endswith("_count"):
            total_count += int(value)
        elif sample_name.endswith("_sum"):
            total_sum += value
    if total_count == 0:
        return ""
    mean = total_sum / total_count
    return (
        f"  {label}: {total_count} observations, "
        f"total {total_sum:.3f} s, mean {mean * 1000:.3f} ms"
    )


def render_summary(recorder: "TelemetryRecorder") -> str:
    """Per-placement, human-readable search-effort summary."""
    registry = recorder.registry
    events = recorder.events
    lines = ["=== ostro telemetry summary ==="]

    placements = registry.get("ostro_placements_total")
    if placements is not None:
        per_algo = ", ".join(
            f"{dict(labelpairs).get('algorithm', '?')}: {int(value)}"
            for _, labelpairs, value in placements.samples()
        )
        total = int(_counter_total(registry, "ostro_placements_total"))
        lines.append(f"placements: {total} ({per_algo})")
    failures = int(_counter_total(registry, "ostro_placement_failures_total"))
    if failures:
        lines.append(f"placement failures: {failures}")

    lines.append(
        "search effort: "
        f"{int(_counter_value(registry, 'ostro_candidates_scored_total'))} "
        "candidates scored, "
        f"{int(_counter_value(registry, 'ostro_nodes_expanded_total'))} "
        "paths expanded, "
        f"{int(_counter_total(registry, 'ostro_paths_pruned_total'))} "
        "pruned, "
        f"{int(_counter_value(registry, 'ostro_eg_bound_runs_total'))} "
        "EG bound runs, "
        f"{int(_counter_value(registry, 'ostro_backtracks_total'))} "
        "backtracks, "
        f"{int(_counter_value(registry, 'ostro_restarts_total'))} restarts"
    )
    for name, label in (
        ("ostro_estimate_seconds", "estimates"),
        ("ostro_eg_bound_seconds", "EG bound runs"),
        ("ostro_placement_seconds", "placement runtime"),
    ):
        line = _histogram_line(registry, name, label)
        if line:
            lines.append(line)

    migrations = int(
        _counter_total(registry, "ostro_migration_steps_total")
    )
    if migrations:
        moved = _counter_value(registry, "ostro_migration_moved_gb_total")
        lines.append(f"migration: {migrations} steps, {moved:.0f} GB moved")
    api_calls = int(_counter_total(registry, "ostro_api_calls_total"))
    if api_calls:
        lines.append(f"API calls: {api_calls}")

    lines.append(
        f"events: {events.count()} recorded"
        + (f", {events.dropped} dropped" if events.dropped else "")
    )
    if recorder.tracer.roots:
        from repro.obs.trace import render_tree

        lines.append("trace:")
        lines.append(render_tree(recorder.tracer.roots, indent=2))
    return "\n".join(lines)
