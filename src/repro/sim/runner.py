"""Parameter sweeps over sizes, algorithms, and seeds."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro import obs
from repro.errors import PlacementError
from repro.sim.experiment import run_placement
from repro.sim.metrics import MeasurementRow, aggregate_rows
from repro.sim.scenarios import Scenario


def sweep(
    scenario: Scenario,
    algorithms: Sequence[str],
    sizes: Iterable[int],
    seeds: Sequence[int] = (0,),
    aggregate: bool = True,
    skip_infeasible: bool = False,
    deadline_s: Optional[float] = None,
    recorder: Optional["obs.TelemetryRecorder"] = None,
    workers: int = 1,
) -> List[MeasurementRow]:
    """Run every (algorithm, size, seed) combination of a sweep.

    Args:
        scenario: the experiment configuration.
        algorithms: registry names to compare.
        sizes: workload sizes (the figures' x axis).
        seeds: seeds to average over.
        aggregate: return per-(algorithm, size) means instead of raw rows.
        skip_infeasible: drop combinations where the algorithm fails to
            place the workload instead of propagating the error (useful
            when sweeping naive baselines close to capacity limits).
        deadline_s: fixed DBA* budget; default scales with size.
        recorder: optional telemetry recorder; when given, every run in
            the sweep records into it (and the process-wide recorder is
            restored afterwards).
        workers: fan the (size, algorithm, seed) cells across this many
            worker processes (see :mod:`repro.sim.parallel`). The default
            of 1 keeps the original serial loop; any value produces the
            same rows in the same order, wall-clock runtimes aside.

    Returns:
        Measurement rows ordered by (size, algorithm input order).
    """
    if workers > 1:
        from repro.sim.parallel import parallel_sweep

        return parallel_sweep(
            scenario,
            algorithms,
            sizes,
            seeds=seeds,
            workers=workers,
            aggregate=aggregate,
            skip_infeasible=skip_infeasible,
            deadline_s=deadline_s,
            recorder=recorder,
        )
    if recorder is not None:
        with obs.use(recorder):
            return sweep(
                scenario,
                algorithms,
                sizes,
                seeds=seeds,
                aggregate=aggregate,
                skip_infeasible=skip_infeasible,
                deadline_s=deadline_s,
            )
    rows: List[MeasurementRow] = []
    for size in sizes:
        for algorithm in algorithms:
            for seed in seeds:
                try:
                    rows.append(
                        run_placement(
                            algorithm,
                            scenario,
                            size,
                            seed=seed,
                            deadline_s=deadline_s,
                        )
                    )
                except PlacementError:
                    if not skip_infeasible:
                        raise
    return aggregate_rows(rows) if aggregate else rows
