"""Canned experiment scenarios for every table and figure.

A :class:`Scenario` bundles what Section IV fixes per experiment: the
cloud, the background load, the workload generator, the objective weights,
and an algorithm configuration tuned to the scenario's scale.

Scale policy
------------

The paper simulates 2400 hosts (150 racks) and topologies up to 200-280
VMs with a parallelized implementation. This reproduction is pure Python
on one core, so benches default to a reduced-but-faithful scale (24 racks
= 384 hosts, sweep sizes capped) that preserves every qualitative
relationship. Set ``REPRO_FULL_SCALE=1`` to run the paper's exact scales.
EXPERIMENTS.md records which scale produced the recorded numbers.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from repro.core.greedy import GreedyConfig
from repro.core.heuristic import EstimatorConfig
from repro.core.objective import Objective
from repro.core.topology import ApplicationTopology
from repro.datacenter.builder import build_datacenter, build_testbed
from repro.datacenter.loadgen import apply_table_iv_load, apply_testbed_load
from repro.datacenter.model import Cloud
from repro.datacenter.state import DataCenterState
from repro.errors import DataCenterError
from repro.faults import FaultEvent, FaultPlan
from repro.workloads.mesh import build_mesh
from repro.workloads.multitier import build_multitier
from repro.workloads.qfs import build_qfs


def full_scale() -> bool:
    """True when REPRO_FULL_SCALE=1 selects the paper's exact scales."""
    return os.environ.get("REPRO_FULL_SCALE", "").strip() in ("1", "true")


def sim_datacenter() -> Cloud:
    """The simulated data center: 150x16 hosts full scale, 24x16 reduced."""
    return build_datacenter(num_racks=150 if full_scale() else 24)


def sweep_sizes(workload: str, heterogeneous: bool) -> List[int]:
    """The figures' topology-size sweeps, scale-adjusted.

    Full scale follows the paper exactly: multi-tier and heterogeneous
    mesh 25..200 in steps of 25, homogeneous mesh 35..280 in steps of 35.
    Reduced scale keeps the same start and step but stops early -- the
    384-host data center supports proportionally smaller topologies, and
    the mesh in particular saturates its bandwidth-rich hosts beyond ~75
    VMs there (the greedy baselines start needing their restart
    machinery, and runtimes balloon past what a laptop suite should do).
    """
    if workload == "mesh" and not heterogeneous:
        step, count = 35, 8
    else:
        step, count = 25, 8
    if not full_scale():
        count = 3 if workload == "mesh" else 4
    return [step * (i + 1) for i in range(count)]


def tuned_greedy_config() -> GreedyConfig:
    """Candidate/estimator truncation tuned to the scenario scale.

    Full scale mirrors the paper's exhaustive candidate evaluation (they
    parallelized it; we rely on the exact equivalence-class dedup), with a
    truncated estimator to keep single-core runtimes workable.
    """
    if full_scale():
        return GreedyConfig(
            max_full_candidates=24, estimator=EstimatorConfig(max_nodes=32)
        )
    return GreedyConfig(
        max_full_candidates=12, estimator=EstimatorConfig(max_nodes=24)
    )


@dataclass(frozen=True)
class ScenarioSpec:
    """A picklable recipe for rebuilding a :class:`Scenario` in a worker.

    Scenario objects close over lambdas and cannot cross a process
    boundary; a spec carries only a module-level factory plus its keyword
    arguments, which pickle by name. The canned factories below attach
    their own spec to every scenario they build, so
    :mod:`repro.sim.parallel` can fan sweep cells out to worker processes
    and have each worker rebuild an identical scenario from scratch.
    """

    factory: Callable[..., "Scenario"]
    kwargs: Tuple[Tuple[str, Any], ...] = ()

    def build(self) -> "Scenario":
        """Rebuild the scenario this spec describes."""
        return self.factory(**dict(self.kwargs))


@dataclass
class Scenario:
    """One experiment configuration.

    Attributes:
        name: scenario label used in reports.
        build_cloud: constructs the physical structure.
        build_state: installs the background load for a seed.
        build_topology: builds the workload for a (size, seed) pair.
        theta_bw / theta_c: objective weights for the experiment.
        greedy_config: algorithm configuration for this scale.
        workload: workload label for measurement rows.
        heterogeneous: requirement regime label.
        spec: picklable rebuild recipe, required for parallel sweeps
            (set automatically by the canned factories).
    """

    name: str
    build_cloud: Callable[[], Cloud]
    build_state: Callable[[Cloud, int], DataCenterState]
    build_topology: Callable[[int, int], ApplicationTopology]
    theta_bw: float = 0.6
    theta_c: float = 0.4
    greedy_config: GreedyConfig = field(default_factory=tuned_greedy_config)
    workload: str = "generic"
    heterogeneous: bool = True
    spec: Optional[ScenarioSpec] = field(
        default=None, repr=False, compare=False
    )

    def objective(self, topology: ApplicationTopology, cloud: Cloud) -> Objective:
        """The scenario's objective for a concrete topology."""
        return Objective.for_topology(
            topology, cloud, self.theta_bw, self.theta_c
        )


def _loaded_state(loader) -> Callable[[Cloud, int], DataCenterState]:
    def build(cloud: Cloud, seed: int) -> DataCenterState:
        state = DataCenterState(cloud)
        if loader is not None:
            loader(state, seed=seed)
        return state

    return build


def qfs_testbed_scenario(uniform: bool = False) -> Scenario:
    """Tables I & II: QFS on the 16-host testbed, theta_bw=0.99.

    ``uniform=False`` preloads 12 of the 16 hosts (Section IV-A);
    ``uniform=True`` leaves every host idle (Table II).
    """
    loader = None if uniform else apply_testbed_load
    return Scenario(
        name="qfs-uniform" if uniform else "qfs-nonuniform",
        build_cloud=build_testbed,
        build_state=_loaded_state(loader),
        build_topology=lambda size, seed: build_qfs(chunk_servers=size),
        theta_bw=0.99,
        theta_c=0.01,
        greedy_config=GreedyConfig(),  # testbed scale: exhaustive
        workload="qfs",
        heterogeneous=True,
        spec=ScenarioSpec(qfs_testbed_scenario, (("uniform", uniform),)),
    )


def multitier_scenario(heterogeneous: bool = True) -> Scenario:
    """Figures 6-9: multi-tier workload on the simulated data center.

    Heterogeneous runs use Table III requirements and Table IV non-uniform
    availability; homogeneous runs use the uniform idle data center, as in
    the paper.
    """
    loader = apply_table_iv_load if heterogeneous else None
    return Scenario(
        name=f"multitier-{'het' if heterogeneous else 'hom'}",
        build_cloud=sim_datacenter,
        build_state=_loaded_state(loader),
        build_topology=lambda size, seed: build_multitier(
            total_vms=size, heterogeneous=heterogeneous
        ),
        workload="multitier",
        heterogeneous=heterogeneous,
        spec=ScenarioSpec(
            multitier_scenario, (("heterogeneous", heterogeneous),)
        ),
    )


def mesh_scenario(heterogeneous: bool = True) -> Scenario:
    """Figures 10-11: mesh workload on the simulated data center."""
    loader = apply_table_iv_load if heterogeneous else None
    return Scenario(
        name=f"mesh-{'het' if heterogeneous else 'hom'}",
        build_cloud=sim_datacenter,
        build_state=_loaded_state(loader),
        build_topology=lambda size, seed: build_mesh(
            total_vms=size, heterogeneous=heterogeneous, seed=seed
        ),
        workload="mesh",
        heterogeneous=heterogeneous,
        spec=ScenarioSpec(mesh_scenario, (("heterogeneous", heterogeneous),)),
    )


def chaos_datacenter() -> Cloud:
    """The chaos experiments' data center: 6 racks = 96 hosts.

    Deliberately smaller than :func:`sim_datacenter` -- chaos runs
    deploy many applications, evacuate hosts, and audit conservation
    after every operation, so the suite keeps them laptop-fast.
    """
    return build_datacenter(num_racks=6)


def make_fault_plan(
    cloud: Cloud,
    seed: int = 0,
    hosts: int = 0,
    links: int = 0,
    api_transient_rate: float = 0.0,
    api_permanent_rate: float = 0.0,
    steps: int = 8,
    recover_after_steps: Optional[int] = None,
) -> FaultPlan:
    """Build a seeded :class:`~repro.faults.plan.FaultPlan` for a cloud.

    Draws ``hosts`` distinct victim hosts and ``links`` distinct victim
    rack uplinks with a :class:`random.Random` seeded by ``seed`` (the
    same seed on the same cloud always yields the same plan), and
    spreads the failures evenly across ``steps`` scenario steps. With
    ``recover_after_steps`` set, every failed element is scheduled to
    come back that many steps after it fails.

    Args:
        cloud: the physical structure victims are drawn from.
        seed: seeds both the victim draw and the plan's API-fault RNG.
        hosts: how many hosts to crash.
        links: how many rack (ToR) uplinks to fail.
        api_transient_rate: per-call probability of a transient API fault.
        api_permanent_rate: per-call probability of a permanent API fault.
        steps: scenario length the failures are spread over.
        recover_after_steps: optional repair delay, in steps.
    """
    if hosts > len(cloud.hosts):
        raise DataCenterError(
            f"cannot fail {hosts} of {len(cloud.hosts)} hosts"
        )
    if links > len(cloud.racks):
        raise DataCenterError(
            f"cannot fail {links} of {len(cloud.racks)} rack uplinks"
        )
    rng = random.Random(seed)
    targets = [
        ("host_down", "host_up", name)
        for name in rng.sample([h.name for h in cloud.hosts], hosts)
    ] + [
        ("link_down", "link_up", f"rack:{name}")
        for name in rng.sample([r.name for r in cloud.racks], links)
    ]
    events = []
    spacing = max(1, steps // (len(targets) + 1))
    for i, (down, up, target) in enumerate(targets):
        at_step = spacing * (i + 1)
        events.append(FaultEvent(at_step=at_step, kind=down, target=target))
        if recover_after_steps is not None:
            events.append(
                FaultEvent(
                    at_step=at_step + recover_after_steps,
                    kind=up,
                    target=target,
                )
            )
    return FaultPlan(
        seed=seed,
        api_transient_rate=api_transient_rate,
        api_permanent_rate=api_permanent_rate,
        events=tuple(events),
    )


def dba_deadline_s(size: int) -> float:
    """Default DBA* deadline for sweep experiments, scaled to size.

    The paper gives DBA* seconds-scale deadlines that grow with the
    topology (Fig. 9 shows ~2-16 s). Reduced scale uses a proportionally
    smaller budget.
    """
    base = 0.2 if not full_scale() else 0.1
    return max(0.5, base * size)
