"""Cluster-utilization reporting.

Summarizes a :class:`~repro.datacenter.state.DataCenterState` the way a
capacity dashboard would: per-resource utilization, active-host counts,
and the distribution of NIC/uplink headroom — the quantities the paper's
objective trades off. Used by the CLI and handy in notebooks and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.datacenter.state import DataCenterState


@dataclass(frozen=True)
class UtilizationReport:
    """Aggregate utilization of one data-center state.

    Attributes:
        hosts_total / hosts_active: host counts.
        cpu_used_frac / mem_used_frac / disk_used_frac: cluster-wide used
            fractions of each capacity pool.
        nic_used_frac: used fraction of the aggregate host-NIC capacity.
        uplink_used_frac: used fraction of the aggregate non-NIC links
            (ToR/pod/WAN uplinks); 0.0 when the cloud has none.
        busiest_nic_frac: utilization of the single most-loaded host NIC.
    """

    hosts_total: int
    hosts_active: int
    cpu_used_frac: float
    mem_used_frac: float
    disk_used_frac: float
    nic_used_frac: float
    uplink_used_frac: float
    busiest_nic_frac: float

    def as_dict(self) -> Dict[str, float]:
        """Flat dict form for logging/JSON."""
        return {
            "hosts_total": self.hosts_total,
            "hosts_active": self.hosts_active,
            "cpu_used_frac": self.cpu_used_frac,
            "mem_used_frac": self.mem_used_frac,
            "disk_used_frac": self.disk_used_frac,
            "nic_used_frac": self.nic_used_frac,
            "uplink_used_frac": self.uplink_used_frac,
            "busiest_nic_frac": self.busiest_nic_frac,
        }


def _used_fraction(total: float, free: float) -> float:
    if total <= 0:
        return 0.0
    return max(0.0, min(1.0, (total - free) / total))


def utilization_report(state: DataCenterState) -> UtilizationReport:
    """Compute the aggregate utilization of a state."""
    cloud = state.cloud
    cpu_total = sum(h.cpu_cores for h in cloud.hosts)
    mem_total = sum(h.mem_gb for h in cloud.hosts)
    disk_total = sum(d.capacity_gb for d in cloud.disks)
    # Deduplicate before summing: when several hosts share one link index
    # (a chassis NIC, a shared uplink model), counting the link once per
    # host would inflate the capacity pool and understate utilization.
    nic_set = {h.link_index for h in cloud.hosts}
    nic_total = sum(cloud.link_capacity_mbps[i] for i in nic_set)
    uplink_indices = [
        i for i in range(cloud.num_links) if i not in nic_set
    ]
    uplink_total = sum(cloud.link_capacity_mbps[i] for i in uplink_indices)

    busiest = 0.0
    for i in nic_set:
        capacity = cloud.link_capacity_mbps[i]
        if capacity > 0:
            busiest = max(
                busiest, _used_fraction(capacity, state.free_bw[i])
            )

    return UtilizationReport(
        hosts_total=cloud.num_hosts,
        hosts_active=len(state.active_host_indices()),
        cpu_used_frac=_used_fraction(cpu_total, sum(state.free_cpu)),
        mem_used_frac=_used_fraction(mem_total, sum(state.free_mem)),
        disk_used_frac=_used_fraction(disk_total, sum(state.free_disk)),
        nic_used_frac=_used_fraction(
            nic_total, sum(state.free_bw[i] for i in nic_set)
        ),
        uplink_used_frac=_used_fraction(
            uplink_total, sum(state.free_bw[i] for i in uplink_indices)
        ),
        busiest_nic_frac=busiest,
    )


def format_utilization(report: UtilizationReport) -> str:
    """Render a dashboard-style text block."""
    lines: List[str] = [
        f"hosts: {report.hosts_active}/{report.hosts_total} active",
        f"cpu:    {report.cpu_used_frac:6.1%} used",
        f"memory: {report.mem_used_frac:6.1%} used",
        f"disk:   {report.disk_used_frac:6.1%} used",
        f"NICs:   {report.nic_used_frac:6.1%} used "
        f"(busiest {report.busiest_nic_frac:.1%})",
        f"uplinks:{report.uplink_used_frac:7.1%} used",
    ]
    return "\n".join(lines)
