"""Cluster-utilization reporting.

Summarizes a :class:`~repro.datacenter.state.DataCenterState` the way a
capacity dashboard would: per-resource utilization, active-host counts,
and the distribution of NIC/uplink headroom — the quantities the paper's
objective trades off. Used by the CLI and handy in notebooks and tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional

from repro.datacenter.state import DataCenterState

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.placement import Placement
    from repro.datacenter.model import Cloud


@dataclass(frozen=True)
class UtilizationReport:
    """Aggregate utilization of one data-center state.

    Attributes:
        hosts_total / hosts_active: host counts.
        cpu_used_frac / mem_used_frac / disk_used_frac: cluster-wide used
            fractions of each capacity pool.
        nic_used_frac: used fraction of the aggregate host-NIC capacity.
        uplink_used_frac: used fraction of the aggregate non-NIC links
            (ToR/pod/WAN uplinks); 0.0 when the cloud has none.
        busiest_nic_frac: utilization of the single most-loaded host NIC.
    """

    hosts_total: int
    hosts_active: int
    cpu_used_frac: float
    mem_used_frac: float
    disk_used_frac: float
    nic_used_frac: float
    uplink_used_frac: float
    busiest_nic_frac: float

    def as_dict(self) -> Dict[str, float]:
        """Flat dict form for logging/JSON."""
        return {
            "hosts_total": self.hosts_total,
            "hosts_active": self.hosts_active,
            "cpu_used_frac": self.cpu_used_frac,
            "mem_used_frac": self.mem_used_frac,
            "disk_used_frac": self.disk_used_frac,
            "nic_used_frac": self.nic_used_frac,
            "uplink_used_frac": self.uplink_used_frac,
            "busiest_nic_frac": self.busiest_nic_frac,
        }


def _used_fraction(total: float, free: float) -> float:
    if total <= 0:
        return 0.0
    return max(0.0, min(1.0, (total - free) / total))


def utilization_report(state: DataCenterState) -> UtilizationReport:
    """Compute the aggregate utilization of a state."""
    cloud = state.cloud
    cpu_total = sum(h.cpu_cores for h in cloud.hosts)
    mem_total = sum(h.mem_gb for h in cloud.hosts)
    disk_total = sum(d.capacity_gb for d in cloud.disks)
    # Deduplicate before summing: when several hosts share one link index
    # (a chassis NIC, a shared uplink model), counting the link once per
    # host would inflate the capacity pool and understate utilization.
    nic_set = {h.link_index for h in cloud.hosts}
    nic_total = sum(cloud.link_capacity_mbps[i] for i in nic_set)
    uplink_indices = [
        i for i in range(cloud.num_links) if i not in nic_set
    ]
    uplink_total = sum(cloud.link_capacity_mbps[i] for i in uplink_indices)

    busiest = 0.0
    for i in nic_set:
        capacity = cloud.link_capacity_mbps[i]
        if capacity > 0:
            busiest = max(
                busiest, _used_fraction(capacity, state.free_bw[i])
            )

    return UtilizationReport(
        hosts_total=cloud.num_hosts,
        hosts_active=len(state.active_host_indices()),
        cpu_used_frac=_used_fraction(cpu_total, sum(state.free_cpu)),
        mem_used_frac=_used_fraction(mem_total, sum(state.free_mem)),
        disk_used_frac=_used_fraction(disk_total, sum(state.free_disk)),
        nic_used_frac=_used_fraction(
            nic_total, sum(state.free_bw[i] for i in nic_set)
        ),
        uplink_used_frac=_used_fraction(
            uplink_total, sum(state.free_bw[i] for i in uplink_indices)
        ),
        busiest_nic_frac=busiest,
    )


def hosts_cpu_used_frac(
    state: DataCenterState, hosts: Iterable[int]
) -> float:
    """Used CPU fraction over a specific host subset (0.0 when empty).

    The host-pressure input of the autoscaling signal
    (:func:`repro.scaling.signals.tier_utilization`): the same
    used-over-nominal ratio :func:`utilization_report` computes cluster-
    wide, restricted to the hosts one application actually occupies.
    """
    cloud = state.cloud
    host_list = sorted(set(hosts))
    total = sum(cloud.hosts[h].cpu_cores for h in host_list)
    free = sum(state.free_cpu[h] for h in host_list)
    return _used_fraction(total, free)


@dataclass(frozen=True)
class FragmentationReport:
    """Fragmentation view of one data-center state.

    Two complementary indices, both in ``[0, 1]`` and both 0 on an empty
    or perfectly consolidated cloud:

    Attributes:
        stranded_cpu_frac / stranded_mem_frac: fraction of the cluster's
            *nominal* CPU / memory capacity that sits free on hosts that
            are already active -- capacity the host-count term of the
            objective has paid for but nothing uses. An empty DC strands
            nothing (no host is active); a perfectly packed DC strands
            nothing (active hosts have no free capacity); scattering the
            same load over more hosts strands more.
        stranded_index: mean of the CPU and memory stranded fractions.
        dispersion_index: mean over committed applications of
            :func:`placement_spread` -- 0 when every application is
            fully consolidated on one host, growing as applications
            spread over more hosts and those hosts over more racks.
            0 with no applications.
        fragmentation_index: mean of ``stranded_index`` and
            ``dispersion_index`` -- the defragmentation trigger metric
            (see :mod:`repro.defrag`).
    """

    stranded_cpu_frac: float
    stranded_mem_frac: float
    stranded_index: float
    dispersion_index: float
    fragmentation_index: float

    def as_dict(self) -> Dict[str, float]:
        """Flat dict form for logging/JSON (insertion order is fixed, so
        sorted-key serialization is byte-stable across recomputation)."""
        return {
            "stranded_cpu_frac": self.stranded_cpu_frac,
            "stranded_mem_frac": self.stranded_mem_frac,
            "stranded_index": self.stranded_index,
            "dispersion_index": self.dispersion_index,
            "fragmentation_index": self.fragmentation_index,
        }


def stranded_capacity_index(state: DataCenterState) -> float:
    """Mean fraction of nominal CPU/memory capacity free on active hosts."""
    cloud = state.cloud
    cpu_total = sum(h.cpu_cores for h in cloud.hosts)
    mem_total = sum(h.mem_gb for h in cloud.hosts)
    active = state.active_host_indices()
    stranded_cpu = sum(state.free_cpu[h] for h in active)
    stranded_mem = sum(state.free_mem[h] for h in active)
    cpu_frac = stranded_cpu / cpu_total if cpu_total > 0 else 0.0
    mem_frac = stranded_mem / mem_total if mem_total > 0 else 0.0
    return (cpu_frac + mem_frac) / 2.0


def placement_spread(cloud: "Cloud", placement: "Placement") -> float:
    """Topology-aware spread of one placement, in ``[0, 1]``.

    The mean of two terms: how many hosts the application touches beyond
    the single-host ideal (``(hosts - 1) / (nodes - 1)``), and how many
    racks those hosts straddle beyond the single-rack ideal
    (``(racks - 1) / (hosts - 1)``). A one-host placement scores 0; a
    placement whose every node sits on its own host in its own rack
    scores 1. The rack term is what makes a cross-rack pair of hosts
    read as more fragmented than a same-rack pair -- exactly the spread
    a network-aware defragmenter can profitably undo.
    """
    nodes = len(placement.assignments)
    if nodes == 0:
        return 0.0
    host_set = {a.host for a in placement.assignments.values()}
    hosts = len(host_set)
    host_spread = (hosts - 1) / max(1, nodes - 1)
    if hosts <= 1:
        return host_spread / 2.0
    racks = len({cloud.hosts[h].rack.index for h in host_set})
    rack_spread = (racks - 1) / (hosts - 1)
    return (host_spread + rack_spread) / 2.0


def dispersion_index(
    cloud: "Cloud", placements: Iterable["Placement"]
) -> float:
    """Mean :func:`placement_spread` over committed applications."""
    spreads: List[float] = []
    for placement in placements:
        if not placement.assignments:
            continue
        spreads.append(placement_spread(cloud, placement))
    if not spreads:
        return 0.0
    return sum(spreads) / len(spreads)


def fragmentation_report(
    state: DataCenterState,
    placements: Optional[Iterable["Placement"]] = None,
) -> FragmentationReport:
    """Compute the fragmentation indices of a state.

    Args:
        state: the live availability state.
        placements: committed placements for the dispersion term (e.g.
            ``(d.placement for d in ostro.applications.values())``);
            omitted, dispersion reads 0 and only stranded capacity
            contributes.
    """
    cloud = state.cloud
    cpu_total = sum(h.cpu_cores for h in cloud.hosts)
    mem_total = sum(h.mem_gb for h in cloud.hosts)
    active = state.active_host_indices()
    cpu_frac = (
        sum(state.free_cpu[h] for h in active) / cpu_total
        if cpu_total > 0
        else 0.0
    )
    mem_frac = (
        sum(state.free_mem[h] for h in active) / mem_total
        if mem_total > 0
        else 0.0
    )
    stranded = (cpu_frac + mem_frac) / 2.0
    dispersion = (
        dispersion_index(cloud, placements)
        if placements is not None
        else 0.0
    )
    return FragmentationReport(
        stranded_cpu_frac=cpu_frac,
        stranded_mem_frac=mem_frac,
        stranded_index=stranded,
        dispersion_index=dispersion,
        fragmentation_index=(stranded + dispersion) / 2.0,
    )


def format_utilization(report: UtilizationReport) -> str:
    """Render a dashboard-style text block."""
    lines: List[str] = [
        f"hosts: {report.hosts_active}/{report.hosts_total} active",
        f"cpu:    {report.cpu_used_frac:6.1%} used",
        f"memory: {report.mem_used_frac:6.1%} used",
        f"disk:   {report.disk_used_frac:6.1%} used",
        f"NICs:   {report.nic_used_frac:6.1%} used "
        f"(busiest {report.busiest_nic_frac:.1%})",
        f"uplinks:{report.uplink_used_frac:7.1%} used",
    ]
    return "\n".join(lines)
