"""Measurement records for the evaluation harness.

Every placement run produces a :class:`MeasurementRow` carrying exactly the
quantities the paper reports: reserved bandwidth, newly activated hosts,
hosts used, and scheduler runtime. :func:`aggregate_rows` averages rows
over seeds (the paper averages 20 executions per data point in Fig. 6).

:class:`ChaosReport` carries the robustness metrics of a fault-injection
run (see :mod:`repro.sim.chaos`): availability, recovery time, and the
capacity-leak audit trail.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import asdict, dataclass, field, replace
from statistics import mean
from typing import Dict, Iterable, List, Tuple

from repro.core.base import PlacementResult


@dataclass(frozen=True)
class MeasurementRow:
    """One (algorithm, scenario, size, seed) measurement.

    Attributes:
        algorithm: algorithm label ("EGC", "EG", "DBA*", ...).
        workload: workload label ("qfs", "multitier", "mesh").
        size: topology size in nodes (VMs + volumes).
        heterogeneous: requirement regime of the run.
        seed: load/workload seed of the run.
        reserved_bw_mbps: total reserved bandwidth (the paper's tables
            report Mbps; the figures Gbps -- see ``reserved_bw_gbps``).
        new_active_hosts: previously idle hosts activated.
        hosts_used: distinct hosts hosting at least one node of this
            application.
        baseline_active_hosts: hosts already active (background load)
            before this placement.
        runtime_s: scheduler wall-clock runtime.
        objective_value: normalized objective of the placement.
    """

    algorithm: str
    workload: str
    size: int
    heterogeneous: bool
    seed: int
    reserved_bw_mbps: float
    new_active_hosts: float
    hosts_used: float
    runtime_s: float
    objective_value: float
    baseline_active_hosts: float = 0.0

    @property
    def total_active_hosts(self) -> float:
        """Active hosts in the whole data center after the placement --
        the paper's Figs. 8/11 metric (background + newly activated)."""
        return self.baseline_active_hosts + self.new_active_hosts

    @property
    def reserved_bw_gbps(self) -> float:
        """Reserved bandwidth in Gbps (the figures' unit)."""
        return self.reserved_bw_mbps / 1000.0

    @staticmethod
    def from_result(
        result: PlacementResult,
        algorithm: str,
        workload: str,
        size: int,
        heterogeneous: bool,
        seed: int,
        baseline_active_hosts: float = 0.0,
    ) -> "MeasurementRow":
        """Build a row from a placement result."""
        return MeasurementRow(
            algorithm=algorithm,
            workload=workload,
            size=size,
            heterogeneous=heterogeneous,
            seed=seed,
            reserved_bw_mbps=result.reserved_bw_mbps,
            new_active_hosts=result.new_active_hosts,
            hosts_used=result.placement.hosts_used,
            runtime_s=result.runtime_s,
            objective_value=result.objective_value,
            baseline_active_hosts=baseline_active_hosts,
        )


@dataclass
class ChaosReport:
    """Outcome of one seeded chaos run (:func:`repro.sim.chaos.run_chaos`).

    Attributes:
        seed: the fault plan's seed (same seed => identical report).
        apps_requested: applications the workload tried to deploy.
        apps_deployed: applications still committed at the end of the run
            (deploy failures and failed evacuations both subtract).
        deploy_failures: deploy attempts that failed even after retries
            and algorithm degradation.
        degradations: placements that stepped down the algorithm ladder
            (deploys and evacuation re-placements alike).
        hosts_failed / links_failed: scheduled infrastructure faults
            actually applied.
        api_faults: surrogate API faults injected (transient + permanent).
        evacuations: host evacuations performed.
        nodes_moved: ``app/node`` re-placements performed by evacuations.
        nodes_lost: victim nodes that could not be re-placed anywhere
            (their whole application was released).
        recovery_s: total scheduler runtime spent on evacuation
            re-placements -- the recovery-time metric.
        invariant_violations: capacity-leak audit findings, each prefixed
            with the operation after which it was detected (empty = every
            audit passed).
        fingerprint: order-independent digest of the final committed
            placements; bit-identical across same-seed runs.
        defrag_enabled: whether the background defragmenter ticked during
            the run (all defrag fields stay 0 when it did not).
        defrag_passes: defrag passes that reached execution.
        defrag_aborted_passes: passes aborted by a fault, a stale plan,
            or the planning deadline.
        defrag_replans: fresh planning rounds after aborted passes.
        defrag_moves: migration steps executed (bounces included).
        defrag_move_seconds: virtual VM move-seconds of unavailability
            charged for those steps -- the availability-impact metric.
        frag_recovered: cumulative drop of the fragmentation index
            across executed passes (fragmentation recovered).
        scaling_enabled: whether the autoscaling loop evaluated during
            the run (all scaling fields stay 0 when it did not).
        scale_evaluations: scale evaluations performed.
        scale_outs / scale_ins: scaling actions applied.
        scale_out_failures: grow attempts rejected by the placement
            search (or aborted by an injected fault).
        vms_added / vms_removed: total member delta applied by scaling.
    """

    seed: int
    apps_requested: int = 0
    apps_deployed: int = 0
    deploy_failures: int = 0
    degradations: int = 0
    hosts_failed: int = 0
    links_failed: int = 0
    api_faults: int = 0
    evacuations: int = 0
    nodes_moved: int = 0
    nodes_lost: int = 0
    recovery_s: float = 0.0
    invariant_violations: List[str] = field(default_factory=list)
    fingerprint: str = ""
    defrag_enabled: bool = False
    defrag_passes: int = 0
    defrag_aborted_passes: int = 0
    defrag_replans: int = 0
    defrag_moves: int = 0
    defrag_move_seconds: float = 0.0
    frag_recovered: float = 0.0
    scaling_enabled: bool = False
    scale_evaluations: int = 0
    scale_outs: int = 0
    scale_ins: int = 0
    scale_out_failures: int = 0
    vms_added: int = 0
    vms_removed: int = 0

    @property
    def availability(self) -> float:
        """Fraction of requested applications still deployed at the end."""
        if self.apps_requested == 0:
            return 1.0
        return self.apps_deployed / self.apps_requested

    def summary_lines(self) -> List[str]:
        """Human-readable report body (one metric per line)."""
        defrag_lines = (
            [
                f"defrag passes:        {self.defrag_passes}"
                f" ({self.defrag_moves} moves,"
                f" {self.defrag_aborted_passes} aborted,"
                f" {self.defrag_replans} replans)",
                f"defrag move time:     {self.defrag_move_seconds:.1f}"
                " VM-move-s",
                f"frag recovered:       {self.frag_recovered:.4f}",
            ]
            if self.defrag_enabled
            else []
        )
        scaling_lines = (
            [
                f"scale actions:        {self.scale_outs} out /"
                f" {self.scale_ins} in"
                f" ({self.scale_evaluations} evaluations,"
                f" {self.scale_out_failures} failures)",
                f"vms scaled:           +{self.vms_added}"
                f" / -{self.vms_removed}",
            ]
            if self.scaling_enabled
            else []
        )
        return [
            f"seed:                 {self.seed}",
            f"apps deployed:        {self.apps_deployed}/{self.apps_requested}"
            f" (availability {self.availability:.2%})",
            f"deploy failures:      {self.deploy_failures}",
            f"degradations:         {self.degradations}",
            f"hosts failed:         {self.hosts_failed}",
            f"links failed:         {self.links_failed}",
            f"api faults injected:  {self.api_faults}",
            f"evacuations:          {self.evacuations}"
            f" ({self.nodes_moved} nodes moved, {self.nodes_lost} lost)",
            f"recovery time:        {self.recovery_s:.3f} s",
            *defrag_lines,
            *scaling_lines,
            f"capacity leaks:       {len(self.invariant_violations)}",
            f"fingerprint:          {self.fingerprint[:16]}",
        ]


def nearest_rank_percentile(values: Iterable[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation).

    Implements the textbook nearest-rank definition: for ``0 < q <= 1``
    and ``n`` sorted values, the result is the value at 1-indexed rank
    ``ceil(q * n)`` -- always one of the inputs, never interpolated.
    Edge behavior, pinned by tests:

    * empty input returns ``0.0`` (there is no rank to pick);
    * ``n == 1`` returns the single value for every ``q``;
    * ``q <= 0`` returns the minimum (rank clamps up to 1);
    * ``q >= 1`` returns the maximum (rank clamps down to ``n``).

    This is the single shared helper for latency/runtime percentiles;
    callers may pass unsorted data.
    """
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = max(0, math.ceil(q * len(ordered)) - 1)
    return ordered[min(index, len(ordered) - 1)]


def rows_fingerprint(rows: Iterable[MeasurementRow]) -> str:
    """Order-sensitive SHA-256 over the deterministic fields of rows.

    Wall-clock ``runtime_s`` is excluded: it is the one field that
    legitimately varies between executions, while every other field (and
    the row order) must be bit-identical between serial and parallel runs
    of the same sweep. Used by the parallel-determinism tests and the
    ``BENCH_parallel_sweep.json`` entry.
    """
    digest = hashlib.sha256()
    for row in rows:
        payload = asdict(row)
        payload.pop("runtime_s", None)
        digest.update(json.dumps(payload, sort_keys=True).encode("utf-8"))
        digest.update(b"\n")
    return digest.hexdigest()


def aggregate_rows(rows: Iterable[MeasurementRow]) -> List[MeasurementRow]:
    """Average rows over seeds, grouped by (algorithm, workload, size, regime).

    The returned rows carry ``seed=-1`` and the arithmetic means of every
    measured quantity, in first-appearance group order.
    """
    groups: Dict[Tuple, List[MeasurementRow]] = {}
    for row in rows:
        key = (row.algorithm, row.workload, row.size, row.heterogeneous)
        groups.setdefault(key, []).append(row)
    aggregated = []
    for members in groups.values():
        first = members[0]
        aggregated.append(
            replace(
                first,
                seed=-1,
                reserved_bw_mbps=mean(m.reserved_bw_mbps for m in members),
                new_active_hosts=mean(m.new_active_hosts for m in members),
                hosts_used=mean(m.hosts_used for m in members),
                runtime_s=mean(m.runtime_s for m in members),
                objective_value=mean(m.objective_value for m in members),
                baseline_active_hosts=mean(
                    m.baseline_active_hosts for m in members
                ),
            )
        )
    return aggregated
