"""Measurement records for the evaluation harness.

Every placement run produces a :class:`MeasurementRow` carrying exactly the
quantities the paper reports: reserved bandwidth, newly activated hosts,
hosts used, and scheduler runtime. :func:`aggregate_rows` averages rows
over seeds (the paper averages 20 executions per data point in Fig. 6).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from statistics import mean
from typing import Dict, Iterable, List, Tuple

from repro.core.base import PlacementResult


@dataclass(frozen=True)
class MeasurementRow:
    """One (algorithm, scenario, size, seed) measurement.

    Attributes:
        algorithm: algorithm label ("EGC", "EG", "DBA*", ...).
        workload: workload label ("qfs", "multitier", "mesh").
        size: topology size in nodes (VMs + volumes).
        heterogeneous: requirement regime of the run.
        seed: load/workload seed of the run.
        reserved_bw_mbps: total reserved bandwidth (the paper's tables
            report Mbps; the figures Gbps -- see ``reserved_bw_gbps``).
        new_active_hosts: previously idle hosts activated.
        hosts_used: distinct hosts hosting at least one node of this
            application.
        baseline_active_hosts: hosts already active (background load)
            before this placement.
        runtime_s: scheduler wall-clock runtime.
        objective_value: normalized objective of the placement.
    """

    algorithm: str
    workload: str
    size: int
    heterogeneous: bool
    seed: int
    reserved_bw_mbps: float
    new_active_hosts: float
    hosts_used: float
    runtime_s: float
    objective_value: float
    baseline_active_hosts: float = 0.0

    @property
    def total_active_hosts(self) -> float:
        """Active hosts in the whole data center after the placement --
        the paper's Figs. 8/11 metric (background + newly activated)."""
        return self.baseline_active_hosts + self.new_active_hosts

    @property
    def reserved_bw_gbps(self) -> float:
        """Reserved bandwidth in Gbps (the figures' unit)."""
        return self.reserved_bw_mbps / 1000.0

    @staticmethod
    def from_result(
        result: PlacementResult,
        algorithm: str,
        workload: str,
        size: int,
        heterogeneous: bool,
        seed: int,
        baseline_active_hosts: float = 0.0,
    ) -> "MeasurementRow":
        """Build a row from a placement result."""
        return MeasurementRow(
            algorithm=algorithm,
            workload=workload,
            size=size,
            heterogeneous=heterogeneous,
            seed=seed,
            reserved_bw_mbps=result.reserved_bw_mbps,
            new_active_hosts=result.new_active_hosts,
            hosts_used=result.placement.hosts_used,
            runtime_s=result.runtime_s,
            objective_value=result.objective_value,
            baseline_active_hosts=baseline_active_hosts,
        )


def aggregate_rows(rows: Iterable[MeasurementRow]) -> List[MeasurementRow]:
    """Average rows over seeds, grouped by (algorithm, workload, size, regime).

    The returned rows carry ``seed=-1`` and the arithmetic means of every
    measured quantity, in first-appearance group order.
    """
    groups: Dict[Tuple, List[MeasurementRow]] = {}
    for row in rows:
        key = (row.algorithm, row.workload, row.size, row.heterogeneous)
        groups.setdefault(key, []).append(row)
    aggregated = []
    for members in groups.values():
        first = members[0]
        aggregated.append(
            replace(
                first,
                seed=-1,
                reserved_bw_mbps=mean(m.reserved_bw_mbps for m in members),
                new_active_hosts=mean(m.new_active_hosts for m in members),
                hosts_used=mean(m.hosts_used for m in members),
                runtime_s=mean(m.runtime_s for m in members),
                objective_value=mean(m.objective_value for m in members),
                baseline_active_hosts=mean(
                    m.baseline_active_hosts for m in members
                ),
            )
        )
    return aggregated
