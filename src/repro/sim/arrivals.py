"""Workload replay: application arrivals and departures over time.

The paper evaluates single placements; an operator cares how a scheduler
behaves under *churn* — applications arriving, living, and leaving,
fragmenting the data center as they go. This module provides:

* :class:`WorkloadTrace` — a deterministic, seeded sequence of arrival and
  departure events, generated from exponential inter-arrival times and
  lifetimes (an M/M/∞-style tenant stream) over a mix of application
  templates;
* :func:`replay` — run a trace against a fresh :class:`~repro.core.
  scheduler.Ostro` with a chosen algorithm, admitting what fits and
  rejecting what does not;
* :class:`ReplayReport` — acceptance rate, utilization along the way, and
  the per-event log.

Rejections are a *scheduler quality* signal: two algorithms see exactly
the same trace, so a lower rejection count means placements that fragment
the cloud less.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.scheduler import Ostro
from repro.core.topology import ApplicationTopology
from repro.datacenter.model import Cloud
from repro.datacenter.state import DataCenterState
from repro.errors import PlacementError, ReproError
from repro.sim.utilization import utilization_report


@dataclass(frozen=True)
class TraceEvent:
    """One event of a workload trace.

    Attributes:
        time: event timestamp (simulated seconds).
        kind: "arrive", "depart", "update" (online tier growth), or
            "scale" (an autoscaling evaluation point).
        app_id: unique application id within the trace.
    """

    time: float
    kind: str
    app_id: int


_KIND_RANK = {"depart": 0, "arrive": 1, "update": 2, "scale": 3}


def event_sort_key(event: TraceEvent) -> tuple:
    """Canonical trace ordering: time, then departures before arrivals.

    Departures at a timestamp must drain *before* a simultaneous arrival
    is admitted, or capacity that is free at that instant looks occupied
    and the arrival is spuriously rejected. (Sorting on the raw ``kind``
    string gets this backwards: "arrive" < "depart" lexicographically.)
    Updates order after arrivals at the same instant (an application
    must exist before it can grow), and scale evaluations order last (a
    same-instant update must land before the tier is measured).

    Unknown kinds are an error: silently defaulting them to the arrival
    rank would misorder them against same-timestamp departures with no
    diagnostic, so a typo'd producer would corrupt replay ordering.
    """
    try:
        rank = _KIND_RANK[event.kind]
    except KeyError:
        raise ReproError(
            f"unknown trace event kind {event.kind!r}; "
            f"expected one of {sorted(_KIND_RANK)}"
        ) from None
    return (event.time, rank, event.app_id)


@dataclass
class WorkloadTrace:
    """A deterministic sequence of arrivals/departures plus app builders.

    Attributes:
        events: time-ordered events.
        topologies: app_id -> topology (named ``app-<id>``).
        priorities: app_id -> admission priority (lower = more urgent);
            apps absent from the map default to priority 0. Only storm
            traces populate this; plain Poisson traces leave it empty.
    """

    events: List[TraceEvent] = field(default_factory=list)
    topologies: Dict[int, ApplicationTopology] = field(default_factory=dict)
    priorities: Dict[int, int] = field(default_factory=dict)

    @staticmethod
    def poisson(
        arrivals: int,
        app_factory: Callable[[int, random.Random], ApplicationTopology],
        mean_interarrival_s: float = 60.0,
        mean_lifetime_s: float = 600.0,
        seed: int = 0,
    ) -> "WorkloadTrace":
        """Generate a Poisson-arrival trace.

        Args:
            arrivals: number of applications to generate.
            app_factory: builds the i-th application (receives the trace's
                seeded RNG for any internal randomness).
            mean_interarrival_s: mean time between arrivals.
            mean_lifetime_s: mean application lifetime.
            seed: RNG seed; identical seeds yield identical traces.
        """
        rng = random.Random(seed)
        trace = WorkloadTrace()
        clock = 0.0
        raw: List[TraceEvent] = []
        for app_id in range(arrivals):
            clock += rng.expovariate(1.0 / mean_interarrival_s)
            lifetime = rng.expovariate(1.0 / mean_lifetime_s)
            topology = app_factory(app_id, rng)
            renamed = topology.copy(f"app-{app_id}")
            trace.topologies[app_id] = renamed
            raw.append(TraceEvent(clock, "arrive", app_id))
            raw.append(TraceEvent(clock + lifetime, "depart", app_id))
        trace.events = sorted(raw, key=event_sort_key)
        return trace

    @staticmethod
    def poisson_storm(
        arrivals: int,
        app_factory: Callable[[int, random.Random], ApplicationTopology],
        mean_interarrival_s: float = 60.0,
        mean_lifetime_s: float = 600.0,
        seed: int = 0,
        burst_every_s: float = 0.0,
        burst_len_s: float = 0.0,
        burst_factor: float = 4.0,
        priority_levels: int = 1,
        update_fraction: float = 0.0,
        scale_every_s: float = 0.0,
    ) -> "WorkloadTrace":
        """A Poisson arrival storm: flash-crowd bursts, priorities, churn.

        Like :meth:`poisson`, but the arrival rate is modulated by
        periodic burst windows (every ``burst_every_s`` simulated
        seconds, the rate multiplies by ``burst_factor`` for
        ``burst_len_s`` seconds -- the flash crowds an admission service
        must absorb), each application draws an admission priority from
        ``range(priority_levels)``, and a ``update_fraction`` share of
        applications emits one mid-lifetime "update" event (online tier
        growth, exercised through :func:`repro.core.online.
        update_application` by the service driver).

        With ``scale_every_s > 0`` every application additionally emits a
        "scale" event each ``scale_every_s`` simulated seconds of its
        lifetime -- the evaluation points of the autoscaling loop
        (:mod:`repro.scaling`). Scale-event times are derived
        arithmetically from the arrival and lifetime draws, consuming
        **no** RNG draws, so adding (or removing) them leaves every other
        event of the trace byte-identical.

        Identical arguments yield identical traces, event for event.
        """
        rng = random.Random(seed)
        trace = WorkloadTrace()
        clock = 0.0
        raw: List[TraceEvent] = []
        for app_id in range(arrivals):
            in_burst = (
                burst_every_s > 0.0
                and burst_len_s > 0.0
                and clock % burst_every_s < burst_len_s
            )
            rate = 1.0 / mean_interarrival_s
            if in_burst:
                rate *= max(burst_factor, 1.0)
            clock += rng.expovariate(rate)
            lifetime = rng.expovariate(1.0 / mean_lifetime_s)
            topology = app_factory(app_id, rng)
            trace.topologies[app_id] = topology.copy(f"app-{app_id}")
            if priority_levels > 1:
                trace.priorities[app_id] = rng.randrange(priority_levels)
            raw.append(TraceEvent(clock, "arrive", app_id))
            raw.append(TraceEvent(clock + lifetime, "depart", app_id))
            if update_fraction > 0.0 and rng.random() < update_fraction:
                offset = lifetime * rng.uniform(0.25, 0.75)
                raw.append(TraceEvent(clock + offset, "update", app_id))
            if scale_every_s > 0.0:
                at = clock + scale_every_s
                while at < clock + lifetime:
                    raw.append(TraceEvent(at, "scale", app_id))
                    at += scale_every_s
        trace.events = sorted(raw, key=event_sort_key)
        return trace


@dataclass
class ReplayReport:
    """Outcome of replaying one trace with one algorithm.

    Attributes:
        algorithm: algorithm label.
        arrivals / accepted / rejected: admission counts.
        peak_active_apps: maximum concurrently deployed applications.
        peak_cpu_used_frac: highest cluster CPU utilization observed.
        mean_cpu_used_frac: CPU utilization averaged over arrival instants.
        rejections: app_ids that could not be placed.
    """

    algorithm: str
    arrivals: int = 0
    accepted: int = 0
    rejected: int = 0
    peak_active_apps: int = 0
    peak_cpu_used_frac: float = 0.0
    mean_cpu_used_frac: float = 0.0
    rejections: List[int] = field(default_factory=list)

    @property
    def acceptance_rate(self) -> float:
        """Fraction of arrivals admitted."""
        return self.accepted / self.arrivals if self.arrivals else 1.0


def replay(
    trace: WorkloadTrace,
    cloud: Cloud,
    algorithm: str = "eg",
    state: Optional[DataCenterState] = None,
    theta_bw: float = 0.6,
    theta_c: float = 0.4,
    **options,
) -> ReplayReport:
    """Replay a trace against a fresh scheduler.

    Every arrival is placed with the chosen algorithm (rejected on
    :class:`PlacementError`); departures release their reservations.
    The same trace object can be replayed with different algorithms for a
    like-for-like comparison.
    """
    ostro = Ostro(
        cloud,
        state=state.clone() if state is not None else None,
        theta_bw=theta_bw,
        theta_c=theta_c,
    )
    report = ReplayReport(algorithm=algorithm)
    live: set = set()
    cpu_samples: List[float] = []
    for event in trace.events:
        if event.kind == "arrive":
            report.arrivals += 1
            topology = trace.topologies[event.app_id]
            try:
                ostro.place(topology, algorithm=algorithm, **options)
            except PlacementError:
                report.rejected += 1
                report.rejections.append(event.app_id)
                continue
            report.accepted += 1
            live.add(event.app_id)
            report.peak_active_apps = max(report.peak_active_apps, len(live))
            snapshot = utilization_report(ostro.state)
            cpu_samples.append(snapshot.cpu_used_frac)
            report.peak_cpu_used_frac = max(
                report.peak_cpu_used_frac, snapshot.cpu_used_frac
            )
        elif event.kind == "depart":
            # other kinds (e.g. storm "update" events) are service-driver
            # concerns; plain replay ignores them rather than treating
            # every non-arrival as a departure
            if event.app_id in live:
                ostro.remove(f"app-{event.app_id}")
                live.discard(event.app_id)
    if cpu_samples:
        report.mean_cpu_used_frac = sum(cpu_samples) / len(cpu_samples)
    return report


def default_app_factory(
    app_id: int, rng: random.Random
) -> ApplicationTopology:
    """A small mixed tenant: 2-6 VMs, optional volume, chatty pairs."""
    topo = ApplicationTopology(f"tenant-{app_id}")
    n = rng.randint(2, 6)
    for i in range(n):
        topo.add_vm(
            f"vm{i}",
            vcpus=rng.choice([1, 2, 4]),
            mem_gb=rng.choice([1, 2, 4, 8]),
        )
    for i in range(1, n):
        topo.connect(f"vm{i - 1}", f"vm{i}", rng.choice([10, 50, 100]))
    if rng.random() < 0.5:
        topo.add_volume("vol", rng.choice([10, 50, 120]))
        topo.connect("vm0", "vol", 100)
    if n >= 3 and rng.random() < 0.4:
        from repro.datacenter.model import Level

        topo.add_zone("ha", Level.HOST, ["vm0", "vm1", "vm2"])
    return topo
