"""Run one placement experiment: algorithm x scenario x size x seed."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.scheduler import make_algorithm
from repro.sim.metrics import MeasurementRow
from repro.sim.scenarios import Scenario, ScenarioSpec, dba_deadline_s

#: Display labels matching the paper's tables and figures.
ALGORITHM_LABELS = {
    "egc": "EGC",
    "egbw": "EGBW",
    "eg": "EG",
    "ba*": "BA*",
    "dba*": "DBA*",
}


def run_placement(
    algorithm: str,
    scenario: Scenario,
    size: int,
    seed: int = 0,
    deadline_s: Optional[float] = None,
    **options,
) -> MeasurementRow:
    """Execute one placement and return its measurement row.

    Args:
        algorithm: registry name ("eg", "egc", "egbw", "ba*", "dba*").
        scenario: the experiment configuration.
        size: workload size passed to the scenario's topology builder.
        seed: seed for background load, workload randomness, and DBA*.
        deadline_s: DBA* time budget; defaults to the scenario-scaled
            budget of :func:`repro.sim.scenarios.dba_deadline_s`.
        **options: extra algorithm options (e.g. ``max_expansions``).

    Raises:
        PlacementError: when the algorithm cannot place the workload.
    """
    cloud = scenario.build_cloud()
    state = scenario.build_state(cloud, seed)
    topology = scenario.build_topology(size, seed)
    objective = scenario.objective(topology, cloud)

    options.setdefault("greedy_config", scenario.greedy_config)
    canonical = algorithm.strip().lower()
    if canonical.startswith("dba"):
        options.setdefault(
            "deadline_s",
            deadline_s if deadline_s is not None else dba_deadline_s(size),
        )
        options.setdefault("seed", seed)
    algo = make_algorithm(algorithm, **options)
    baseline_active = len(state.active_host_indices())
    result = algo.place(topology, cloud, state, objective)
    return MeasurementRow.from_result(
        result,
        algorithm=ALGORITHM_LABELS.get(canonical, algorithm),
        workload=scenario.workload,
        size=topology.size(),
        heterogeneous=scenario.heterogeneous,
        seed=seed,
        baseline_active_hosts=baseline_active,
    )


@dataclass(frozen=True)
class SweepCell:
    """One picklable (algorithm, size, seed) cell of a sweep.

    The scenario travels as a :class:`~repro.sim.scenarios.ScenarioSpec`
    so the cell can cross a process boundary; the worker rebuilds the
    scenario, cloud, background load, and workload from the cell alone.
    Everything a run needs is derived from these fields -- never from
    inherited process state -- which is what makes ``--workers 1`` and
    ``--workers 8`` produce identical rows.
    """

    scenario_spec: ScenarioSpec
    algorithm: str
    size: int
    seed: int
    deadline_s: Optional[float] = None


def run_cell(cell: SweepCell) -> MeasurementRow:
    """Execute one sweep cell (module-level, so pools can pickle it)."""
    return run_placement(
        cell.algorithm,
        cell.scenario_spec.build(),
        cell.size,
        seed=cell.seed,
        deadline_s=cell.deadline_s,
    )
