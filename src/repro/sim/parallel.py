"""Process-pool execution for the evaluation harness.

Every evaluation surface of this repro -- :func:`~repro.sim.runner.sweep`
cells, per-algorithm :func:`~repro.sim.arrivals.replay` comparisons,
multi-seed :func:`~repro.sim.chaos.run_chaos` campaigns, and the bench
suite -- is an embarrassingly parallel, seed-replicated workload: cells
share no mutable state and every cell re-derives its world (cloud,
background load, workload, fault plan) from its own ``(..., seed)``
tuple. This module fans those cells out across worker processes while
keeping the results indistinguishable from the serial loop:

* **Deterministic merging.** Results come back in submission order (the
  exact order the serial nested loop would produce), so aggregation,
  fingerprints, and report ordering are bit-identical for any worker
  count. Only wall-clock fields (``runtime_s``, ``recovery_s``) differ.
* **Seeding discipline.** Workers never consume inherited process state:
  each task payload carries everything the cell needs, and the cell
  builders re-seed from the payload. ``workers=1`` runs inline with no
  pool at all, preserving the original serial behavior byte for byte.
* **Telemetry merge.** When the installed recorder is live, each task
  runs under a fresh per-worker :class:`~repro.obs.TelemetryRecorder`
  that returns with the result; the parent merges them in submission
  order (:meth:`~repro.obs.TelemetryRecorder.merge`), reproducing the
  serial run's event order, event counts, and counter totals.
* **Error transparency.** A task that raises ships its exception back;
  the parent re-raises at the same point in iteration order the serial
  loop would have, after merging the telemetry of every earlier cell
  (plus the failing cell's partial telemetry, matching serial).

The pool uses the ``fork`` start method where available (cheap on
Linux), falling back to ``spawn``; results do not depend on the choice.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro import obs
from repro.errors import PlacementError, ReproError
from repro.sim.metrics import ChaosReport, MeasurementRow, aggregate_rows


def default_workers() -> int:
    """Worker count that saturates the machine: one per available core."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without affinity (macOS, Windows)
        return os.cpu_count() or 1


@dataclass
class TaskOutcome:
    """What one pool task produced: a value or an error, plus telemetry."""

    value: Any = None
    error: Optional[BaseException] = None
    recorder: Optional["obs.TelemetryRecorder"] = None


def _run_task(
    task: Tuple[Callable[[Any], Any], Any, bool]
) -> TaskOutcome:
    """Worker-side wrapper: run one payload, capture result + telemetry.

    Exceptions are captured, not raised, so the pool delivers every
    outcome in order and the parent can reproduce the serial loop's
    error position exactly.
    """
    fn, payload, telemetry = task
    if not telemetry:
        try:
            return TaskOutcome(value=fn(payload))
        except Exception as exc:  # ostrolint: disable=OST008
            return TaskOutcome(error=exc)  # re-raised by the parent
    recorder = obs.TelemetryRecorder()
    with obs.use(recorder):
        try:
            return TaskOutcome(value=fn(payload), recorder=recorder)
        except Exception as exc:  # ostrolint: disable=OST008
            return TaskOutcome(error=exc, recorder=recorder)


def _pool_context(
    start_method: Optional[str],
) -> multiprocessing.context.BaseContext:
    if start_method is None:
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else "spawn"
    return multiprocessing.get_context(start_method)


def run_tasks(
    fn: Callable[[Any], Any],
    payloads: Sequence[Any],
    workers: int = 1,
    recorder: Optional["obs.Recorder"] = None,
    start_method: Optional[str] = None,
) -> List[TaskOutcome]:
    """Run ``fn`` over payloads, returning outcomes in payload order.

    Args:
        fn: module-level callable (must be picklable by reference).
        payloads: one picklable argument per task.
        workers: process count; ``<= 1`` runs inline with no pool.
        recorder: telemetry destination; defaults to the process-wide
            recorder. When it is live, workers record into fresh
            recorders that ride back with the outcomes (merge them with
            :func:`merge_outcomes` or let the callers here do it).
        start_method: multiprocessing start method override; the default
            prefers ``fork`` and falls back to ``spawn``.

    Worker recorders are *not* merged here -- callers decide how far to
    merge when an error cuts the serial loop short.
    """
    if recorder is None:
        recorder = obs.get_recorder()
    telemetry = recorder.enabled
    if workers <= 1 or len(payloads) <= 1:
        # Inline execution: identical code path, no per-task recorder --
        # the installed recorder sees every cell directly, exactly as
        # the serial loops always did.
        outcomes = []
        for payload in payloads:
            try:
                outcomes.append(TaskOutcome(value=fn(payload)))
            except Exception as exc:  # ostrolint: disable=OST008
                outcomes.append(TaskOutcome(error=exc))  # re-raised later
                break
        return outcomes
    ctx = _pool_context(start_method)
    tasks = [(fn, payload, telemetry) for payload in payloads]
    with ctx.Pool(processes=min(workers, len(payloads))) as pool:
        return pool.map(_run_task, tasks, chunksize=1)


def merge_outcomes(
    outcomes: Iterable[TaskOutcome],
    recorder: Optional["obs.Recorder"] = None,
    reraise: bool = True,
    skip_errors: Tuple[type, ...] = (),
) -> List[Any]:
    """Collapse outcomes into values, merging telemetry in task order.

    Mirrors the serial loop's semantics: outcomes are visited in order;
    an error whose type is in ``skip_errors`` drops that cell (its
    telemetry still merges -- the serial loop recorded the failed
    attempt too); any other error is re-raised after merging the
    telemetry of every cell up to and including the failing one, so the
    recorder holds exactly what a serial run would have recorded at the
    moment it raised. Cells after the failure are discarded.
    """
    if recorder is None:
        recorder = obs.get_recorder()
    values: List[Any] = []
    for outcome in outcomes:
        if outcome.recorder is not None and isinstance(
            recorder, obs.TelemetryRecorder
        ):
            recorder.merge(outcome.recorder)
        if outcome.error is not None:
            if isinstance(outcome.error, skip_errors):
                continue
            if reraise:
                raise outcome.error
            continue
        values.append(outcome.value)
    return values


# ----------------------------------------------------------------------
# sweep fan-out
# ----------------------------------------------------------------------


def parallel_sweep(
    scenario: "Any",
    algorithms: Sequence[str],
    sizes: Iterable[int],
    seeds: Sequence[int] = (0,),
    workers: int = 1,
    aggregate: bool = True,
    skip_infeasible: bool = False,
    deadline_s: Optional[float] = None,
    recorder: Optional["obs.Recorder"] = None,
) -> List[MeasurementRow]:
    """Fan the (size, algorithm, seed) cells of a sweep across a pool.

    Semantics match :func:`repro.sim.runner.sweep` exactly -- same cell
    order, same rows (wall-clock ``runtime_s`` aside), same exception at
    the same cell when a placement fails and ``skip_infeasible`` is off.
    The scenario must carry a picklable
    :class:`~repro.sim.scenarios.ScenarioSpec` (the canned factories
    attach one); each worker rebuilds cloud, load, and workload from the
    cell tuple alone.
    """
    from repro.sim.experiment import SweepCell, run_cell

    if scenario.spec is None:
        raise ReproError(
            f"scenario {scenario.name!r} has no ScenarioSpec; parallel "
            "sweeps need a picklable rebuild recipe (use a canned "
            "scenario factory or set scenario.spec)"
        )
    if recorder is not None:
        with obs.use(recorder):
            return parallel_sweep(
                scenario,
                algorithms,
                list(sizes),
                seeds=seeds,
                workers=workers,
                aggregate=aggregate,
                skip_infeasible=skip_infeasible,
                deadline_s=deadline_s,
            )
    cells = [
        SweepCell(
            scenario_spec=scenario.spec,
            algorithm=algorithm,
            size=size,
            seed=seed,
            deadline_s=deadline_s,
        )
        for size in sizes
        for algorithm in algorithms
        for seed in seeds
    ]
    outcomes = run_tasks(run_cell, cells, workers=workers)
    skip = (PlacementError,) if skip_infeasible else ()
    rows = merge_outcomes(outcomes, skip_errors=skip)
    return aggregate_rows(rows) if aggregate else rows


# ----------------------------------------------------------------------
# replay fan-out
# ----------------------------------------------------------------------


def _replay_cell(payload: Tuple[Any, Any, str, float, float, Dict]) -> Any:
    from repro.sim.arrivals import replay

    trace, cloud, algorithm, theta_bw, theta_c, options = payload
    return replay(
        trace,
        cloud,
        algorithm=algorithm,
        theta_bw=theta_bw,
        theta_c=theta_c,
        **options,
    )


def parallel_replay(
    trace: "Any",
    cloud: "Any",
    algorithms: Sequence[str],
    workers: int = 1,
    theta_bw: float = 0.6,
    theta_c: float = 0.4,
    **options: Any,
) -> List[Any]:
    """Replay one trace with several algorithms concurrently.

    Each algorithm gets its own worker and a pickled copy of the trace
    and cloud, so the comparisons stay perfectly like-for-like; reports
    return in the order ``algorithms`` lists them.
    """
    payloads = [
        (trace, cloud, algorithm, theta_bw, theta_c, dict(options))
        for algorithm in algorithms
    ]
    outcomes = run_tasks(_replay_cell, payloads, workers=workers)
    return merge_outcomes(outcomes)


# ----------------------------------------------------------------------
# chaos fan-out
# ----------------------------------------------------------------------


def parallel_chaos(
    seeds: Sequence[int],
    workers: int = 1,
    cloud_spec: Optional[str] = None,
    faults: Optional[Dict[str, Any]] = None,
    apps: int = 8,
    app_vms: int = 10,
    algorithm: str = "dba*",
    **options: Any,
) -> List[ChaosReport]:
    """Run one seeded chaos scenario per seed, fanned across a pool.

    Each worker rebuilds its cloud from ``cloud_spec`` (default: the
    chaos data center) and derives its fault plan from the cell's seed,
    so reports are bit-identical to serial runs of the same seeds --
    fingerprints included -- and return in ``seeds`` order.
    """
    from repro.sim.chaos import ChaosCell, run_chaos_cell

    cells = [
        ChaosCell(
            seed=seed,
            cloud_spec=cloud_spec,
            faults=tuple(sorted((faults or {}).items())),
            apps=apps,
            app_vms=app_vms,
            algorithm=algorithm,
            options=tuple(sorted(options.items())),
        )
        for seed in seeds
    ]
    outcomes = run_tasks(run_chaos_cell, cells, workers=workers)
    return merge_outcomes(outcomes)
