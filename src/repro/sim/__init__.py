"""Experiment harness for reproducing the paper's evaluation (Section IV).

* :mod:`repro.sim.metrics` -- per-run measurement records and aggregation.
* :mod:`repro.sim.scenarios` -- canned (cloud, load, workload, objective)
  configurations for every table and figure, with a reduced default scale
  and ``REPRO_FULL_SCALE=1`` switching to the paper's exact scales.
* :mod:`repro.sim.experiment` -- run one algorithm on one scenario.
* :mod:`repro.sim.runner` -- sweeps over sizes x algorithms x seeds.
* :mod:`repro.sim.reporting` -- paper-style text tables and series.
"""

from repro.sim.arrivals import ReplayReport, WorkloadTrace, replay
from repro.sim.experiment import run_placement
from repro.sim.metrics import MeasurementRow, aggregate_rows
from repro.sim.plots import ascii_chart
from repro.sim.reporting import format_series, format_table
from repro.sim.runner import sweep
from repro.sim.utilization import format_utilization, utilization_report
from repro.sim.scenarios import (
    Scenario,
    full_scale,
    mesh_scenario,
    multitier_scenario,
    qfs_testbed_scenario,
    sim_datacenter,
)

__all__ = [
    "MeasurementRow",
    "ReplayReport",
    "Scenario",
    "WorkloadTrace",
    "replay",
    "aggregate_rows",
    "ascii_chart",
    "format_utilization",
    "utilization_report",
    "format_series",
    "format_table",
    "full_scale",
    "mesh_scenario",
    "multitier_scenario",
    "qfs_testbed_scenario",
    "run_placement",
    "sim_datacenter",
    "sweep",
]
