"""Paper-style rendering of measurement rows.

Two layouts cover everything Section IV prints:

* :func:`format_table` -- algorithms as columns, metrics as rows
  (Tables I and II);
* :func:`format_series` -- sizes as rows, algorithms as columns, one
  metric (the data series behind Figs. 6-11).
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

from repro.sim.metrics import MeasurementRow


def _render(grid: List[List[str]]) -> str:
    widths = [
        max(len(row[col]) for row in grid) for col in range(len(grid[0]))
    ]
    lines = []
    for i, row in enumerate(grid):
        lines.append(
            "  ".join(cell.rjust(widths[c]) for c, cell in enumerate(row))
        )
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_table(
    rows: Sequence[MeasurementRow],
    algorithms: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render a Tables-I/II-style comparison (one size, many algorithms)."""
    if algorithms is None:
        algorithms = list(dict.fromkeys(row.algorithm for row in rows))
    by_algorithm = {row.algorithm: row for row in rows}
    grid: List[List[str]] = [[""] + list(algorithms)]
    metrics = (
        ("Bandwidth (Mbps)", lambda r: f"{r.reserved_bw_mbps:.0f}"),
        ("New active hosts", lambda r: f"{r.new_active_hosts:.0f}"),
        ("Run-time (sec)", lambda r: f"{r.runtime_s:.3f}"),
    )
    for label, fmt in metrics:
        grid.append(
            [label]
            + [
                fmt(by_algorithm[a]) if a in by_algorithm else "-"
                for a in algorithms
            ]
        )
    body = _render(grid)
    return f"{title}\n{body}" if title else body


def format_series(
    rows: Iterable[MeasurementRow],
    metric: str = "reserved_bw_gbps",
    algorithms: Optional[Sequence[str]] = None,
    title: str = "",
    fmt: Callable[[float], str] = lambda v: f"{v:.2f}",
) -> str:
    """Render a figure-style series: size rows x algorithm columns.

    Args:
        rows: measurement rows (aggregated or raw).
        metric: attribute of :class:`MeasurementRow` to tabulate
            ("reserved_bw_gbps", "hosts_used", "runtime_s", ...).
        algorithms: column order; defaults to first appearance.
        title: optional heading line.
        fmt: number formatter.
    """
    rows = list(rows)
    if algorithms is None:
        algorithms = list(dict.fromkeys(row.algorithm for row in rows))
    sizes = sorted({row.size for row in rows})
    cells = {
        (row.size, row.algorithm): getattr(row, metric) for row in rows
    }
    grid: List[List[str]] = [["size"] + list(algorithms)]
    for size in sizes:
        grid.append(
            [str(size)]
            + [
                fmt(cells[(size, a)]) if (size, a) in cells else "-"
                for a in algorithms
            ]
        )
    body = _render(grid)
    return f"{title}\n{body}" if title else body
