"""Terminal (ASCII) charts for the evaluation series.

Dependency-free renderer for the figure data: one column block per x
value, one glyph per algorithm, values scaled into a fixed-height grid.
Good enough to *see* the paper's crossovers in a terminal or CI log;
anything publication-grade should consume the raw series from
:mod:`repro.sim.reporting` instead.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.sim.metrics import MeasurementRow

#: glyph per series, assigned in column order
_GLYPHS = "ox*+#@%&"


def ascii_chart(
    rows: Iterable[MeasurementRow],
    metric: str = "reserved_bw_gbps",
    algorithms: Optional[Sequence[str]] = None,
    height: int = 12,
    title: str = "",
) -> str:
    """Render a size-vs-metric scatter chart for the given rows.

    Args:
        rows: measurement rows (one per (algorithm, size) after
            aggregation).
        metric: MeasurementRow attribute to plot.
        algorithms: series order; defaults to first appearance.
        height: chart height in text rows.
        title: optional heading.

    Returns:
        A multi-line string: chart grid, x-axis labels, and a legend.
    """
    rows = list(rows)
    if not rows:
        return f"{title}\n(no data)" if title else "(no data)"
    if algorithms is None:
        algorithms = list(dict.fromkeys(r.algorithm for r in rows))
    sizes = sorted({r.size for r in rows})
    values: Dict[tuple, float] = {
        (r.size, r.algorithm): float(getattr(r, metric)) for r in rows
    }
    peak = max(values.values())
    floor = min(0.0, min(values.values()))
    span = (peak - floor) or 1.0

    col_width = max(6, max(len(str(s)) for s in sizes) + 2)
    grid: List[List[str]] = [
        [" "] * (col_width * len(sizes)) for _ in range(height)
    ]
    for si, size in enumerate(sizes):
        for ai, algorithm in enumerate(algorithms):
            value = values.get((size, algorithm))
            if value is None:
                continue
            level = int(round((value - floor) / span * (height - 1)))
            row = height - 1 - level
            col = si * col_width + 1 + ai
            if col < len(grid[row]):
                grid[row][col] = _GLYPHS[ai % len(_GLYPHS)]

    axis_width = max(len(f"{peak:.1f}"), len(f"{floor:.1f}"))
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{peak:.1f}".rjust(axis_width)
        elif i == height - 1:
            label = f"{floor:.1f}".rjust(axis_width)
        else:
            label = " " * axis_width
        lines.append(f"{label} |{''.join(row)}")
    lines.append(
        " " * axis_width
        + " +"
        + "".join(str(s).ljust(col_width) for s in sizes)
    )
    legend = "  ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]}={a}" for i, a in enumerate(algorithms)
    )
    lines.append(" " * axis_width + "   " + legend + f"   [{metric}]")
    return "\n".join(lines)
