"""Chaos scenarios: deploy a workload while a fault plan fires.

:func:`run_chaos` drives one seeded end-to-end robustness run: a stream
of multi-tier applications is deployed onto a fresh data center while a
:class:`~repro.faults.plan.FaultPlan` crashes hosts, fails rack uplinks,
and makes surrogate API calls raise. Host crashes trigger evacuation
(:func:`repro.core.online.evacuate_host`); deadline pressure degrades
the algorithm down the ladder
(:func:`repro.faults.recovery.place_with_degradation`); transient API
faults are retried under a seeded
:class:`~repro.faults.retry.RetryPolicy`.

After *every* operation the harness audits the live state for capacity
leaks (:meth:`~repro.core.scheduler.Ostro.verify_state`); every finding
lands in the report. Everything is seeded, so the same plan on the same
arguments yields a bit-identical :class:`~repro.sim.metrics.ChaosReport`
-- including its placement fingerprint.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.online import evacuate_host
from repro.core.scheduler import Ostro
from repro.datacenter.model import Cloud
from repro.datacenter.state import DataCenterState
from repro.defrag import (
    DefragConfig,
    DefragExecutor,
    DefragPlanner,
    DefragStats,
    run_defrag_tick,
)
from repro.core.online import add_vms_to_tier, remove_vms_from_tier
from repro.errors import (
    DeadlineError,
    FaultError,
    PlacementError,
    ReproError,
)
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    place_with_degradation,
)
from repro.scaling import (
    ACTION_IN,
    ACTION_OUT,
    AutoScaler,
    ScalingConfig,
    consolidation_config,
)
from repro.sim.metrics import ChaosReport
from repro.sim.scenarios import chaos_datacenter
from repro.workloads.multitier import build_multitier


def placement_fingerprint(ostro: Ostro) -> str:
    """Digest of every committed assignment, stable across runs.

    Hashes ``app/node@host:disk`` lines in sorted order, so two runs
    that end with the same committed placements -- regardless of event
    interleaving -- produce the same hex digest.
    """
    digest = hashlib.sha256()
    for app_name in sorted(ostro.applications):
        placement = ostro.applications[app_name].placement
        for node in sorted(placement.assignments):
            assignment = placement.assignments[node]
            digest.update(
                f"{app_name}/{node}@{assignment.host}:"
                f"{assignment.disk}\n".encode("utf-8")
            )
    return digest.hexdigest()


def run_chaos(
    plan: FaultPlan,
    cloud: Optional[Cloud] = None,
    apps: int = 8,
    app_vms: int = 10,
    algorithm: str = "dba*",
    theta_bw: float = 0.6,
    theta_c: float = 0.4,
    retry: Optional[RetryPolicy] = None,
    defrag: Optional[DefragConfig] = None,
    scaling: Optional[ScalingConfig] = None,
    scaling_step_s: float = 3600.0,
    **options: Any,
) -> ChaosReport:
    """Run one seeded chaos scenario and return its report.

    Each scenario step deploys one heterogeneous multi-tier application
    of ``app_vms`` VMs; the plan's scheduled events fire between steps,
    and events scheduled past the last deploy are applied through the
    same per-step handler (so late crashes are evacuated and audited
    exactly like mid-run ones). Deploys run under the degradation ladder
    starting at ``algorithm``; host crashes are evacuated immediately
    with the same ladder. When the plan injects API faults and no
    ``retry`` policy is given, a default policy seeded from the plan is
    installed.

    Args:
        plan: what goes wrong, and when.
        cloud: physical structure (default: :func:`chaos_datacenter`).
        apps: number of applications (= scenario steps) to deploy.
        app_vms: VMs per application.
        algorithm: starting algorithm rung for deploys and evacuations.
        theta_bw / theta_c: objective weights.
        retry: retry policy for the commit path (default: seeded from
            the plan when it injects API faults, else none).
        defrag: optional background-defragmenter configuration; ticks as
            the lowest-priority action of every scenario step. ``None``
            (and ``enabled=False``) leave the run bit-identical to a
            defrag-free baseline.
        scaling: optional autoscaling configuration. Each scenario step
            evaluates every live application (sorted order, virtual time
            ``step * scaling_step_s``) through the configured policy,
            growing via the online-update path and shrinking via
            :func:`repro.core.online.remove_vms_from_tier` -- under the
            same fault injector, so crashes and API faults land mid
            scale just like mid deploy. Use ``tier_prefix="tier1"`` to
            scale the first tier of the multitier chaos apps. ``None``
            (and ``enabled=False``) leave the run bit-identical to a
            scaling-free baseline.
        scaling_step_s: virtual seconds per scenario step on the scaling
            clock (drives the diurnal load signal).
        **options: forwarded algorithm options (e.g. ``deadline_s``).
    """
    if cloud is None:
        cloud = chaos_datacenter()
    state = DataCenterState(cloud)
    injector = FaultInjector(plan, state)
    if retry is None and plan.has_api_faults:
        retry = RetryPolicy(seed=plan.seed)
    ostro = Ostro(
        cloud,
        state=state,
        theta_bw=theta_bw,
        theta_c=theta_c,
        injector=injector,
        retry_policy=retry,
    )
    report = ChaosReport(seed=plan.seed, apps_requested=apps)
    requested = algorithm.strip().lower()

    defrag_on = defrag is not None and defrag.enabled
    planner = DefragPlanner(defrag) if defrag_on else None
    executor = DefragExecutor(ostro, defrag) if defrag_on else None
    defrag_stats = DefragStats() if defrag_on else None

    scaler: Optional[AutoScaler] = None
    consolidate: Optional[DefragConfig] = None
    if scaling is not None and scaling.enabled:
        scaler = AutoScaler(scaling)
        consolidate = consolidation_config(scaling, algorithm)

    def audit(context: str) -> None:
        report.invariant_violations.extend(
            f"[{context}] {violation}" for violation in ostro.verify_state()
        )

    def defrag_tick(step: int) -> None:
        """Lowest-priority background action of one scenario step."""
        if planner is None or executor is None or defrag_stats is None:
            return
        run_defrag_tick(ostro, planner, executor, defrag_stats)
        audit(f"defrag tick {step}")

    def scaling_tick(step: int) -> None:
        """Evaluate every live application on the virtual scaling clock."""
        if scaler is None or scaling is None:
            return
        report.scaling_enabled = True
        now = step * scaling_step_s
        down = set(ostro.state.down_hosts())
        for app_name in sorted(ostro.applications):
            deployed = ostro.applications[app_name]
            hosts = {
                a.host for a in deployed.placement.assignments.values()
            }
            if down and hosts & down:
                continue  # mid-evacuation tiers are not resized
            decision = scaler.evaluate(
                app_name,
                deployed.topology,
                now,
                state=ostro.state,
                placement=deployed.placement,
            )
            if decision.action == ACTION_OUT:
                grown = add_vms_to_tier(
                    deployed.topology,
                    scaling.tier_prefix,
                    0.0,
                    count=decision.delta,
                )
                try:
                    ostro.update(grown, algorithm=algorithm, **options)
                except (DeadlineError, FaultError, PlacementError):
                    scaler.failed(app_name, ACTION_OUT)
                else:
                    scaler.applied(
                        app_name, now, ACTION_OUT, decision.delta
                    )
            elif decision.action == ACTION_IN:
                try:
                    shrink = remove_vms_from_tier(
                        ostro,
                        app_name,
                        scaling.tier_prefix,
                        count=decision.delta,
                        min_members=scaling.min_members,
                        consolidate=consolidate,
                    )
                except ReproError:
                    scaler.failed(app_name, ACTION_IN)
                else:
                    if shrink.removed:
                        scaler.applied(
                            app_name, now, ACTION_IN, len(shrink.removed)
                        )
            audit(f"scale {app_name} step {step}")

    def apply_fired(fired: List[FaultEvent]) -> None:
        for event in fired:
            if event.kind == "host_down":
                evacuation = evacuate_host(
                    ostro, event.target, algorithm=algorithm, **options
                )
                report.evacuations += 1
                report.nodes_moved += len(evacuation.moved)
                report.nodes_lost += len(evacuation.failed)
                report.recovery_s += evacuation.runtime_s
                report.degradations += sum(
                    1
                    for used in evacuation.algorithms.values()
                    if used.strip().lower() != requested
                )
                audit(f"evacuate {event.target}")
            else:
                audit(f"{event.kind} {event.target}")

    for step in range(apps):
        apply_fired(injector.advance_to(step))
        # largest tier count (<= the paper's 5) dividing the VM count
        tiers = next(t for t in (5, 4, 3, 2, 1) if app_vms % t == 0)
        topology = build_multitier(
            total_vms=app_vms,
            tiers=tiers,
            heterogeneous=True,
            name=f"chaos-app{step}",
        )
        try:
            _, used = place_with_degradation(
                ostro, topology, algorithm=algorithm, commit=True, **options
            )
            if used.strip().lower() != requested:
                report.degradations += 1
        except (DeadlineError, FaultError, PlacementError):
            report.deploy_failures += 1
        audit(f"deploy {topology.name}")
        scaling_tick(step)
        defrag_tick(step)

    # Route trailing events (repairs, late crashes) through the same
    # per-step handler as mid-run ones: a crash scheduled after the last
    # arrival must still be evacuated and audited before a later repair
    # of the same host is applied.
    last_scheduled = plan.events[-1].at_step if plan.events else 0
    for step in range(apps, max(apps, last_scheduled) + 1):
        apply_fired(injector.advance_to(step))
        scaling_tick(step)
        defrag_tick(step)

    if defrag_stats is not None:
        report.defrag_enabled = True
        report.defrag_passes = defrag_stats.passes
        report.defrag_aborted_passes = defrag_stats.aborted_passes
        report.defrag_replans = defrag_stats.replans
        report.defrag_moves = defrag_stats.moves + defrag_stats.bounces
        report.defrag_move_seconds = defrag_stats.move_seconds
        report.frag_recovered = defrag_stats.frag_recovered

    if scaler is not None:
        report.scale_evaluations = scaler.stats.evaluations
        report.scale_outs = scaler.stats.scale_outs
        report.scale_ins = scaler.stats.scale_ins
        report.scale_out_failures = scaler.stats.scale_out_failures
        report.vms_added = scaler.stats.vms_added
        report.vms_removed = scaler.stats.vms_removed

    report.hosts_failed = sum(
        1 for event in injector.applied if event.kind == "host_down"
    )
    report.links_failed = sum(
        1 for event in injector.applied if event.kind == "link_down"
    )
    report.api_faults = sum(injector.api_faults.values())
    report.apps_deployed = len(ostro.applications)
    report.fingerprint = placement_fingerprint(ostro)
    audit("final")
    return report


@dataclass(frozen=True)
class ChaosCell:
    """One picklable seeded chaos run.

    The cell carries a cloud *spec* (rebuilt deterministically in the
    worker) and the :func:`~repro.sim.scenarios.make_fault_plan` keyword
    arguments rather than a built plan, so the worker derives everything
    -- victims, API-fault draws, retry jitter -- from the cell's seed and
    never from inherited process state. ``faults`` and ``options`` are
    sorted key/value tuples to stay hashable and pickle-stable.
    """

    seed: int
    cloud_spec: Optional[str] = None
    faults: Tuple[Tuple[str, Any], ...] = ()
    apps: int = 8
    app_vms: int = 10
    algorithm: str = "dba*"
    options: Tuple[Tuple[str, Any], ...] = ()


def run_chaos_cell(cell: ChaosCell) -> ChaosReport:
    """Execute one chaos cell (module-level, so pools can pickle it)."""
    from repro.datacenter.builder import cloud_from_spec
    from repro.sim.scenarios import make_fault_plan

    cloud = (
        cloud_from_spec(cell.cloud_spec)
        if cell.cloud_spec is not None
        else chaos_datacenter()
    )
    fault_kwargs: Dict[str, Any] = dict(cell.faults)
    fault_kwargs.setdefault("steps", cell.apps)
    plan = make_fault_plan(cloud, seed=cell.seed, **fault_kwargs)
    return run_chaos(
        plan,
        cloud=cloud,
        apps=cell.apps,
        app_vms=cell.app_vms,
        algorithm=cell.algorithm,
        **dict(cell.options),
    )


def run_chaos_many(
    seeds: Sequence[int],
    workers: int = 1,
    cloud_spec: Optional[str] = None,
    faults: Optional[Dict[str, Any]] = None,
    apps: int = 8,
    app_vms: int = 10,
    algorithm: str = "dba*",
    **options: Any,
) -> List[ChaosReport]:
    """Run one seeded chaos scenario per seed, optionally in parallel.

    A thin veneer over :func:`repro.sim.parallel.parallel_chaos`: reports
    come back in ``seeds`` order and are bit-identical (fingerprints
    included, wall-clock ``recovery_s`` aside) for any worker count.
    """
    from repro.sim.parallel import parallel_chaos

    return parallel_chaos(
        seeds,
        workers=workers,
        cloud_spec=cloud_spec,
        faults=faults,
        apps=apps,
        app_vms=app_vms,
        algorithm=algorithm,
        **options,
    )
